"""The VRI monitor (thesis §3.3): per-VR VRI lifecycle + load balancing.

One monitor per hosted VR.  It creates VRI adapters (queues in shared
memory, core binding, ``vfork()``) and destroys them (``kill()``,
teardown) on the VR monitor's orders, and dispatches each frame to a VRI
under the configured balancing scheme.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional

from repro.core.balancing import LoadBalancer
from repro.core.estimation import EwmaArrivalRate
from repro.core.vr import VrSpec
from repro.core.vri import VriRuntime
from repro.errors import AllocationError
from repro.hardware.affinity import Placement
from repro.ipc.queues import VriChannels
from repro.ipc.sim_queue import SimIpcQueue
from repro.obs.registry import default_registry
from repro.obs.trace import TRACER as _TRACE
from repro.sim.engine import Simulator

__all__ = ["VriMonitor"]

_vri_ids = itertools.count(1)
#: Fallback label source for monitors constructed without ``obs_labels``
#: (direct construction in tests): keeps each monitor's counters distinct.
_mon_ids = itertools.count(1)


class VriMonitor:
    """Coordinates the VRIs of one VR."""

    def __init__(self, sim: Simulator, spec: VrSpec, machine, costs,
                 balancer: LoadBalancer, lvrm_core_id: int,
                 queue_capacity: int, rng_registry,
                 on_output: Callable[[], None],
                 memory_budget=None,
                 obs_labels: Optional[Dict[str, str]] = None):
        self.sim = sim
        self.spec = spec
        self.machine = machine
        self.costs = costs
        self.balancer = balancer
        self.lvrm_core_id = lvrm_core_id
        self.queue_capacity = queue_capacity
        self.rng_registry = rng_registry
        self._on_output = on_output
        #: Optional per-VR memory limit (the setrlimit extension of
        #: thesis §3.2); when set, VRI creation charges it and creation
        #: beyond the budget fails like core exhaustion does.
        self.memory_budget = memory_budget
        self.vris: List[VriRuntime] = []
        #: Monotone count of VRIs this monitor has ever spawned; names
        #: the per-VRI RNG streams.  Deliberately *local* (unlike the
        #: global vri_id): repeated identical experiments in the same
        #: process must draw identical jitter.
        self._spawn_seq = 0
        #: Arrival-rate estimate for this VR (the VR monitor's input).
        self.arrival = EwmaArrivalRate()
        self.arrival.trace_name = f"vr.{spec.name}.arrival"
        self.dispatched = 0
        self.dropped_on_destroy = 0
        #: Frames stranded in the queues of VRIs that *failed* (crash or
        #: hang), as opposed to orderly destruction.
        self.dropped_on_failure = 0
        #: Lifetime completions (processed + per-VRI drops) of VRIs that
        #: no longer exist.  Without this, destroying or failing a VRI
        #: would silently subtract its history from the drain ledger and
        #: :meth:`Lvrm._fully_drained` could never balance again.
        self.retired_completed = 0
        #: How many times this VR's instances have failed / been failed
        #: over (the supervisor's ledger).
        self.failures = 0
        # The queue-full drop counter lives on the obs registry; the
        # ``dropped_queue_full`` property is its read-through view.
        labels = dict(obs_labels) if obs_labels else {
            "mon": str(next(_mon_ids))}
        #: Instance scope (without the ``vr`` key) handed down to each
        #: VRI's counters so the whole run shares one selector label.
        self.obs_scope = dict(labels)
        labels["vr"] = spec.name
        self._c_queue_full = default_registry().counter(
            "vr_dropped_queue_full_total",
            "frames dropped at dispatch: chosen VRI's data queue full",
            **labels)
        self._c_fault_dropped = default_registry().counter(
            "vri_dropped_fault_total",
            "frames stranded in a failed VRI's queues at failover",
            **labels)

    # -- VRI lifecycle (Figure 3.2's create/destroy VRI adapter) ---------------
    def create_vri(self, placement: Placement) -> VriRuntime:
        """Create queues, put them in shared memory, bind the VRI to the
        placement's core, add it to the VRI list."""
        if len(self.vris) >= self.spec.max_vris:
            raise AllocationError(
                f"VR {self.spec.name}: already at max_vris={self.spec.max_vris}")
        vri_id = next(_vri_ids)
        if self.memory_budget is not None:
            self.memory_budget.charge_vri(
                vri_id, self.queue_capacity,
                n_routes=len(self.spec.map_lines))
        mk = lambda tag: SimIpcQueue(self.sim, self.queue_capacity,
                                     name=f"{self.spec.name}/vri{vri_id}/{tag}")
        channels = VriChannels(vri_id, data_in=mk("din"), data_out=mk("dout"),
                               ctrl_in=mk("cin"), ctrl_out=mk("cout"))
        core = self.machine.core(placement.core_id)
        cross = self.machine.cross_socket(placement.core_id,
                                          self.lvrm_core_id)
        if placement.kernel_managed:
            # Kernel-scheduled VRIs migrate across sockets: model the
            # average IPC path as cross-socket regardless of the core
            # the kernel happened to pick first.
            cross = True
        self._spawn_seq += 1
        vri = VriRuntime(
            sim=self.sim, vri_id=vri_id, vr_name=self.spec.name, core=core,
            channels=channels, router=self.spec.build_router(),
            costs=self.costs, cross_socket=cross,
            per_frame_penalty=placement.per_frame_penalty,
            rng=self.rng_registry.stream(
                f"{self.spec.name}.vri{self._spawn_seq}.jitter"),
            on_output=self._on_output,
            obs_labels=self.obs_scope)
        if placement.kernel_managed:
            vri.producer_penalty = self.costs.kernel_sched_penalty
        vri.placement = placement
        self.vris.append(vri)
        if _TRACE.enabled:
            _TRACE.instant("core.allocate", ts=self.sim.now, cat="alloc",
                           track="lvrm", vr=self.spec.name, vri=vri_id,
                           core=placement.core_id, n_vris=len(self.vris))
        return vri

    def destroy_vri(self, vri: Optional[VriRuntime] = None) -> VriRuntime:
        """Kill a VRI, destroy its queues, remove it from the list.

        Default victim: the VRI whose core LVRM values least — remote
        sockets go first, so surviving siblings keep the cheap IPC path.
        """
        if not self.vris:
            raise AllocationError(f"VR {self.spec.name}: no VRI to destroy")
        if vri is None:
            order = self.machine.topology.allocation_order(self.lvrm_core_id)
            rank = {core_id: i for i, core_id in enumerate(order)}
            vri = max(self.vris,
                      key=lambda v: rank.get(v.core.core_id, -1))
        if vri not in self.vris:
            raise AllocationError("VRI does not belong to this monitor")
        vri.kill()
        self.dropped_on_destroy += vri.drain_losses()
        self._forget(vri)
        if _TRACE.enabled:
            _TRACE.instant("core.deallocate", ts=self.sim.now, cat="alloc",
                           track="lvrm", vr=self.spec.name, vri=vri.vri_id,
                           core=vri.core.core_id, n_vris=len(self.vris))
        return vri

    def _forget(self, vri: VriRuntime) -> int:
        """Shared teardown ledger for destroy and failure paths.

        Removes the VRI from the live list, banks its lifetime
        completions (so drain detection keeps balancing), unpins its
        flows, and refunds its memory.  Returns how many flow-table
        entries were unpinned (0 for frame-based balancing).
        """
        self.vris.remove(vri)
        # data_in fault drops only: an outgoing-slot drop is already in
        # ``processed`` (the VRI's push "succeeded" before it vanished).
        self.retired_completed += (vri.processed + vri.dropped_no_route
                                   + vri.dropped_out_full
                                   + vri.dropped_corrupt
                                   + vri.channels.data_in.fault_dropped)
        reassigned = self.balancer.forget_vri(vri.vri_id) or 0
        if self.memory_budget is not None:
            self.memory_budget.refund_vri(vri.vri_id)
        return reassigned

    # -- failure handling (the supervisor's entry points) -----------------------
    def handle_failure(self, vri: VriRuntime) -> int:
        """Take a crashed or hung VRI out of service.

        The instance is already dead (crash) or about to be killed
        (hang); either way its in-flight frames are drained as losses —
        "frames in flight may drop" — while its *flows* are unpinned so
        the next frame of each one re-balances onto a survivor (or onto
        the replacement, once the supervisor respawns it).  Returns the
        number of flow-table entries reassigned this way.
        """
        if vri not in self.vris:
            raise AllocationError("VRI does not belong to this monitor")
        if vri.alive:
            # Hung, not dead: the supervisor escalates to kill(), the
            # same hard path the thesis' monitor reserves for itself.
            vri.kill()
        self.failures += 1
        stranded = vri.drain_losses()
        self.dropped_on_failure += stranded
        # On the obs registry too: the SLO watchdog's drop_rate rule
        # sums this family, which is what makes a kill *observable* as
        # a budget breach rather than only as a supervisor ledger entry.
        self._c_fault_dropped.inc(stranded)
        reassigned = self._forget(vri)
        if _TRACE.enabled:
            _TRACE.instant("core.failover", ts=self.sim.now, cat="alloc",
                           track="lvrm", vr=self.spec.name, vri=vri.vri_id,
                           core=vri.core.core_id, reason=vri.failed or "hang",
                           flows_reassigned=reassigned,
                           n_vris=len(self.vris))
        return reassigned

    def occupied_cores(self) -> set:
        return {v.core.core_id for v in self.vris}

    # -- data plane --------------------------------------------------------------
    def record_arrival(self, now: float) -> None:
        self.arrival.observe(now)

    def dispatch_cost(self) -> float:
        """LVRM CPU cost of the balancing decision for one frame."""
        return self.balancer.decision_cost(self.costs, len(self.vris))

    def pick(self, frame, now: float) -> VriRuntime:
        if not self.vris:
            raise AllocationError(f"VR {self.spec.name}: no live VRI")
        return self.balancer.pick(frame, self.vris, now)

    def deliver(self, frame, vri: VriRuntime, now: float) -> bool:
        """Push the frame into the chosen VRI's incoming data queue and
        feed the load estimator (the VRI adapter's duty)."""
        accepted = vri.channels.data_in.try_push(frame)
        vri.adapter.observe_dispatch(now, vri.channels.data_in.data_count,
                                     accepted)
        if accepted:
            self.dispatched += 1
            if frame.span is not None:
                # Sampled frame: the dispatch phase ends here.
                frame.span += (now,)
            if _TRACE.enabled:
                _TRACE.instant("frame.enqueue", ts=now, cat="frame",
                               track="lvrm", vr=self.spec.name,
                               vri=vri.vri_id,
                               qlen=vri.channels.data_in.data_count)
        else:
            self._c_queue_full.inc()
            if _TRACE.enabled:
                _TRACE.instant("frame.drop", ts=now, cat="frame",
                               track="lvrm", reason="queue_full",
                               vr=self.spec.name, vri=vri.vri_id)
        return accepted

    @property
    def dropped_queue_full(self) -> int:
        """Read-through view of the obs-registry drop counter."""
        return self._c_queue_full.value

    # -- aggregate telemetry for the VR monitor --------------------------------------
    def service_rate(self) -> float:
        """Aggregate measured service rate over live VRIs (frames/s)."""
        return sum(v.lvrm_adapter.service_rate() for v in self.vris)

    def total_processed(self) -> int:
        return sum(v.processed for v in self.vris)
