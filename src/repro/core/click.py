"""A miniature Click modular router.

The paper's second hosted VR type parses a Click configuration script
and relays frames through a chain of elements (thesis §3.8); the extra
per-element work is exactly why the Click VR trails the C++ VR in every
throughput figure.  This module implements enough of Click to make that
real: a parser for the declaration/connection subset of the Click
language and a library of the classic forwarding elements.

Supported syntax::

    src :: FromDevice(eth0);
    rt  :: StaticIPLookup(10.2.0.0/16 1, 10.1.0.0/16 0);
    src -> Strip(14) -> CheckIPHeader -> rt -> DecIPTTL -> q :: Queue(64)
        -> ToDevice(eth1);

Declarations (``name :: Class(args)``), inline anonymous elements inside
connection chains, ``//`` and ``#`` comments.  Elements are connected in
a linear pipeline per chain (Click's port fan-out is not needed for the
paper's configs and is rejected explicitly).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ConfigError
from repro.net.frame import Frame
from repro.routing.prefix import Prefix
from repro.routing.table import RouteTable

__all__ = ["ClickElement", "ClickConfig", "parse_click_config",
           "DEFAULT_FORWARDER_CONFIG", "ELEMENT_CLASSES"]


class ClickElement:
    """Base element: consume a frame, return it (possibly annotated) or
    ``None`` to drop."""

    n_class = "Element"

    def __init__(self, args: str = ""):
        self.args = args.strip()
        self.configure()

    def configure(self) -> None:
        """Parse ``self.args``; raise ConfigError when malformed."""

    def process(self, frame: Frame) -> Optional[Frame]:
        return frame

    def __repr__(self) -> str:  # pragma: no cover
        return f"{type(self).__name__}({self.args})"


class FromDevice(ClickElement):
    """Entry marker; the device name is informational."""

    n_class = "FromDevice"


class ToDevice(ClickElement):
    """Terminal element: stamps the output interface.

    ``ToDevice(routed)`` (or no argument) keeps the interface chosen by
    an upstream routing element — the linear-pipeline stand-in for
    Click's per-port fan-out to multiple ToDevice instances.
    """

    n_class = "ToDevice"

    def configure(self) -> None:
        if self.args in ("", "routed"):
            self.iface: Optional[int] = None
            return
        m = re.fullmatch(r"(?:eth)?(\d+)", self.args)
        if not m:
            raise ConfigError(f"ToDevice expects an interface, got {self.args!r}")
        self.iface = int(m.group(1))

    def process(self, frame: Frame) -> Optional[Frame]:
        if self.iface is not None:
            frame.out_iface = self.iface
        elif frame.out_iface is None:
            return None  # nothing routed it; drop rather than mis-send
        return frame


class Strip(ClickElement):
    """Strips link-layer bytes; pure cost in this model."""

    n_class = "Strip"

    def configure(self) -> None:
        if self.args and not self.args.isdigit():
            raise ConfigError(f"Strip expects a byte count, got {self.args!r}")
        self.nbytes = int(self.args) if self.args else 14


class CheckIPHeader(ClickElement):
    """Drops frames that cannot be valid IP."""

    n_class = "CheckIPHeader"

    def process(self, frame: Frame) -> Optional[Frame]:
        if frame.size < 84 or frame.ttl <= 0:
            return None
        return frame


class Classifier(ClickElement):
    """Single-output pattern matcher.

    Real Click matches raw byte patterns per output port; this linear
    subset supports the forms the examples need:

    * ``Classifier(12/0800)`` — the classic "is IPv4" ethertype match,
      a pass-through here (all simulated frames are IPv4);
    * ``Classifier(udp)`` / ``Classifier(tcp)`` / ``Classifier(icmp)``
      — pass only that transport protocol, drop the rest.
    """

    n_class = "Classifier"

    _PROTOS = {"udp": 17, "tcp": 6, "icmp": 1}

    def configure(self) -> None:
        arg = self.args.lower()
        if not arg or "/" in arg:
            self.proto: Optional[int] = None  # byte-pattern form: pass
            return
        if arg not in self._PROTOS:
            raise ConfigError(
                f"Classifier expects a byte pattern or one of "
                f"{sorted(self._PROTOS)}, got {self.args!r}")
        self.proto = self._PROTOS[arg]

    def process(self, frame: Frame) -> Optional[Frame]:
        if self.proto is not None and frame.proto != self.proto:
            return None
        return frame


class IPFilter(ClickElement):
    """First-match ACL on the source address (a routing-policy hook).

    Syntax: comma-separated ``allow <prefix>`` / ``deny <prefix>``
    rules, evaluated in order; ``all`` matches everything.  A frame
    matching no rule is allowed (Click's trailing implicit allow is
    spelled out as ``allow all`` in most configs anyway)::

        IPFilter(deny 10.1.9.0/24, allow all)
    """

    n_class = "IPFilter"

    def configure(self) -> None:
        self.rules = []
        self.dropped = 0
        if not self.args:
            return
        for clause in self.args.split(","):
            tokens = clause.split()
            if len(tokens) != 2 or tokens[0] not in ("allow", "deny"):
                raise ConfigError(
                    f"IPFilter clause must be 'allow|deny <prefix|all>', "
                    f"got {clause.strip()!r}")
            action = tokens[0] == "allow"
            prefix = (Prefix(0, 0) if tokens[1] == "all"
                      else Prefix.parse(tokens[1]))
            self.rules.append((prefix, action))

    def process(self, frame: Frame) -> Optional[Frame]:
        for prefix, allow in self.rules:
            if prefix.contains(frame.src_ip):
                if allow:
                    return frame
                self.dropped += 1
                return None
        return frame


class DecIPTTL(ClickElement):
    """Decrements TTL; drops expired frames."""

    n_class = "DecIPTTL"

    def process(self, frame: Frame) -> Optional[Frame]:
        frame.ttl -= 1
        if frame.ttl <= 0:
            return None
        return frame


class StaticIPLookup(ClickElement):
    """Longest-prefix-match routing: ``prefix iface, prefix iface, ...``."""

    n_class = "StaticIPLookup"

    def configure(self) -> None:
        self.table = RouteTable()
        if not self.args:
            return
        for entry in self.args.split(","):
            tokens = entry.split()
            if len(tokens) != 2 or not tokens[1].isdigit():
                raise ConfigError(
                    f"StaticIPLookup entry must be '<prefix> <iface>', "
                    f"got {entry.strip()!r}")
            self.table.add(Prefix.parse(tokens[0]), int(tokens[1]))

    def process(self, frame: Frame) -> Optional[Frame]:
        iface = self.table.get_cached(frame.dst_ip)
        if iface is None:
            return None
        frame.out_iface = iface
        return frame


class Queue(ClickElement):
    """Structural buffer; in the linear pipeline it is pure cost."""

    n_class = "Queue"

    def configure(self) -> None:
        if self.args and not self.args.isdigit():
            raise ConfigError(f"Queue expects a size, got {self.args!r}")
        self.size = int(self.args) if self.args else 1000


class Counter(ClickElement):
    """Counts frames passing through."""

    n_class = "Counter"

    def configure(self) -> None:
        self.count = 0

    def process(self, frame: Frame) -> Optional[Frame]:
        self.count += 1
        return frame


class Discard(ClickElement):
    """Drops everything."""

    n_class = "Discard"

    def process(self, frame: Frame) -> Optional[Frame]:
        return None


ELEMENT_CLASSES: Dict[str, type] = {
    cls.n_class: cls
    for cls in (FromDevice, ToDevice, Strip, CheckIPHeader, Classifier,
                IPFilter, DecIPTTL, StaticIPLookup, Queue, Counter,
                Discard)
}


@dataclass
class ClickConfig:
    """A parsed configuration: named elements plus the linear pipeline."""

    elements: Dict[str, ClickElement] = field(default_factory=dict)
    pipeline: List[ClickElement] = field(default_factory=list)

    @property
    def n_elements(self) -> int:
        return len(self.pipeline)

    def run(self, frame: Frame) -> Optional[Frame]:
        """Push one frame through the pipeline; None when dropped."""
        for element in self.pipeline:
            result = element.process(frame)
            if result is None:
                return None
            frame = result
        return frame


_DECL = re.compile(r"^\s*(\w+)\s*::\s*(\w+)\s*(?:\((.*)\))?\s*$", re.S)
_INLINE = re.compile(r"^\s*(?:(\w+)\s*::\s*)?(\w+)\s*(?:\((.*)\))?\s*$", re.S)


def _strip_comments(text: str) -> str:
    text = re.sub(r"//[^\n]*", "", text)
    text = re.sub(r"#[^\n]*", "", text)
    return text


def _split_statements(text: str) -> List[str]:
    """Split on ';' outside parentheses."""
    out, depth, cur = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise ConfigError("unbalanced ')' in Click config")
        if ch == ";" and depth == 0:
            out.append("".join(cur))
            cur = []
        else:
            cur.append(ch)
    if depth != 0:
        raise ConfigError("unbalanced '(' in Click config")
    tail = "".join(cur).strip()
    if tail:
        out.append(tail)
    return [s for s in (stmt.strip() for stmt in out) if s]


def _split_chain(stmt: str) -> List[str]:
    """Split a connection chain on '->' outside parentheses."""
    out, depth, cur = [], 0, []
    i = 0
    while i < len(stmt):
        ch = stmt[i]
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if depth == 0 and stmt.startswith("->", i):
            out.append("".join(cur))
            cur = []
            i += 2
            continue
        cur.append(ch)
        i += 1
    out.append("".join(cur))
    return out


def parse_click_config(text: str) -> ClickConfig:
    """Parse a Click script into a :class:`ClickConfig`."""
    config = ClickConfig()
    chains: List[List[ClickElement]] = []
    anon = 0

    def instantiate(name: Optional[str], cls_name: str, args: str) -> ClickElement:
        nonlocal anon
        cls = ELEMENT_CLASSES.get(cls_name)
        if cls is None:
            raise ConfigError(f"unknown Click element class {cls_name!r}")
        element = cls(args or "")
        if name is None:
            name = f"_anon{anon}"
            anon += 1
        if name in config.elements:
            raise ConfigError(f"duplicate element name {name!r}")
        config.elements[name] = element
        return element

    for stmt in _split_statements(_strip_comments(text)):
        if "->" in stmt:
            chain: List[ClickElement] = []
            for part in _split_chain(stmt):
                part = part.strip()
                if part in config.elements:
                    chain.append(config.elements[part])
                    continue
                m = _INLINE.match(part)
                if not m:
                    raise ConfigError(f"cannot parse chain element {part!r}")
                name, cls_name, args = m.groups()
                if name is None and cls_name in config.elements:
                    chain.append(config.elements[cls_name])
                else:
                    chain.append(instantiate(name, cls_name, args or ""))
            chains.append(chain)
        else:
            m = _DECL.match(stmt)
            if not m:
                raise ConfigError(f"cannot parse statement {stmt!r}")
            name, cls_name, args = m.groups()
            instantiate(name, cls_name, args or "")

    if len(chains) > 1:
        raise ConfigError(
            "this mini-Click supports a single linear pipeline; "
            f"got {len(chains)} chains")
    if chains:
        config.pipeline = chains[0]
    return config


#: The paper's "minimal data forwarding" Click VR: an eight-element
#: pipeline relaying frames from the sender-side to the receiver-side
#: interface.
DEFAULT_FORWARDER_CONFIG = """
// Minimal forwarding Click VR (Figure 4.1 gateway).
src :: FromDevice(eth0);
rt  :: StaticIPLookup(10.2.0.0/16 1, 10.1.0.0/16 0);
src -> Classifier(12/0800) -> Strip(14) -> CheckIPHeader -> rt
    -> DecIPTTL -> Queue(64) -> ToDevice(routed);
"""
