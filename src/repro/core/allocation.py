"""Core allocation strategies (thesis §3.2, Figure 3.2).

The VR monitor runs an allocation pass at most once per period (1 s in
the paper, tunable).  Per pass and per VR, the allocator issues one of
three decisions — create one VRI, destroy one VRI, or hold — exactly the
granularity of Figure 3.2's ``allocate()``.

Three strategies:

* :class:`FixedAllocation` — pre-assign N cores at VR start; never move.
* :class:`DynamicFixedThresholds` — compare the VR's estimated arrival
  rate against multiples of a fixed per-VRI threshold rate: ``c`` cores
  while the rate sits in ``(thr*(c-1), thr*c]``.
* :class:`DynamicDynamicThresholds` — compare the arrival rate against
  the *measured* service rate: grow when arrivals exceed current service
  capacity, shrink when one fewer VRI would still keep up.  Handles VRs
  whose per-frame cost differs (Experiment 2e's 1:2 service ratio)
  without any configured rate constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["VrLoadState", "CoreAllocator", "FixedAllocation",
           "DynamicFixedThresholds", "DynamicDynamicThresholds",
           "HOLD", "GROW", "SHRINK"]

GROW = 1
HOLD = 0
SHRINK = -1


@dataclass(frozen=True)
class VrLoadState:
    """What the allocator may look at for one VR."""

    n_vris: int
    #: Estimated aggregate arrival rate (frames/s) for the VR.
    arrival_rate: float
    #: Estimated aggregate service rate (frames/s) over all live VRIs.
    service_rate: float
    max_vris: int

    def __post_init__(self) -> None:
        if self.n_vris < 0 or self.max_vris < 1:
            raise ConfigError("invalid VRI counts in load state")


class CoreAllocator:
    """Interface: one grow/hold/shrink decision per pass per VR."""

    name = "abstract"

    def decide(self, state: VrLoadState) -> int:
        raise NotImplementedError

    def initial_vris(self) -> int:
        """How many VRIs a freshly started VR receives."""
        return 1

    @staticmethod
    def _clamp(decision: int, state: VrLoadState) -> int:
        if decision == GROW and state.n_vris >= state.max_vris:
            return HOLD
        if decision == SHRINK and state.n_vris <= 1:
            return HOLD
        return decision


class FixedAllocation(CoreAllocator):
    """Pre-assigned core count (Experiment 2b)."""

    name = "fixed"

    def __init__(self, n_cores: int):
        if n_cores < 1:
            raise ConfigError("fixed allocation needs >= 1 core")
        self.n_cores = n_cores

    def initial_vris(self) -> int:
        return self.n_cores

    def decide(self, state: VrLoadState) -> int:
        # Converge to the fixed count if the monitor started elsewhere.
        if state.n_vris < min(self.n_cores, state.max_vris):
            return GROW
        if state.n_vris > self.n_cores:
            return SHRINK
        return HOLD


class DynamicFixedThresholds(CoreAllocator):
    """Rate thresholds at fixed multiples of ``threshold_fps``.

    The paper's Experiment 2c rule: allocate ``c`` cores while the
    aggregate rate lies in ``(60(c-1), 60c]`` Kfps.  ``hysteresis`` keeps
    a small dead band below each release boundary so estimator noise at
    an exact multiple does not flap the allocation.
    """

    name = "dynamic-fixed"

    def __init__(self, threshold_fps: float, hysteresis: float = 0.05):
        if threshold_fps <= 0:
            raise ConfigError("threshold rate must be positive")
        if not 0 <= hysteresis < 1:
            raise ConfigError("hysteresis must be in [0, 1)")
        self.threshold_fps = threshold_fps
        self.hysteresis = hysteresis

    def decide(self, state: VrLoadState) -> int:
        c = max(state.n_vris, 1)
        rate = state.arrival_rate
        if rate > self.threshold_fps * c:
            return self._clamp(GROW, state)
        release_at = self.threshold_fps * (c - 1) * (1.0 - self.hysteresis)
        if c > 1 and rate <= release_at:
            return self._clamp(SHRINK, state)
        return HOLD


class DynamicDynamicThresholds(CoreAllocator):
    """Arrival rate vs *measured* service rate (Experiment 2e).

    Grow while arrivals exceed the VR's current aggregate service
    capacity (scaled by ``headroom`` to trigger slightly before full
    saturation); shrink when the capacity of one fewer VRI would still
    cover the arrivals with margin.
    """

    name = "dynamic-dynamic"

    def __init__(self, headroom: float = 0.95, shrink_margin: float = 0.9):
        if not 0 < headroom <= 1:
            raise ConfigError("headroom must be in (0, 1]")
        if not 0 < shrink_margin <= 1:
            raise ConfigError("shrink_margin must be in (0, 1]")
        self.headroom = headroom
        self.shrink_margin = shrink_margin

    def decide(self, state: VrLoadState) -> int:
        c = max(state.n_vris, 1)
        arrival = state.arrival_rate
        service = state.service_rate
        if service <= 0.0:
            # No departures observed yet: grow only if traffic exists.
            return self._clamp(GROW if arrival > 0 else HOLD, state)
        if arrival > service * self.headroom:
            return self._clamp(GROW, state)
        one_less = service * (c - 1) / c
        if c > 1 and arrival <= one_less * self.shrink_margin:
            return self._clamp(SHRINK, state)
        return HOLD
