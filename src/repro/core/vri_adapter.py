"""The VRI adapter (thesis §3.4): LVRM-side per-VRI relay + load estimation.

One adapter per VRI.  When LVRM dispatches a frame to the VRI, the
adapter observes the incoming data queue and updates the VRI's load
estimate, which the VRI monitor's JSQ balancer reads.
"""

from __future__ import annotations

from repro.core.estimation import EwmaQueueLength, LoadEstimator

__all__ = ["VriAdapter"]


class VriAdapter:
    """Load estimation and relay bookkeeping for one VRI."""

    def __init__(self, vri_id: int, estimator: LoadEstimator = None):
        self.vri_id = vri_id
        self.estimator = estimator if estimator is not None else EwmaQueueLength()
        # Label this estimator's ``ewma.update`` trace events.
        if not getattr(self.estimator, "trace_name", ""):
            try:
                self.estimator.trace_name = f"vri{vri_id}.queue_len"
            except AttributeError:
                pass  # user-supplied estimator without the attribute
        self.relayed = 0
        self.push_failures = 0

    def observe_dispatch(self, now: float, queue_len: int,
                         accepted: bool) -> None:
        """Record one dispatch attempt (Figure 3.4's "estimate")."""
        self.estimator.observe(now, queue_len)
        if accepted:
            self.relayed += 1
        else:
            self.push_failures += 1

    def load_estimate(self) -> float:
        return self.estimator.get()
