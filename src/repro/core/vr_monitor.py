"""The VR monitor (thesis §3.2): core allocation across VRs.

Runs inside the LVRM process.  At most once per ``period`` (1 s in the
paper) and only upon receipt of a packet — exactly Figure 3.2's trigger —
it iterates the hosted VRs, compares each VR's estimated arrival rate
(and, with dynamic thresholds, measured service rate) against its
allocator, and creates or destroys one VRI adapter per VR per pass.

The pass is *synchronous with the data path*: while it runs, LVRM is not
dispatching frames, which is why the paper measures its duration as the
"reaction time" (Figure 4.11).  We reproduce that: the pass charges scan
cost plus ``vfork()``/``kill()`` cost on LVRM's core, and records the
inclusive begin-of-iteration to end-of-create/destroy latency.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.core.allocation import (CoreAllocator, GROW, SHRINK, VrLoadState)
from repro.core.vri_monitor import VriMonitor
from repro.errors import AllocationError
from repro.hardware.affinity import AffinityPolicy
from repro.obs.registry import default_registry
from repro.obs.trace import TRACER as _TRACE
from repro.sim.timeline import StepSeries, Timeline

__all__ = ["VrMonitor", "VrEntry"]

_DECISION_NAMES = {GROW: "grow", SHRINK: "shrink", 0: "hold"}
_vrmon_ids = itertools.count(1)


@dataclass
class VrEntry:
    """One hosted VR and its allocation machinery."""

    monitor: VriMonitor
    allocator: CoreAllocator
    #: Staircase of allocated cores over time (Figures 4.10/4.12/4.13).
    cores_series: StepSeries = field(default_factory=StepSeries)


class VrMonitor:
    """Core allocation across all hosted VRs."""

    def __init__(self, sim, machine, costs, affinity: AffinityPolicy,
                 lvrm_core_id: int, period: float = 1.0,
                 obs_labels: Optional[Dict[str, str]] = None):
        if period <= 0:
            raise ValueError("allocation period must be positive")
        self.sim = sim
        self.machine = machine
        self.costs = costs
        self.affinity = affinity
        self.lvrm_core_id = lvrm_core_id
        self.period = period
        self.entries: Dict[str, VrEntry] = {}
        self._last_pass = -float("inf")
        #: Reaction-time samples (Figure 4.11).
        self.alloc_latency = Timeline("alloc")
        self.dealloc_latency = Timeline("dealloc")
        self.passes = 0
        labels = dict(obs_labels) if obs_labels else {
            "vrmon": str(next(_vrmon_ids))}
        self._h_pass = default_registry().histogram(
            "alloc_pass_duration_seconds",
            "inclusive duration of one allocation pass (Fig 4.11)",
            **labels)

    # -- registration ------------------------------------------------------------
    def add_vr(self, monitor: VriMonitor, allocator: CoreAllocator) -> VrEntry:
        name = monitor.spec.name
        if name in self.entries:
            raise AllocationError(f"VR {name!r} already hosted")
        entry = VrEntry(monitor=monitor, allocator=allocator)
        self.entries[name] = entry
        return entry

    def occupied_cores(self) -> Set[int]:
        occupied: Set[int] = set()
        for entry in self.entries.values():
            occupied |= entry.monitor.occupied_cores()
        return occupied

    def start_vr(self, name: str):
        """Generator: spawn the VR's initial VRIs (charged like any other
        allocation, since the paper's fixed approach pre-assigns at VR
        start)."""
        entry = self.entries[name]
        for _ in range(entry.allocator.initial_vris()):
            yield from self._grow(entry)
        entry.cores_series.record(self.sim.now, len(entry.monitor.vris))

    # -- the allocation pass -------------------------------------------------------
    def due(self, now: float) -> bool:
        """Figure 3.2's trigger guard: a packet arrived and at least
        ``period`` elapsed since the previous pass."""
        return now - self._last_pass >= self.period

    def allocate_pass(self):
        """Generator: one pass over all VRs (run on LVRM's core)."""
        self._last_pass = self.sim.now
        self.passes += 1
        t_pass = self.sim.now
        lvrm_core = self.machine.core(self.lvrm_core_id)
        for entry in self.entries.values():
            pass_start = self.sim.now
            monitor = entry.monitor
            n = len(monitor.vris)
            scan = (self.costs.alloc_scan_fixed
                    + self.costs.alloc_scan_per_vri * max(n, 1))
            yield from lvrm_core.execute(scan, owner=self, time_class="us")
            state = VrLoadState(
                n_vris=n,
                arrival_rate=monitor.arrival.rate(self.sim.now,
                                                  idle_timeout=self.period),
                service_rate=monitor.service_rate(),
                max_vris=monitor.spec.max_vris,
            )
            decision = entry.allocator.decide(state)
            if _TRACE.enabled:
                _TRACE.instant(
                    "alloc.decision", ts=self.sim.now, cat="alloc",
                    track="lvrm", vr=monitor.spec.name,
                    decision=_DECISION_NAMES.get(decision, str(decision)),
                    n_vris=n, arrival=state.arrival_rate,
                    service=state.service_rate)
            if decision == GROW:
                try:
                    yield from self._grow(entry)
                except AllocationError:
                    continue  # no core available; hold
                self.alloc_latency.record(self.sim.now,
                                          self.sim.now - pass_start)
            elif decision == SHRINK:
                yield from self._shrink(entry)
                self.dealloc_latency.record(self.sim.now,
                                            self.sim.now - pass_start)
            if decision != 0:
                entry.cores_series.record(self.sim.now,
                                          len(monitor.vris))
        self._h_pass.observe(self.sim.now - t_pass)
        if _TRACE.enabled:
            _TRACE.complete("alloc.pass", ts=t_pass,
                            dur=self.sim.now - t_pass, cat="alloc",
                            track="lvrm", passes=self.passes)

    def _grow(self, entry: VrEntry):
        """Create one VRI: pick a core (sibling-first by default), pay
        the ``vfork()`` + setup cost, bind."""
        placement = self.affinity.place(self.occupied_cores())
        lvrm_core = self.machine.core(self.lvrm_core_id)
        yield from lvrm_core.execute(self.costs.vfork_cost, owner=self,
                                     time_class="sy")
        entry.monitor.create_vri(placement)

    def _shrink(self, entry: VrEntry):
        """Destroy one VRI: ``kill()`` + teardown."""
        lvrm_core = self.machine.core(self.lvrm_core_id)
        yield from lvrm_core.execute(self.costs.kill_cost, owner=self,
                                     time_class="sy")
        entry.monitor.destroy_vri()

    # -- telemetry -------------------------------------------------------------------
    def cores_of(self, name: str) -> int:
        return len(self.entries[name].monitor.vris)

    def snapshot_series(self) -> Dict[str, StepSeries]:
        return {name: e.cores_series for name, e in self.entries.items()}
