"""Native Linux IP forwarding (the gateway with ``ip_forward=1``).

The kernel's softirq path: frames are pulled from the NIC rings and
forwarded with a fixed + per-byte cost, charged to one core in the
``si`` (software interrupt) CPU class — matching the paper's top output,
where native forwarding shows only softirq time.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.hardware.costs import CostModel
from repro.hardware.machine import Machine
from repro.net.frame import Frame
from repro.net.testbed import Testbed
from repro.sim.engine import Simulator
from repro.sim.timeline import Timeline

__all__ = ["KernelForwarder"]


class KernelForwarder:
    """Kernel IP forwarding between the gateway's NICs."""

    def __init__(self, sim: Simulator, machine: Machine, testbed: Testbed,
                 costs: CostModel, core_id: int = 0,
                 per_frame_extra: float = 0.0,
                 extra_latency: float = 0.0,
                 record_latency: bool = True):
        self.sim = sim
        self.machine = machine
        self.testbed = testbed
        self.costs = costs
        self.core = machine.core(core_id)
        #: Hook for the hypervisor baselines: additional per-frame CPU.
        self.per_frame_extra = per_frame_extra
        #: Additional (pipelined) one-way delay per frame.
        self.extra_latency = extra_latency
        self.forwarded = 0
        self.dropped_no_route = 0
        self.latency = Timeline("kernel-latency") if record_latency else None
        self.on_forward: List[Callable[[Frame, float], None]] = []
        self._wake: Optional[Callable[[], None]] = None
        self.process = sim.process(self._run())

    def _frame_cost(self, frame: Frame) -> float:
        return (self.costs.kernel_forward_fixed
                + self.costs.kernel_forward_per_byte * frame.size
                + self.per_frame_extra)

    def _poll(self) -> Optional[Frame]:
        for nic in self.testbed.gw_nics:
            frame = nic.poll()
            if frame is not None:
                return frame
        return None

    def _transmit(self, frame: Frame) -> None:
        iface = self.testbed.iface_for_dst(frame.dst_ip)
        frame.out_iface = iface
        if self.testbed.gw_nics[iface].transmit(frame):
            self.forwarded += 1
            if self.latency is not None:
                self.latency.record(self.sim.now,
                                    self.sim.now - frame.t_created)
            for hook in self.on_forward:
                hook(frame, self.sim.now)

    def _run(self):
        while True:
            frame = self._poll()
            if frame is not None:
                yield from self.core.execute(self._frame_cost(frame),
                                             owner=self, time_class="si")
                if self.extra_latency > 0.0:
                    # Emulation latency is pipelined: it delays delivery
                    # without occupying the forwarding core.
                    self.sim.call_in(self.extra_latency,
                                     lambda f=frame: self._transmit(f))
                else:
                    self._transmit(frame)
                continue
            # Idle: sleep until a NIC signals an arrival.
            wake = self.sim.event()
            fired = [False]

            def _wake() -> None:
                if not fired[0]:
                    fired[0] = True
                    wake.succeed()

            for nic in self.testbed.gw_nics:
                nic.notify = _wake
            if any(nic.rx_backlog for nic in self.testbed.gw_nics):
                _wake()
            yield wake
            for nic in self.testbed.gw_nics:
                nic.notify = None
