"""Baseline forwarding mechanisms of Experiment 1a/1b.

* :class:`~repro.baselines.linux_forward.KernelForwarder` — native Linux
  IP forwarding: the softirq path inside the kernel, no user space.
* :class:`~repro.baselines.hypervisor.HypervisorForwarder` — a guest VM
  with IP forwarding behind a general-purpose hypervisor's bridged NIC
  (VMware Server and QEMU-KVM presets).
"""

from repro.baselines.linux_forward import KernelForwarder
from repro.baselines.hypervisor import (HypervisorForwarder, vmware_server,
                                        qemu_kvm)

__all__ = ["KernelForwarder", "HypervisorForwarder", "vmware_server",
           "qemu_kvm"]
