"""General-purpose hypervisor baselines (Experiment 1a/1b).

A guest VM with Linux IP forwarding behind a bridged virtual NIC.  Each
frame crosses the hypervisor twice (in and out), paying world switches
and NIC emulation on top of the guest's kernel forwarding; the extra
emulation latency is pipelined (it inflates RTT far more than it caps
throughput, matching Figure 4.4's "remarkably higher" latencies).

Presets: ``vmware_server`` and ``qemu_kvm``.  The KVM preset encodes the
pathologically slow configuration the paper measured and could not fully
explain ("we conjecture that the performance may be improved with other
configuration settings") — an emulated-NIC setup without virtio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.linux_forward import KernelForwarder
from repro.hardware.costs import CostModel
from repro.hardware.machine import Machine
from repro.net.testbed import Testbed
from repro.sim.engine import Simulator

__all__ = ["HypervisorForwarder", "HypervisorProfile", "vmware_server",
           "qemu_kvm"]


@dataclass(frozen=True)
class HypervisorProfile:
    """Overhead profile of one hypervisor product."""

    name: str
    #: Extra per-frame CPU (world switches + NIC emulation), per crossing
    #: pair (ingress + egress combined).
    per_frame: float
    #: Extra one-way latency through the emulation queues.
    latency: float


def vmware_server(costs: CostModel) -> HypervisorProfile:
    return HypervisorProfile("vmware-server", costs.vmware_per_frame,
                             costs.vmware_latency)


def qemu_kvm(costs: CostModel) -> HypervisorProfile:
    return HypervisorProfile("qemu-kvm", costs.qemu_per_frame,
                             costs.qemu_latency)


class HypervisorForwarder(KernelForwarder):
    """Guest-VM forwarding behind a hypervisor profile."""

    def __init__(self, sim: Simulator, machine: Machine, testbed: Testbed,
                 costs: CostModel, profile: HypervisorProfile,
                 core_id: int = 0, record_latency: bool = True):
        super().__init__(sim, machine, testbed, costs, core_id=core_id,
                         per_frame_extra=profile.per_frame,
                         extra_latency=profile.latency,
                         record_latency=record_latency)
        self.profile = profile
