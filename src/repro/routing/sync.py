"""Dynamic route synchronization among VRIs (thesis §3.7 extension).

The thesis initializes route tables from static map files and notes:
"If dynamic routes are used, the VRIs can be slightly changed to support
both static and dynamic routes without affecting the design of LVRM",
with Figure 2.1's control queues carrying the synchronization ("a VRI
can share control information with other VRIs of the same VR, for
example, to synchronize the routing state").

This module makes that concrete:

* a compact binary codec for batches of route updates (announce or
  withdraw a prefix with a next-hop interface and a metric);
* :class:`RouteSyncAgent`, which installs itself as a VRI's control
  handler, applies incoming ``KIND_ROUTE_SYNC`` events to the VRI's live
  route table (C++ VR or the Click pipeline's ``StaticIPLookup``), and
  can announce local changes to the VR's other instances through LVRM —
  exactly the control-queue path Experiment 1e measures.

Metric semantics are distance-vector-ish: an announcement replaces an
existing route only when its metric is at most the stored one; a
withdraw removes the prefix regardless of metric.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.core.click import StaticIPLookup
from repro.core.router_types import ClickVrModel, CppVrModel, RouterModel
from repro.errors import RoutingError
from repro.ipc.messages import ControlEvent, KIND_ROUTE_SYNC
from repro.routing.prefix import Prefix
from repro.routing.table import RouteTable

__all__ = ["RouteUpdate", "encode_updates", "decode_updates",
           "router_table_of", "RouteSyncAgent"]

_UPDATE = struct.Struct("<IBBHB")  # network, plen, withdraw, iface, metric
_BATCH = struct.Struct("<H")


@dataclass(frozen=True)
class RouteUpdate:
    """One announcement or withdrawal."""

    prefix: Prefix
    iface: int = 0
    metric: int = 1
    withdraw: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.iface <= 0xFFFF:
            raise RoutingError(f"iface out of range: {self.iface}")
        if not 0 <= self.metric <= 0xFF:
            raise RoutingError(f"metric out of range: {self.metric}")


def encode_updates(updates: Sequence[RouteUpdate]) -> bytes:
    """Pack updates into a control-event payload."""
    if len(updates) > 0xFFFF:
        raise RoutingError("too many updates for one event")
    out = [_BATCH.pack(len(updates))]
    for u in updates:
        out.append(_UPDATE.pack(u.prefix.network, u.prefix.length,
                                1 if u.withdraw else 0, u.iface, u.metric))
    return b"".join(out)


def decode_updates(payload: bytes) -> List[RouteUpdate]:
    if len(payload) < _BATCH.size:
        raise RoutingError("short route-sync payload")
    (count,) = _BATCH.unpack_from(payload)
    need = _BATCH.size + count * _UPDATE.size
    if len(payload) < need:
        raise RoutingError("truncated route-sync payload")
    updates = []
    off = _BATCH.size
    for _ in range(count):
        network, plen, withdraw, iface, metric = _UPDATE.unpack_from(
            payload, off)
        off += _UPDATE.size
        updates.append(RouteUpdate(Prefix(network, plen), iface, metric,
                                   withdraw=bool(withdraw)))
    return updates


def router_table_of(router: RouterModel) -> RouteTable:
    """The live LPM table inside a hosted router, whichever type."""
    if isinstance(router, CppVrModel):
        return router.routes
    if isinstance(router, ClickVrModel):
        for element in router.config.pipeline:
            if isinstance(element, StaticIPLookup):
                return element.table
        raise RoutingError("Click pipeline has no StaticIPLookup element")
    raise RoutingError(f"unsupported router type {type(router).__name__}")


class RouteSyncAgent:
    """Dynamic-route endpoint living inside one VRI.

    Construction wires the agent as the VRI's control handler (chaining
    to any pre-existing handler, so latency probes keep working).
    """

    def __init__(self, vri) -> None:
        self.vri = vri
        self.table = router_table_of(vri.router)
        #: prefix -> (iface, metric) for metric comparisons.
        self._metrics: Dict[Prefix, Tuple[int, int]] = {
            p: (hop, 0) for p, hop in self.table}
        self.applied = 0
        self.ignored = 0
        self._prior_handler = vri.control_handler
        vri.control_handler = self._on_control

    # -- receive side ------------------------------------------------------------
    def _on_control(self, event: ControlEvent, vri) -> None:
        if event.kind == KIND_ROUTE_SYNC:
            self.apply(decode_updates(event.payload))
        elif self._prior_handler is not None:
            self._prior_handler(event, vri)

    def apply(self, updates: Iterable[RouteUpdate]) -> None:
        for update in updates:
            if update.withdraw:
                if update.prefix in self._metrics:
                    self.table.remove(update.prefix)
                    del self._metrics[update.prefix]
                    self.applied += 1
                else:
                    self.ignored += 1
                continue
            current = self._metrics.get(update.prefix)
            if current is not None and current[1] < update.metric:
                self.ignored += 1  # we already know a better path
                continue
            self.table.add(update.prefix, update.iface)
            self._metrics[update.prefix] = (update.iface, update.metric)
            self.applied += 1

    # -- announce side -----------------------------------------------------------
    def announce(self, updates: Sequence[RouteUpdate],
                 peer_vri_ids: Sequence[int]):
        """Generator: apply locally, then share with peers via LVRM.

        Run it inside a simulation process:
        ``yield from agent.announce(updates, peers)``.  Each peer gets
        its own control event (the paper's UDP-datagram-like model).
        """
        self.apply(updates)
        payload = encode_updates(list(updates))
        for peer in peer_vri_ids:
            event = ControlEvent(KIND_ROUTE_SYNC, self.vri.vri_id, peer,
                                 payload, t_sent=self.vri.sim.now)
            yield from self.vri.send_control(event)
