"""Routing substrate: prefixes, longest-prefix-match tables, ARP, and the
static route map files the paper's VRIs are initialized with (thesis §3.7:
"the route tables are initialized with the map files").
"""

from repro.routing.prefix import Prefix
from repro.routing.table import RouteTable, BruteForceTable
from repro.routing.arp import ArpTable
from repro.routing.mapfile import load_map_file, dump_map_file, parse_map_lines

__all__ = [
    "Prefix",
    "RouteTable",
    "BruteForceTable",
    "ArpTable",
    "load_map_file",
    "dump_map_file",
    "parse_map_lines",
    # repro.routing.sync exports RouteSyncAgent and friends; imported
    # lazily by users because it depends on repro.core (avoids a cycle
    # at package import time).
]
