"""CIDR prefixes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RoutingError
from repro.net.addresses import int_to_ip, ip_to_int

__all__ = ["Prefix"]


@dataclass(frozen=True, order=True)
class Prefix:
    """An IPv4 CIDR prefix, canonicalized (host bits cleared)."""

    network: int
    length: int

    def __post_init__(self) -> None:
        if not 0 <= self.length <= 32:
            raise RoutingError(f"prefix length out of range: {self.length}")
        if not 0 <= self.network <= 0xFFFFFFFF:
            raise RoutingError(f"network out of range: {self.network:#x}")
        masked = self.network & self.mask
        if masked != self.network:
            object.__setattr__(self, "network", masked)

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``"10.1.0.0/16"`` (bare addresses get /32)."""
        if "/" in text:
            addr, _, plen_text = text.partition("/")
            if not plen_text.isdigit():
                raise RoutingError(f"bad prefix length in {text!r}")
            plen = int(plen_text)
        else:
            addr, plen = text, 32
        try:
            network = ip_to_int(addr)
        except ValueError as exc:
            raise RoutingError(str(exc)) from exc
        return cls(network, plen)

    @property
    def mask(self) -> int:
        if self.length == 0:
            return 0
        return ~((1 << (32 - self.length)) - 1) & 0xFFFFFFFF

    def contains(self, ip: int) -> bool:
        return (ip & self.mask) == self.network

    def overlaps(self, other: "Prefix") -> bool:
        shorter = self if self.length <= other.length else other
        longer = other if shorter is self else self
        return shorter.contains(longer.network)

    def __str__(self) -> str:
        return f"{int_to_ip(self.network)}/{self.length}"
