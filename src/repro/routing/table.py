"""Longest-prefix-match forwarding tables.

Two implementations with identical semantics:

* :class:`RouteTable` — a binary trie; O(prefix length) lookups, the
  production structure the VRIs use.
* :class:`BruteForceTable` — linear scan over all prefixes; the oracle
  the property tests compare the trie against.

Routes map a prefix to an opaque next-hop value (the experiments use the
gateway interface index).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import RoutingError
from repro.routing.prefix import Prefix

__all__ = ["RouteTable", "BruteForceTable"]

#: next-hop value meaning "no route" in the flattened interval table.
NO_ROUTE = -1


class _TrieNode:
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: List[Optional["_TrieNode"]] = [None, None]
        self.value: Any = None
        self.has_value = False


#: Entries kept in a :class:`RouteTable`'s lookup cache before it is
#: wholesale reset (steady-state traffic touches far fewer destinations).
_CACHE_MAX = 65536


class RouteTable:
    """Binary-trie longest-prefix-match table.

    Lookups through :meth:`lookup_cached` / :meth:`get_cached` memoize
    the trie walk per destination IP; any route change (:meth:`add` /
    :meth:`remove`, including those applied by
    :class:`repro.routing.sync.RouteSyncAgent`) invalidates the cache
    and bumps :attr:`version`, so steady-state frames pay one dict hit
    instead of an O(prefix-length) walk while updates stay visible
    immediately.
    """

    def __init__(self) -> None:
        self._root = _TrieNode()
        self._routes: Dict[Prefix, Any] = {}
        #: Monotonic counter of route mutations (cache epoch).
        self.version = 0
        #: dst-ip -> lookup result (including the miss sentinel).
        self._cache: Dict[int, Any] = {}
        #: Cumulative :meth:`get_cached` hit/miss counts (monotonic; the
        #: runtime workers export them as ``lpm_cache_{hit,miss}_total``).
        self.cache_hits = 0
        self.cache_misses = 0
        # Flattened interval table for lookup_batch, rebuilt lazily when
        # self.version moves: (epoch, bounds u64[], next_hops i64[]).
        self._flat: Optional[Tuple[int, np.ndarray, np.ndarray]] = None

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Tuple[Prefix, Any]]:
        return iter(sorted(self._routes.items()))

    def add(self, prefix: Prefix, next_hop: Any) -> None:
        """Insert or replace the route for ``prefix``."""
        node = self._root
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            child = node.children[bit]
            if child is None:
                child = _TrieNode()
                node.children[bit] = child
            node = child
        node.value = next_hop
        node.has_value = True
        self._routes[prefix] = next_hop
        self.version += 1
        if self._cache:
            self._cache = {}

    def remove(self, prefix: Prefix) -> None:
        if prefix not in self._routes:
            raise RoutingError(f"no such route: {prefix}")
        del self._routes[prefix]
        self.version += 1
        if self._cache:
            self._cache = {}
        node = self._root
        path = []
        for depth in range(prefix.length):
            bit = (prefix.network >> (31 - depth)) & 1
            path.append((node, bit))
            node = node.children[bit]  # type: ignore[assignment]
        node.has_value = False
        node.value = None
        # Prune now-empty branches.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child.has_value or child.children[0] or child.children[1]:
                break
            parent.children[bit] = None

    def lookup(self, ip: int) -> Any:
        """Longest-prefix match; raises :class:`RoutingError` on miss."""
        found = self.lookup_optional(ip)
        if found is _MISS:
            raise RoutingError(f"no route for {ip:#010x}")
        return found

    def lookup_optional(self, ip: int) -> Any:
        """Longest-prefix match; returns :data:`_MISS` sentinel on miss."""
        node = self._root
        best: Any = node.value if node.has_value else _MISS
        for depth in range(32):
            bit = (ip >> (31 - depth)) & 1
            node = node.children[bit]
            if node is None:
                break
            if node.has_value:
                best = node.value
        return best

    def get(self, ip: int, default: Any = None) -> Any:
        found = self.lookup_optional(ip)
        return default if found is _MISS else found

    # -- cached fast path ---------------------------------------------------
    def lookup_cached(self, ip: int) -> Any:
        """Like :meth:`lookup`, memoizing the result per destination IP."""
        found = self.get_cached(ip, _MISS)
        if found is _MISS:
            raise RoutingError(f"no route for {ip:#010x}")
        return found

    def get_cached(self, ip: int, default: Any = None) -> Any:
        """Like :meth:`get`, memoizing the result per destination IP.

        Misses are cached too (steady-state traffic to unroutable
        destinations is as hot as the routed kind).  The cache is reset
        wholesale when it reaches :data:`_CACHE_MAX` entries — a flat
        dict beats an LRU here because steady state has no eviction
        churn at all.
        """
        cache = self._cache
        found = cache.get(ip, _SENTINEL)
        if found is _SENTINEL:
            self.cache_misses += 1
            found = self.lookup_optional(ip)
            if len(cache) >= _CACHE_MAX:
                cache = self._cache = {}
            cache[ip] = found
        else:
            self.cache_hits += 1
        return default if found is _MISS else found

    # -- batched fast path --------------------------------------------------
    def supports_batch(self) -> bool:
        """True when every next hop is a non-negative int (so the
        flattened table can encode misses as :data:`NO_ROUTE`)."""
        try:
            self._flat_arrays()
        except RoutingError:
            return False
        return True

    def _flat_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The flattened interval form of the trie, rebuilt on demand.

        LPM over disjoint-or-nested prefixes partitions the 32-bit
        address space into half-open intervals with one winning route
        each; the boundary points are exactly the prefix starts and
        one-past-ends.  One trie walk per boundary at build time buys
        ``searchsorted`` lookups for every burst until the next route
        mutation (:attr:`version` is the cache epoch, same as the dict
        cache).
        """
        flat = self._flat
        if flat is not None and flat[0] == self.version:
            return flat[1], flat[2]
        points = {0}
        for prefix in self._routes:
            points.add(prefix.network)
            end = prefix.network + (1 << (32 - prefix.length))
            if end <= 0xFFFFFFFF:
                points.add(end)
        bounds = np.array(sorted(points), dtype=np.uint64)
        hops = np.empty(len(bounds), dtype=np.int64)
        for i, start in enumerate(bounds.tolist()):
            found = self.lookup_optional(start)
            if found is _MISS:
                hops[i] = NO_ROUTE
            elif isinstance(found, int) and not isinstance(found, bool) \
                    and found >= 0:
                hops[i] = found
            else:
                raise RoutingError(
                    f"batched lookup needs non-negative int next hops, "
                    f"got {found!r}")
        self._flat = (self.version, bounds, hops)
        return bounds, hops

    def lookup_batch(self, ips: np.ndarray) -> np.ndarray:
        """Vectorized LPM over an array of destination IPs.

        Returns an int64 array of next hops with :data:`NO_ROUTE` (-1)
        marking misses.  Raises :class:`RoutingError` when the table
        holds next hops the flat encoding can't represent (use
        :meth:`supports_batch` to probe first).
        """
        bounds, hops = self._flat_arrays()
        idx = np.searchsorted(bounds, np.asarray(ips, dtype=np.uint64),
                              side="right") - 1
        return hops[idx]


#: Sentinel distinguishing "no route" from a stored ``None`` next hop.
_MISS = object()
#: Cache-internal "not present" marker (distinct from _MISS, which is a
#: legitimate cached value).
_SENTINEL = object()


class BruteForceTable:
    """Linear-scan LPM oracle with the same interface as RouteTable."""

    def __init__(self) -> None:
        self._routes: Dict[Prefix, Any] = {}

    def __len__(self) -> int:
        return len(self._routes)

    def __iter__(self) -> Iterator[Tuple[Prefix, Any]]:
        return iter(sorted(self._routes.items()))

    def add(self, prefix: Prefix, next_hop: Any) -> None:
        self._routes[prefix] = next_hop

    def remove(self, prefix: Prefix) -> None:
        if prefix not in self._routes:
            raise RoutingError(f"no such route: {prefix}")
        del self._routes[prefix]

    def lookup(self, ip: int) -> Any:
        best: Optional[Prefix] = None
        for prefix in self._routes:
            if prefix.contains(ip) and (best is None
                                        or prefix.length > best.length):
                best = prefix
        if best is None:
            raise RoutingError(f"no route for {ip:#010x}")
        return self._routes[best]

    def get(self, ip: int, default: Any = None) -> Any:
        try:
            return self.lookup(ip)
        except RoutingError:
            return default
