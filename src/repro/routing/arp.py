"""Address resolution (thesis §3.7: the VRI is "responsible for
interpreting the address resolution and routing information").

A static-plus-learning ARP cache: entries can be seeded from the map
file and are refreshed by observed traffic.  Entries age out, which the
tests exercise; in the experiments the tables are small and static.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

__all__ = ["ArpTable"]


class ArpTable:
    """IP -> MAC cache with aging."""

    def __init__(self, timeout: float = 60.0):
        if timeout <= 0:
            raise ValueError("ARP timeout must be positive")
        self.timeout = timeout
        self._entries: Dict[int, Tuple[int, float, bool]] = {}
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def add_static(self, ip: int, mac: int) -> None:
        """Seed a permanent entry (never ages)."""
        self._entries[ip] = (mac, float("inf"), True)

    def learn(self, ip: int, mac: int, now: float) -> None:
        """Record/refresh a dynamic entry observed at time ``now``."""
        existing = self._entries.get(ip)
        if existing is not None and existing[2]:
            return  # static entries win
        self._entries[ip] = (mac, now + self.timeout, False)

    def resolve(self, ip: int, now: float) -> Optional[int]:
        """MAC for ``ip`` or None when unknown/expired."""
        entry = self._entries.get(ip)
        if entry is None:
            self.misses += 1
            return None
        mac, expiry, _static = entry
        if now > expiry:
            del self._entries[ip]
            self.misses += 1
            return None
        self.hits += 1
        return mac

    def expire(self, now: float) -> int:
        """Drop all expired entries; returns how many were removed."""
        stale = [ip for ip, (_m, exp, static) in self._entries.items()
                 if not static and now > exp]
        for ip in stale:
            del self._entries[ip]
        return len(stale)
