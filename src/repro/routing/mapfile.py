"""Route map files.

The paper initializes each VRI's route table from a static "map file"
passed at startup (thesis §3.7).  The format reproduced here is the
obvious line-oriented one::

    # comment
    route 10.2.1.0/24 iface 1
    route 10.2.0.0/16 iface 1
    arp 10.2.1.2 02:00:00:00:02:01

``route`` lines populate the LPM table (next hop = gateway interface
index); ``arp`` lines seed static ARP entries.
"""

from __future__ import annotations

import io
from typing import Iterable, List, Tuple, Union

from repro.errors import RoutingError
from repro.net.addresses import int_to_ip, int_to_mac, ip_to_int, mac_to_int
from repro.routing.arp import ArpTable
from repro.routing.prefix import Prefix
from repro.routing.table import RouteTable

__all__ = ["parse_map_lines", "load_map_file", "dump_map_file"]


def parse_map_lines(lines: Iterable[str]) -> Tuple[RouteTable, ArpTable]:
    """Parse map-file lines into a route table and a static ARP table."""
    routes = RouteTable()
    arp = ArpTable()
    for lineno, raw in enumerate(lines, start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        tokens = line.split()
        kind = tokens[0]
        if kind == "route":
            if len(tokens) != 4 or tokens[2] != "iface":
                raise RoutingError(
                    f"map file line {lineno}: expected "
                    f"'route <prefix> iface <n>', got {raw.rstrip()!r}")
            prefix = Prefix.parse(tokens[1])
            if not tokens[3].isdigit():
                raise RoutingError(
                    f"map file line {lineno}: bad interface {tokens[3]!r}")
            routes.add(prefix, int(tokens[3]))
        elif kind == "arp":
            if len(tokens) != 3:
                raise RoutingError(
                    f"map file line {lineno}: expected "
                    f"'arp <ip> <mac>', got {raw.rstrip()!r}")
            try:
                ip = ip_to_int(tokens[1])
                mac = mac_to_int(tokens[2])
            except ValueError as exc:
                raise RoutingError(f"map file line {lineno}: {exc}") from exc
            arp.add_static(ip, mac)
        else:
            raise RoutingError(
                f"map file line {lineno}: unknown directive {kind!r}")
    return routes, arp


def load_map_file(path: Union[str, "io.TextIOBase"]) -> Tuple[RouteTable, ArpTable]:
    """Load a map file from a path or open text stream."""
    if hasattr(path, "read"):
        return parse_map_lines(path)  # type: ignore[arg-type]
    with open(path, "r", encoding="utf-8") as fh:
        return parse_map_lines(fh)


def dump_map_file(routes: RouteTable, arp_entries: List[Tuple[int, int]] = ()) -> str:
    """Render a map file (round-trips through :func:`parse_map_lines`)."""
    out = ["# LVRM static route map"]
    for prefix, iface in routes:
        out.append(f"route {prefix} iface {iface}")
    for ip, mac in arp_entries:
        out.append(f"arp {int_to_ip(ip)} {int_to_mac(mac)}")
    return "\n".join(out) + "\n"
