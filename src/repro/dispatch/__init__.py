"""The sharded dispatch plane (docs/PERFORMANCE.md §dispatch).

PR 7's burst kernels made per-VRI routing 6-13x faster, which moved the
Amdahl bottleneck to the monitor's own RX → classify → admit → balance →
stage → descriptor-push pipeline: one Python process per gateway, no
matter how many cores the host has.  This package parallelizes exactly
that pipeline:

* :mod:`repro.dispatch.stage` — :class:`DispatchPipeline`, the dispatch/
  drain stage extracted verbatim from ``runtime/monitor.py`` so the same
  code runs inside the monitor (1 shard, the paper's design) or inside N
  dispatcher-shard processes;
* :mod:`repro.dispatch.splitter` — the RSS-style 5-tuple flow hash and
  the jumbo burst codecs that carry frames over per-shard ingest rings;
* :mod:`repro.dispatch.shard` — the shard process: consumes its ingest
  ring, runs the full pipeline for its disjoint VRI subset with its own
  AIMD admission controller and arena producer shard;
* :mod:`repro.dispatch.plane` — the monitor-side :class:`DispatchPlane`:
  spawns shards, steers frames by flow hash (per-flow FIFO preserved),
  folds shard telemetry into monotonic per-shard counters, and resteers
  around dead shards until the supervisor restarts them.

Shard count resolution mirrors the kernel knob: an explicit value wins,
else the ``REPRO_DISPATCH_SHARDS`` environment variable, else 1 (the
single-dispatcher baseline; nothing sharded is constructed at 1).
"""

from __future__ import annotations

import os

__all__ = ["resolve_dispatch_shards", "DispatchPipeline", "DispatchPlane",
           "ShardArgs", "dispatch_shard_main", "MAX_DISPATCH_SHARDS"]

#: Sanity ceiling: more shards than this is a typo, not a topology.
MAX_DISPATCH_SHARDS = 64


def resolve_dispatch_shards(value=None) -> int:
    """Resolve the dispatcher shard count.

    ``value`` wins when given; else ``REPRO_DISPATCH_SHARDS``; else 1.
    Raises ``ValueError`` on non-integers or counts outside
    ``[1, MAX_DISPATCH_SHARDS]`` (callers map it onto their own config
    error type).
    """
    source = "dispatch_shards"
    if value is None:
        raw = os.environ.get("REPRO_DISPATCH_SHARDS", "").strip()
        if not raw:
            return 1
        source = "REPRO_DISPATCH_SHARDS"
        value = raw
    try:
        shards = int(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{source} must be an integer, got {value!r}") from None
    if not 1 <= shards <= MAX_DISPATCH_SHARDS:
        raise ValueError(
            f"{source} must be in [1, {MAX_DISPATCH_SHARDS}], got {shards}")
    return shards


_LAZY = {
    "DispatchPipeline": ("repro.dispatch.stage", "DispatchPipeline"),
    "DispatchPlane": ("repro.dispatch.plane", "DispatchPlane"),
    "ShardArgs": ("repro.dispatch.shard", "ShardArgs"),
    "dispatch_shard_main": ("repro.dispatch.shard", "dispatch_shard_main"),
}


def __getattr__(name: str):
    # Lazy so importing this module from core.lvrm's config validation
    # never drags the runtime stack (numpy, shm, multiprocessing) in.
    try:
        module, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(name) from None
    import importlib
    return getattr(importlib.import_module(module), attr)
