"""RSS-style flow hashing and the jumbo burst codecs.

The splitter is the only dispatch work left in the monitor process when
sharding is on, so both halves here are built to stay off the critical
path's denominator:

* :func:`hash_frames` / :func:`hash_frame` — a deterministic 5-tuple
  hash over the IPv4 src/dst addresses and L4 ports (the 12 bytes at
  Ethernet offsets 26..38, i.e. what commodity-NIC RSS hashes).  The
  batch form vectorizes over uniform-length bursts with numpy; the
  scalar form computes the *identical* value, so a flow steers to the
  same shard no matter which path saw it.  Python's built-in ``hash``
  is deliberately avoided: it is salted per process
  (``PYTHONHASHSEED``), and the steering decision must be stable across
  monitor restarts and reproducible in tests.

* :func:`pack_burst` / :func:`unpack_burst` — one ingest-ring record
  carrying a whole sub-burst: ``<u32 n><u32 lens[n]><payloads>``.
  Pushing one jumbo per shard per burst amortizes the ring's
  shared-index synchronization over the burst exactly like the worker
  rings' ``try_push_many``, and keeps the ingest ring single-producer /
  single-consumer.

* :func:`pack_egress` / :func:`unpack_egress` — the same idea for the
  shard → monitor output path, with per-frame ``(vri_id, iface)``
  columns so the monitor's ``drain()`` contract survives sharding.

Frames shorter than a full IPv4+L4 header hash over their zero-padded
tail — junk steers deterministically too, it just all lands together.
"""

from __future__ import annotations

import struct
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["FLOW_KEY_OFF", "FLOW_KEY_LEN", "hash_frame", "hash_frames",
           "shard_of_hash", "pack_burst", "unpack_burst", "burst_frames",
           "pack_egress", "unpack_egress"]

#: The RSS key: IPv4 src+dst (8 bytes at Ethernet offset 26) and the L4
#: src/dst ports (4 bytes right after the 20-byte option-free header).
FLOW_KEY_OFF = 26
FLOW_KEY_LEN = 12

_MASK64 = (1 << 64) - 1
# Odd multipliers (Murmur/xxHash finalizer constants): one per 32-bit
# lane of the key, mixed with a 64-bit golden-ratio finalizer.
_M0 = 0x9E3779B1
_M1 = 0x85EBCA77
_M2 = 0xC2B2AE3D
_FIN = 0x9E3779B97F4A7C15

_U32 = struct.Struct("<III")


def hash_frame(frame) -> int:
    """Deterministic 64-bit flow hash of one frame (scalar path)."""
    key = bytes(frame[FLOW_KEY_OFF:FLOW_KEY_OFF + FLOW_KEY_LEN])
    if len(key) < FLOW_KEY_LEN:
        key = key + b"\x00" * (FLOW_KEY_LEN - len(key))
    k0, k1, k2 = _U32.unpack(key)
    h = (k0 * _M0 + k1 * _M1 + k2 * _M2) & _MASK64
    return (h * _FIN) & _MASK64


def hash_frames(frames: Sequence[bytes]) -> np.ndarray:
    """Flow hashes for a burst, as a uint64 array.

    Uniform-length bursts (the common case: canned drill traffic and
    NIC-batched ingress) vectorize: one reshape over the concatenated
    payloads, a three-lane integer mix, no per-frame Python.  Mixed
    bursts fall back to the scalar hash per frame — same values.
    """
    n = len(frames)
    if not n:
        return np.empty(0, dtype=np.uint64)
    length = len(frames[0])
    uniform = length >= FLOW_KEY_OFF + FLOW_KEY_LEN and all(
        len(f) == length for f in frames)
    if not uniform:
        return np.fromiter((hash_frame(f) for f in frames),
                           dtype=np.uint64, count=n)
    flat = np.frombuffer(b"".join(frames), dtype=np.uint8)
    keys = flat.reshape(n, length)[
        :, FLOW_KEY_OFF:FLOW_KEY_OFF + FLOW_KEY_LEN]
    lanes = np.ascontiguousarray(keys).view("<u4").astype(np.uint64)
    with np.errstate(over="ignore"):
        h = (lanes[:, 0] * np.uint64(_M0)
             + lanes[:, 1] * np.uint64(_M1)
             + lanes[:, 2] * np.uint64(_M2))
        return h * np.uint64(_FIN)


def shard_of_hash(h, steer: np.ndarray) -> np.ndarray:
    """Map hashes through a steer table (len must be a power of two)."""
    buckets = np.asarray(h, dtype=np.uint64) & np.uint64(len(steer) - 1)
    return steer[buckets.astype(np.intp)]


# ---------------------------------------------------------------------------
# jumbo burst records (monitor -> shard ingest rings)
# ---------------------------------------------------------------------------

_HDR = struct.Struct("<I")  # frame count


def pack_burst(frames: Sequence[bytes], max_bytes: int
               ) -> List[Tuple[bytes, int]]:
    """Pack a burst into one or more jumbo records of at most
    ``max_bytes`` each, preserving order.  Returns ``(record,
    n_frames)`` pairs; a frame too large for even an empty record
    raises ``ValueError`` (the ring slot is sized for max Ethernet
    frames times a batch, so this is a config error, not traffic)."""
    out: List[Tuple[bytes, int]] = []
    group: List[bytes] = []
    used = _HDR.size

    def close() -> None:
        n = len(group)
        lens = np.fromiter((len(f) for f in group), dtype="<u4", count=n)
        out.append((_HDR.pack(n) + lens.tobytes() + b"".join(group), n))
        group.clear()

    for frame in frames:
        need = 4 + len(frame)
        if _HDR.size + need > max_bytes:
            raise ValueError(
                f"frame of {len(frame)} bytes exceeds the ingest record "
                f"budget of {max_bytes} bytes")
        if group and used + need > max_bytes:
            close()
            used = _HDR.size
        group.append(frame)
        used += need
    if group:
        close()
    return out


def unpack_burst(record: bytes) -> List[bytes]:
    """Inverse of :func:`pack_burst` for one record."""
    (n,) = _HDR.unpack_from(record)
    lens = np.frombuffer(record, dtype="<u4", count=n, offset=_HDR.size)
    start = _HDR.size + 4 * n
    ends = start + np.cumsum(lens, dtype=np.int64)
    starts = ends - lens
    return [record[s:e] for s, e in zip(starts.tolist(), ends.tolist())]


def burst_frames(record: bytes) -> int:
    """Frame count of a jumbo record without unpacking it."""
    return _HDR.unpack_from(record)[0]


# ---------------------------------------------------------------------------
# jumbo egress records (shard -> monitor drained outputs)
# ---------------------------------------------------------------------------

def pack_egress(outs: Sequence[Tuple[int, int, bytes]], max_bytes: int
                ) -> List[bytes]:
    """Pack drained ``(vri_id, iface, frame)`` outputs into jumbo
    records: ``<u32 n><u16 vri[n]><u16 iface[n]><u32 lens[n]>
    <payloads>``."""
    out: List[bytes] = []
    group: List[Tuple[int, int, bytes]] = []
    used = _HDR.size

    def close() -> None:
        n = len(group)
        vris = np.fromiter((g[0] for g in group), dtype="<u2", count=n)
        ifaces = np.fromiter((g[1] & 0xFFFF for g in group),
                             dtype="<u2", count=n)
        lens = np.fromiter((len(g[2]) for g in group), dtype="<u4", count=n)
        out.append(_HDR.pack(n) + vris.tobytes() + ifaces.tobytes()
                   + lens.tobytes() + b"".join(g[2] for g in group))
        group.clear()

    for item in outs:
        need = 8 + len(item[2])
        if _HDR.size + need > max_bytes:
            raise ValueError(
                f"output frame of {len(item[2])} bytes exceeds the egress "
                f"record budget of {max_bytes} bytes")
        if group and used + need > max_bytes:
            close()
            used = _HDR.size
        group.append(item)
        used += need
    if group:
        close()
    return out


def unpack_egress(record: bytes) -> List[Tuple[int, int, bytes]]:
    """Inverse of :func:`pack_egress` for one record."""
    (n,) = _HDR.unpack_from(record)
    off = _HDR.size
    vris = np.frombuffer(record, dtype="<u2", count=n, offset=off)
    off += 2 * n
    ifaces = np.frombuffer(record, dtype="<u2", count=n, offset=off)
    off += 2 * n
    lens = np.frombuffer(record, dtype="<u4", count=n, offset=off)
    off += 4 * n
    ends = off + np.cumsum(lens, dtype=np.int64)
    starts = ends - lens
    return [(int(v), int(i), record[s:e])
            for v, i, s, e in zip(vris.tolist(), ifaces.tolist(),
                                  starts.tolist(), ends.tolist())]
