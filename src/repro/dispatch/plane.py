"""The monitor-side dispatch plane: splitter, shard pool, egress drain.

:class:`DispatchPlane` is what ``RuntimeLvrm(dispatch_shards=N)`` runs
instead of dispatching inline.  It owns the per-shard shared-memory
rings (ingest, egress, and a control pair — all Lamport rings, so a
restarted shard re-attaches with the shared indices intact and the
queued backlog survives the crash), the RSS-style steer table mapping
flow-hash buckets onto shards, and the shared overload verdict.

Split path (the monitor's only remaining per-frame work)::

    hash_frames(burst) → steer[hash & mask] → per-shard jumbo records
    → ingest.try_push

Everything downstream — classify, overload admission, balance, arena
staging, descriptor push, output drain — happens inside the shard
processes (:mod:`repro.dispatch.shard`).

Telemetry from shards arrives as the worker-style chunked registry
snapshots; :meth:`pump` **delta-folds** them into the monitor's
registry (counters get the increment since the previous snapshot,
restarting shards reset their baseline) so the merged series stay
monotonic across shard crashes — a plain ``merge()`` would regress
them.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.dispatch.shard import (KIND_SHARD_ATTACH, KIND_SHARD_DETACH,
                                  KIND_SHARD_OVERLOAD, ShardArgs,
                                  dispatch_shard_main)
from repro.dispatch.splitter import hash_frame, hash_frames, pack_burst, \
    unpack_egress
from repro.errors import ConfigError
from repro.ipc.factory import make_ring, ring_bytes_for
from repro.ipc.messages import (ControlEvent, KIND_HEARTBEAT, KIND_STATS,
                                KIND_STOP, StatsAssembler, decode_event,
                                encode_event)
from repro.ipc.shm import SharedSegment
from repro.obs.registry import default_registry
from repro.overload import SharedVerdict, verdict_bytes_needed
from repro.overload.classify import PriorityClassifier
from repro.overload.controller import OverloadConfig

__all__ = ["DispatchPlane", "NBUCKETS"]

#: Steer-table buckets (power of two; the splitter masks the flow hash).
NBUCKETS = 256
#: Ingest/egress jumbo rings: few deep slots beat many shallow ones —
#: one push moves a whole burst.
_JUMBO_CAPACITY = 64
_JUMBO_SLOT = 65536
_CTRL_CAPACITY = 64
#: Big enough for a KIND_SHARD_OVERLOAD JSON state or a stats chunk.
_CTRL_SLOT = 1024


@dataclass
class _Shard:
    """Monitor-side state of one dispatcher shard."""

    shard_id: int
    segments: List[SharedSegment]
    ingest: object
    egress: object
    ctrl_down: object
    ctrl_up: object
    process: object
    vri_specs: List[Tuple[int, str, str]]
    assembler: StatsAssembler
    last_heartbeat: float
    overload_state: Dict = field(default_factory=dict)

    def rings(self):
        return (self.ingest, self.egress, self.ctrl_down, self.ctrl_up)


class DispatchPlane:
    """N dispatcher shards fed by a flow-hash splitter."""

    def __init__(self, monitor, n_shards: int,
                 overload_policy: str = "none",
                 overload_opts: Optional[Dict] = None,
                 egress_counts: bool = False,
                 profile_base: Optional[str] = None):
        if n_shards < 2:
            raise ConfigError("a dispatch plane needs >= 2 shards")
        if monitor.ring_impl != "lamport":
            raise ConfigError(
                "sharded dispatch requires ring_impl='lamport' (shared "
                "indices are what let a restarted shard re-attach)")
        self._monitor = monitor
        self.n_shards = n_shards
        self.egress_counts = bool(egress_counts)
        self.stopped = False
        self.restarts = 0
        self._obs_id = monitor.obs_id
        self._ctx = monitor._ctx
        # Validate the overload spec up front — a bad spec must fail the
        # constructor, not every shard process at once.
        self._overload_policy = overload_policy
        self._overload_opts = overload_opts
        cfg = OverloadConfig.from_spec(
            overload_opts if overload_policy == "none" else
            {**(overload_opts or {}), "policy": overload_policy})
        self._verdict_segment: Optional[SharedSegment] = None
        self._verdict: Optional[SharedVerdict] = None
        if overload_policy != "none":
            n_classes = PriorityClassifier.from_spec(cfg.classifier).n_classes
            self._verdict_segment = SharedSegment.create(
                verdict_bytes_needed(n_shards, n_classes))
            self._verdict = SharedVerdict(self._verdict_segment.buf,
                                          n_shards, n_classes)
        self._profile_base = profile_base
        registry = default_registry()
        registry.gauge(
            "dispatch_shards", "dispatcher shards this monitor runs",
            rt=self._obs_id).set(n_shards)
        self._c_resteer = registry.counter(
            "dispatch_resteer_total",
            "bursts redirected away from a dead shard",
            rt=self._obs_id)
        self._c_restarts = registry.counter(
            "dispatch_shard_restarts_total",
            "dispatcher shard processes restarted",
            rt=self._obs_id)
        self._c_split = [registry.counter(
            "dispatch_split_frames_total",
            "frames the splitter steered to this shard",
            rt=self._obs_id, shard=str(i)) for i in range(n_shards)]
        self._c_ingest_full = [registry.counter(
            "dispatch_ingest_full_total",
            "frames dropped because a shard's ingest ring stayed full",
            rt=self._obs_id, shard=str(i)) for i in range(n_shards)]
        # (shard, metric name, sorted label items) -> last absolute
        # value seen, the delta-fold baseline.
        self._fold_last: Dict[Tuple, float] = {}
        self._steer = np.arange(NBUCKETS, dtype=np.intp) % n_shards
        self.shards: List[_Shard] = []
        try:
            for sid in range(n_shards):
                specs = [(v.vri_id, v.segments[0].name, v.segments[1].name)
                         for v in monitor.vris
                         if (v.vri_id - 1) % n_shards == sid]
                self.shards.append(self._launch(sid, specs))
        except BaseException:
            self._teardown(kill=True)
            raise

    # -- lifecycle -----------------------------------------------------------------

    def _make_ring(self, capacity: int, slot: int):
        segment = SharedSegment.create(
            ring_bytes_for("lamport", capacity, slot))
        return segment, make_ring("lamport", segment.buf, capacity, slot)

    def _reclaim_partition(self, sid: int) -> Tuple[int, ...]:
        """Reclaim-ring ids this shard's arena producer drains — the
        full static partition, so chunks freed against a currently
        detached VRI's ring still come home."""
        monitor = self._monitor
        if monitor.arena is None:
            return ()
        return tuple(i for i in range(1, monitor._arena_n_reclaim)
                     if (i - 1) % self.n_shards == sid)

    def _args_for(self, sid: int,
                  specs: List[Tuple[int, str, str]],
                  shard: Optional[_Shard] = None) -> ShardArgs:
        monitor = self._monitor
        sh = shard if shard is not None else self.shards[sid]
        return ShardArgs(
            shard_id=sid, n_shards=self.n_shards, obs_id=self._obs_id,
            ingest=sh.segments[0].name, egress=sh.segments[1].name,
            ctrl_down=sh.segments[2].name, ctrl_up=sh.segments[3].name,
            vris=tuple(specs),
            ring_capacity=monitor.ring_capacity,
            data_plane=monitor.data_plane,
            arena=(monitor._arena_segment.name
                   if monitor._arena_segment is not None else None),
            reclaim_ids=self._reclaim_partition(sid),
            balancer=monitor.balancer,
            overload_policy=self._overload_policy,
            overload_opts=self._overload_opts,
            verdict=(self._verdict_segment.name
                     if self._verdict_segment is not None else None),
            wait_strategy=monitor.wait_strategy,
            heartbeat_interval=monitor.heartbeat_interval,
            stats_interval=monitor.stats_interval,
            egress_counts=self.egress_counts,
            profile_path=(f"{self._profile_base}.shard{sid}"
                          if self._profile_base else None))

    def _launch(self, sid: int, specs: List[Tuple[int, str, str]]) -> _Shard:
        segs, rings = [], []
        try:
            for capacity, slot in ((_JUMBO_CAPACITY, _JUMBO_SLOT),
                                   (_JUMBO_CAPACITY, _JUMBO_SLOT),
                                   (_CTRL_CAPACITY, _CTRL_SLOT),
                                   (_CTRL_CAPACITY, _CTRL_SLOT)):
                segment, ring = self._make_ring(capacity, slot)
                segs.append(segment)
                rings.append(ring)
            shard = _Shard(sid, segs, rings[0], rings[1], rings[2],
                           rings[3], None, list(specs), StatsAssembler(),
                           time.monotonic())
            args = self._args_for(sid, specs, shard=shard)
            process = self._ctx.Process(target=dispatch_shard_main,
                                        args=(args,), daemon=True)
            process.start()
            shard.process = process
        except BaseException:
            for ring in rings:
                ring.close()
            for segment in segs:
                segment.close()
            raise
        self._monitor.recorder.note("shard.spawn", ts=time.monotonic(),
                                    shard=sid, pid=process.pid)
        return shard

    def _respawn(self, shard: _Shard) -> None:
        """Replace a dead shard's process over the *same* rings.

        The Lamport indices live in shared memory, so the replacement
        resumes exactly where the victim stopped: queued ingest bursts
        survive the crash.  The victim's verdict row is reopened first
        so a crash can never pin the cluster's admission shut."""
        if shard.process.is_alive():
            shard.process.kill()
        shard.process.join(1.0)
        self._pump_shard(shard)       # absorb any final telemetry
        if self._verdict is not None:
            self._verdict.reset(shard.shard_id)
        # A fresh process restarts its stats stream; reset the
        # reassembler so a half-shipped snapshot never pairs with
        # chunks from the replacement.
        shard.assembler = StatsAssembler()
        shard.last_heartbeat = time.monotonic()
        # The replacement's attach list (vri_specs below) already
        # reflects every detach/attach ever issued; stale events still
        # queued on the persistent control ring would be replayed on
        # top of that state (e.g. re-attaching a VRI the startup list
        # already attached), so drop them first.
        while shard.ctrl_down.try_pop() is not None:
            pass
        args = self._args_for(shard.shard_id, shard.vri_specs, shard=shard)
        process = self._ctx.Process(target=dispatch_shard_main,
                                    args=(args,), daemon=True)
        process.start()
        shard.process = process
        self.restarts += 1
        self._c_restarts.inc()
        self._monitor.recorder.note("shard.respawn", ts=time.monotonic(),
                                    shard=shard.shard_id, pid=process.pid)

    def dead_shards(self) -> List[int]:
        return [s.shard_id for s in self.shards
                if not s.process.is_alive()]

    def heartbeat_ages(self) -> Dict[int, float]:
        now = time.monotonic()
        return {s.shard_id: now - s.last_heartbeat for s in self.shards}

    def restart_shard(self, sid: int) -> None:
        self._respawn(self.shards[sid])

    def poll(self) -> int:
        """Crash sweep: respawn every dead shard.  Returns how many."""
        replaced = 0
        for shard in self.shards:
            if not shard.process.is_alive():
                self._respawn(shard)
                replaced += 1
        return replaced

    def stop(self, timeout: float = 5.0) -> None:
        if self.stopped:
            return
        for shard in self.shards:
            shard.ctrl_down.try_push(encode_event(
                ControlEvent(KIND_STOP, 0, shard.shard_id)))
        deadline = time.monotonic() + timeout
        while (time.monotonic() < deadline
               and any(s.process.is_alive() for s in self.shards)):
            # Keep the egress side moving so a shard mid-residual-drain
            # is never wedged against a full ring.
            self.drain()
            self.pump()
            time.sleep(0.002)
        for shard in self.shards:
            if shard.process.is_alive():
                shard.process.kill()
                shard.process.join(1.0)
                self._monitor.recorder.note(
                    "shard.kill", ts=time.monotonic(),
                    shard=shard.shard_id)
        # The exit-time telemetry flush lands after the join.
        self.drain()
        self.pump()
        self._teardown(kill=False)
        self.stopped = True

    def _teardown(self, kill: bool) -> None:
        for shard in self.shards:
            if kill and shard.process is not None \
                    and shard.process.is_alive():
                shard.process.kill()
                shard.process.join(1.0)
            for ring in shard.rings():
                ring.close()
            for segment in shard.segments:
                segment.close()
        self.shards = []
        if self._verdict is not None:
            self._verdict.close()
            self._verdict = None
        if self._verdict_segment is not None:
            self._verdict_segment.close()
            self._verdict_segment = None

    # -- split path ----------------------------------------------------------------

    def _alive(self, sid: int) -> bool:
        return self.shards[sid].process.is_alive()

    def _fallback(self, sid: int) -> Optional[int]:
        """Next live shard after a dead target (resteer)."""
        for step in range(1, self.n_shards):
            cand = (sid + step) % self.n_shards
            if self._alive(cand):
                return cand
        return None

    def _push_burst(self, sid: int, frames: List[bytes]) -> int:
        shard = self.shards[sid]
        accepted = 0
        for record, n in pack_burst(frames, shard.ingest.max_record):
            if shard.ingest.try_push(record):
                accepted += n
                self._c_split[sid].inc(n)
            else:
                self._c_ingest_full[sid].inc(n)
        return accepted

    def _steer_burst(self, sid: int, frames: List[bytes]) -> int:
        """Push one shard's sub-burst, resteering if the target died.

        Resteer breaks per-flow FIFO for the failover window — frames
        already queued on the dead shard's ingest ring replay *after*
        the resteered ones once the replacement attaches.  Documented
        as acceptable: the single-dispatcher monitor loses those frames
        outright at a crash."""
        if not self._alive(sid):
            fallback = self._fallback(sid)
            if fallback is None:
                self._c_ingest_full[sid].inc(len(frames))
                return 0
            self._c_resteer.inc()
            sid = fallback
        return self._push_burst(sid, frames)

    def dispatch(self, frame: bytes) -> bool:
        """Single-frame split (the monitor's scalar dispatch path)."""
        sid = int(self._steer[hash_frame(frame) & (NBUCKETS - 1)])
        return self._steer_burst(sid, [frame]) == 1

    def split(self, frames: List[bytes]) -> int:
        """Steer a burst across the shards; returns frames accepted."""
        if not frames:
            return 0
        if len(frames) == 1:
            return 1 if self.dispatch(frames[0]) else 0
        sids = self._steer[
            (hash_frames(frames) & np.uint64(NBUCKETS - 1)).astype(np.intp)]
        accepted = 0
        for sid in np.unique(sids).tolist():
            rows = np.flatnonzero(sids == sid).tolist()
            accepted += self._steer_burst(
                int(sid), [frames[i] for i in rows])
        return accepted

    # -- egress + telemetry --------------------------------------------------------

    def drain(self) -> List[Tuple[int, int, bytes]]:
        """Pop and unpack every queued egress jumbo."""
        out: List[Tuple[int, int, bytes]] = []
        for shard in self.shards:
            while True:
                record = shard.egress.try_pop()
                if record is None:
                    break
                out.extend(unpack_egress(record))
        return out

    def _pump_shard(self, shard: _Shard) -> None:
        while True:
            record = shard.ctrl_up.try_pop()
            if record is None:
                break
            event = decode_event(record)
            if event.kind == KIND_HEARTBEAT:
                shard.last_heartbeat = time.monotonic()
            elif event.kind == KIND_STATS:
                snapshot = shard.assembler.feed(event.src_vri,
                                                event.payload)
                if snapshot is not None:
                    self._fold(shard.shard_id, snapshot)
            elif event.kind == KIND_SHARD_OVERLOAD:
                shard.overload_state = json.loads(event.payload.decode())

    def pump(self) -> None:
        """Absorb shard telemetry (heartbeats, stats, overload state)."""
        for shard in self.shards:
            self._pump_shard(shard)

    def _fold(self, sid: int, snapshot: Dict) -> None:
        """Delta-fold one shard snapshot into the monitor's registry.

        Counters get ``new - last`` (or ``new`` after a restart reset);
        gauges are set; histograms are dropped — their replace-merge
        would regress on restart and nothing monitors shard-local
        distributions cluster-wide."""
        registry = default_registry()
        for metric in snapshot.get("metrics", ()):
            kind = metric.get("kind")
            labels = metric.get("labels", {})
            if kind == "counter":
                value = float(metric.get("value", 0.0))
                key = (sid, metric["name"], tuple(sorted(labels.items())))
                last = self._fold_last.get(key, 0.0)
                delta = value - last if value >= last else value
                self._fold_last[key] = value
                if delta:
                    registry.counter(metric["name"],
                                     metric.get("help", ""),
                                     **labels).inc(delta)
            elif kind == "gauge":
                registry.gauge(metric["name"], metric.get("help", ""),
                               **labels).set(float(metric.get("value",
                                                              0.0)))

    # -- worker churn --------------------------------------------------------------

    def shard_of_vri(self, vri_id: int) -> int:
        return (vri_id - 1) % self.n_shards

    def detach_vri(self, vri_id: int) -> None:
        """Tell the owning shard to stop using (and reclaim) a retiring
        worker's data rings.  Asynchronous: the shard drains the dead
        worker's residue and frees its chunks when the event lands."""
        sid = self.shard_of_vri(vri_id)
        shard = self.shards[sid]
        shard.vri_specs = [s for s in shard.vri_specs if s[0] != vri_id]
        shard.ctrl_down.try_push(encode_event(ControlEvent(
            KIND_SHARD_DETACH, 0, sid,
            json.dumps({"vri": vri_id}).encode())))

    def attach_vri(self, vri_id: int, data_in: str, data_out: str) -> None:
        """Hand a (re)spawned worker's data rings to its owning shard."""
        sid = self.shard_of_vri(vri_id)
        shard = self.shards[sid]
        shard.vri_specs.append((vri_id, data_in, data_out))
        shard.ctrl_down.try_push(encode_event(ControlEvent(
            KIND_SHARD_ATTACH, 0, sid,
            json.dumps({"vri": vri_id, "data_in": data_in,
                        "data_out": data_out}).encode())))

    # -- admin ---------------------------------------------------------------------

    def overload_state(self) -> Dict:
        """The sharded ``/overload`` view: per-shard controller states
        plus the shared verdict's effective rates."""
        state: Dict = {"sharded": True, "shards": self.n_shards,
                       "policy": self._overload_policy}
        if self._verdict is not None:
            state["verdict"] = [round(r, 6) for r in self._verdict.rates()]
        per_shard = {str(s.shard_id): s.overload_state
                     for s in self.shards if s.overload_state}
        if per_shard:
            state["per_shard"] = per_shard
        return state
