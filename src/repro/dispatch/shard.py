"""One dispatcher shard: the monitor's pipeline in its own process.

A shard attaches (never owns) the shared state the monitor created —
its ingest/egress/control rings, the frame arena, and its disjoint
subset of worker data rings — then runs the exact
:class:`~repro.dispatch.stage.DispatchPipeline` the single-dispatcher
monitor runs:

    pop ingest jumbos → classify → overload-admit (own AIMD controller
    coupled through the :class:`~repro.overload.verdict.SharedVerdict`)
    → balance across *its* VRIs → arena ``write_block`` → descriptor
    push → drain its VRIs' outputs → egress jumbos back to the monitor.

Invariants preserved:

* every worker ``data_in`` ring keeps exactly one producer (this shard;
  the monitor never pushes data when sharding is on) and every
  ``data_out`` ring exactly one consumer (this shard);
* the arena's free lists are partitioned per shard
  (``ArenaProducer(shard=i, n_shards=N)``), and each shard's producer
  drains exactly the reclaim rings of the VRI ids in its partition —
  including rings of currently-detached VRIs, so the monitor's
  stranded-chunk reclaims (``arena.free(off, vri_id)``) always come
  home;
* per-flow FIFO holds end-to-end because the splitter pins a flow to
  one shard and this process handles its frames in ingest order.

Telemetry rides the shard control ring as the same ``KIND_HEARTBEAT`` /
``KIND_STATS`` protocol the workers use (plus a ``KIND_SHARD_OVERLOAD``
JSON state for ``/overload``); the dispatch plane delta-folds the
counters so they stay monotonic across shard restarts.
"""

from __future__ import annotations

import cProfile
import json
import struct
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dispatch.splitter import pack_egress, unpack_burst
from repro.dispatch.stage import DispatchPipeline
from repro.errors import ConfigError, RuntimeBackendError
from repro.ipc.arena import FrameArena
from repro.ipc.factory import attach_ring
from repro.ipc.messages import (ControlEvent, KIND_HEARTBEAT, KIND_STATS,
                                KIND_STOP, KIND_USER, decode_event,
                                encode_event, encode_stats_chunks)
from repro.ipc.shm import SharedSegment
from repro.ipc.wait import AimdBatcher, WaitPolicy
from repro.obs.registry import Registry
from repro.obs.spans import SpanRecorder
from repro.obs.trace import TRACER as _TRACE
from repro.overload import SharedVerdict, build_controller

__all__ = ["ShardArgs", "dispatch_shard_main", "KIND_SHARD_DETACH",
           "KIND_SHARD_ATTACH", "KIND_SHARD_OVERLOAD"]

#: Monitor -> shard: drop one VRI from balancing (payload: JSON).
KIND_SHARD_DETACH = KIND_USER + 1
#: Monitor -> shard: pick up a (re)spawned VRI (payload: JSON with the
#: data-ring segment names).
KIND_SHARD_ATTACH = KIND_USER + 2
#: Shard -> monitor: the admission controller's ``state()`` as JSON,
#: for the sharded ``/overload`` view.
KIND_SHARD_OVERLOAD = KIND_USER + 3

#: How many ingest jumbos one loop sweep absorbs before draining
#: outputs — bounds dispatch-side latency under sustained ingress.
_INGEST_PER_SWEEP = 4
#: Residual-drain patience at cooperative stop.
_STOP_QUIET = 0.25
_STOP_CAP = 3.0
#: How long a fully wedged push (no worker consuming, nothing to
#: drain) is retried before the admitted tail is dropped and counted.
_STALL_CAP = 1.0


@dataclass(frozen=True)
class ShardArgs:
    """Everything a dispatcher shard needs, picklable for spawn ctx."""

    shard_id: int
    n_shards: int
    obs_id: str
    #: Segment names of this shard's plane rings.
    ingest: str
    egress: str
    ctrl_down: str
    ctrl_up: str
    #: ``(vri_id, data_in segment, data_out segment)`` per owned VRI.
    vris: Tuple[Tuple[int, str, str], ...]
    ring_capacity: int
    data_plane: str
    arena: Optional[str] = None
    #: Reclaim-ring ids of this shard's static partition (includes
    #: currently-detached VRIs; see module docstring).
    reclaim_ids: Tuple[int, ...] = ()
    balancer: str = "rr"
    overload_policy: str = "none"
    overload_opts: Optional[dict] = None
    verdict: Optional[str] = None
    wait_strategy: str = "sleep"
    heartbeat_interval: float = 0.2
    stats_interval: float = 0.25
    #: Forwarding-drill mode: count drained outputs instead of shipping
    #: their payloads back through the egress ring.
    egress_counts: bool = False
    profile_path: Optional[str] = None


@dataclass
class _ShardVri:
    """Shard-side view of one worker's data rings."""

    vri_id: int
    segments: List[SharedSegment]
    data_in: object
    data_out: object
    dispatched: int = 0
    drained: int = 0

    def close(self) -> None:
        for ring in (self.data_in, self.data_out):
            ring.close()
        for seg in self.segments:
            seg.close()


def _attach_vri(spec: Tuple[int, str, str]) -> _ShardVri:
    vri_id, din_name, dout_name = spec
    segs: List[SharedSegment] = []
    rings = []
    try:
        for name in (din_name, dout_name):
            seg = SharedSegment.attach(name)
            segs.append(seg)
            rings.append(attach_ring("lamport", seg.buf))
    except BaseException:
        # Rings hold exported views into seg.buf: release them first or
        # SharedMemory.close() raises BufferError over the real error.
        for ring in rings:
            ring.close()
        for seg in segs:
            seg.close()
        raise
    return _ShardVri(int(vri_id), segs, rings[0], rings[1])


class _ShardCore(DispatchPipeline):
    """The attribute bundle :class:`DispatchPipeline` runs over."""

    def __init__(self, args: ShardArgs, registry: Registry,
                 arena: Optional[FrameArena],
                 verdict: Optional[SharedVerdict]):
        sid = str(args.shard_id)
        #: Spawn-time specs can go stale before this child runs: if the
        #: monitor respawned a worker in that window, the old data
        #: segments are gone and the fresh names are already queued on
        #: our ctrl ring as a KIND_SHARD_DETACH/KIND_SHARD_ATTACH pair
        #: (detach of a never-attached VRI is a no-op).  Skip the stale
        #: spec instead of dying on startup.
        self.vris: List[_ShardVri] = []
        stale = 0
        for spec in args.vris:
            try:
                self.vris.append(_attach_vri(spec))
            except RuntimeBackendError:
                stale += 1
        if stale:
            registry.counter(
                "dispatch_stale_spec_total",
                "spawn-time VRI specs whose segments were respawned "
                "away before the shard attached",
                rt=args.obs_id, shard=sid).inc(stale)
        self.balancer = args.balancer
        self._rr = 0
        self.ring_capacity = args.ring_capacity
        self.arena = arena
        self._arena_prod = (arena.producer(
            shard=args.shard_id, n_shards=args.n_shards,
            reclaim_ids=args.reclaim_ids) if arena is not None else None)
        #: Probes need the monitor on both ends of the data path, so
        #: span sampling is always off inside a shard.
        self.spans = SpanRecorder(registry, sample_every=0,
                                  clock=time.monotonic, backend="runtime",
                                  labels={"rt": args.obs_id, "shard": sid})
        #: Admission runs at the shard's *ingest* boundary (so the
        #: push-side backpressure loop never re-admits a burst), not
        #: inside the inherited dispatch_many — hence ``overload`` is
        #: None on the pipeline and the controller lives on ``ctl``.
        self.overload = None
        self.ctl = build_controller(
            args.overload_policy, args.overload_opts, registry,
            scope_labels={"rt": args.obs_id, "shard": sid},
            verdict=verdict, verdict_slot=args.shard_id)
        self._push_pending: Dict[int, int] = {}
        self._drain_batcher = AimdBatcher(
            hi=max(256, min(1024, args.ring_capacity // 8)))
        self._wait = WaitPolicy(args.wait_strategy)
        self._wait_sleeps_seen = 0
        self._c_dispatched = registry.counter(
            "dispatch_pushed_total",
            "frames this dispatcher shard pushed onto worker rings",
            rt=args.obs_id, shard=sid)
        self._c_arena_alloc = registry.counter(
            "dispatch_arena_alloc_total",
            "arena chunks this dispatcher shard staged",
            rt=args.obs_id, shard=sid)
        self._c_arena_exhausted = registry.counter(
            "dispatch_arena_exhausted_total",
            "shard dispatch attempts refused by a dry arena",
            rt=args.obs_id, shard=sid)
        self._c_seq_gap_spans = registry.counter(
            "trace_seq_gap_total",
            "lost or out-of-order sequenced records, by plane",
            rt=args.obs_id, shard=sid, plane="spans")
        self._c_wait_sleeps = registry.counter(
            "wait_sleeps_total",
            "idle sleeps taken by the shard's wait policy",
            rt=args.obs_id, shard=sid)
        self._h_batch = registry.histogram(
            "ring_batch_size", "records moved per ring transaction",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            rt=args.obs_id, shard=sid, side="dispatch")
        self._h_batch_drain = registry.histogram(
            "ring_batch_size", "records moved per ring transaction",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
            rt=args.obs_id, shard=sid, side="drain")

    def pump_control(self) -> None:
        """No-op: the monitor owns the worker control plane."""

    def detach(self, vri_id: int) -> bool:
        for vri in self.vris:
            if vri.vri_id == vri_id:
                # Drain what the worker already produced (frees this
                # shard's chunks); the monitor reclaims data_in.
                self._drain_one(vri)
                self.vris.remove(vri)
                vri.close()
                return True
        return False

    def attach(self, spec: Tuple[int, str, str]) -> None:
        if any(v.vri_id == spec[0] for v in self.vris):
            raise ConfigError(f"vri {spec[0]} already attached")
        self.vris.append(_attach_vri(spec))

    def _drain_one(self, vri: _ShardVri) -> List[Tuple[int, int, bytes]]:
        keep = self.vris
        self.vris = [vri]
        try:
            return self.drain()
        finally:
            self.vris = keep

    def close(self) -> None:
        for vri in self.vris:
            vri.close()
        self.vris = []


def dispatch_shard_main(args: ShardArgs) -> None:
    """Process entry point for one dispatcher shard."""
    if args.profile_path:
        profile = cProfile.Profile()
        profile.enable()
        try:
            _shard_loop(args)
        finally:
            profile.disable()
            profile.dump_stats(args.profile_path)
    else:
        _shard_loop(args)


def _shard_loop(args: ShardArgs) -> None:
    # A forked shard inherits the parent's tracer state; replay traces
    # model the single monitor process, so shard-side events are noise.
    _TRACE.enabled = False
    sid = str(args.shard_id)
    registry = Registry()
    segs: List[SharedSegment] = []
    rings: List[object] = []

    def _ring(name: str):
        seg = SharedSegment.attach(name)
        segs.append(seg)
        ring = attach_ring("lamport", seg.buf)
        rings.append(ring)
        return ring

    core = None
    arena = None
    verdict = None
    try:
        ingest = _ring(args.ingest)
        egress = _ring(args.egress)
        ctrl_down = _ring(args.ctrl_down)
        ctrl_up = _ring(args.ctrl_up)
        if args.arena is not None:
            arena_seg = SharedSegment.attach(args.arena)
            segs.append(arena_seg)
            arena = FrameArena.attach(arena_seg.buf)
        if args.verdict is not None:
            verdict_seg = SharedSegment.attach(args.verdict)
            segs.append(verdict_seg)
            verdict = SharedVerdict.attach(verdict_seg.buf)
        core = _ShardCore(args, registry, arena, verdict)

        ctl = core.ctl
        if ctl is not None:
            classify = ctl.classifier.classify_raw
            c_offered = [registry.counter(
                "dispatch_offered_total",
                "frames offered to this dispatcher shard, per class",
                rt=args.obs_id, shard=sid, cls=name)
                for name in ctl.classifier.classes]
        else:
            classify = None
            c_offered = [registry.counter(
                "dispatch_offered_total",
                "frames offered to this dispatcher shard, per class",
                rt=args.obs_id, shard=sid, cls="all")]
        c_ingest = registry.counter(
            "dispatch_ingest_records_total",
            "jumbo burst records popped from the ingest ring",
            rt=args.obs_id, shard=sid)
        c_rejected = registry.counter(
            "dispatch_rejected_total",
            "admitted frames the worker rings/arena could not absorb",
            rt=args.obs_id, shard=sid)
        c_drained = registry.counter(
            "dispatch_drained_total",
            "worker outputs this shard drained",
            rt=args.obs_id, shard=sid)
        c_egress_full = registry.counter(
            "dispatch_egress_full_total",
            "drained outputs dropped because the egress ring stayed full",
            rt=args.obs_id, shard=sid)

        egress_budget = egress.max_record
        stats_budget = ctrl_up.max_record - 12  # event header
        stats_gen = 0
        wait = WaitPolicy(args.wait_strategy)
        now = time.monotonic()
        next_hb = (now + args.heartbeat_interval
                   if args.heartbeat_interval > 0 else float("inf"))
        next_stats = (now + args.stats_interval
                      if args.stats_interval > 0 else float("inf"))

        def offered(frames: List[bytes]) -> None:
            # Independent per-class offered count (the conservation
            # check's left-hand side; admission recounts internally).
            if classify is None:
                c_offered[0].inc(len(frames))
                return
            for frame in frames:
                c_offered[classify(frame)].inc()

        running = True

        def pump_ctrl() -> int:
            """Drain the control ring; returns how many events landed.

            Shared by the main sweep and the absorb stall loop: while a
            burst is blocked (e.g. this shard's only VRI is mid-
            failover and detached), the replacement worker's ATTACH
            must still be able to land — otherwise the stall never
            resolves before the cap.
            """
            nonlocal running
            n = 0
            while True:
                record = ctrl_down.try_pop()
                if record is None:
                    return n
                event = decode_event(record)
                if event.kind == KIND_STOP:
                    running = False
                elif event.kind == KIND_SHARD_DETACH:
                    spec = json.loads(event.payload.decode())
                    core.detach(int(spec["vri"]))
                elif event.kind == KIND_SHARD_ATTACH:
                    spec = json.loads(event.payload.decode())
                    core.attach((int(spec["vri"]), spec["data_in"],
                                 spec["data_out"]))
                n += 1

        def absorb(frames: List[bytes]) -> None:
            """Admit at the ingest boundary, then push until delivered.

            Once a burst is accepted into the ingest ring, this shard
            owes delivery of every *admitted* frame: both the copy and
            arena paths accept a strict prefix of a burst, so the
            un-pushed tail is retried — in order, with output drains
            interleaved to open worker-ring space — instead of being
            dropped the way the single-dispatcher monitor surfaces
            backpressure to its caller (which retries for it).  Only a
            sustained stall (dead workers) drops the tail, counted.
            """
            offered(frames)
            if ctl is not None:
                ctl.maybe_update(time.monotonic(),
                                 core._overload_occupancy)
                frames = ctl.admit_block(frames)
            remaining = frames
            stall_deadline = None
            while remaining:
                # A shard whose VRIs are all mid-failover (detached,
                # replacement pending) has nowhere to push; hold the
                # burst through the stall window instead of crashing.
                sent = core.dispatch_many(remaining) if core.vris else 0
                if sent:
                    remaining = remaining[sent:]
                    stall_deadline = None
                    continue
                outs = core.drain()
                if outs:
                    emit(outs)
                    continue
                if pump_ctrl():
                    continue  # an attach/detach may have opened a path
                now = time.monotonic()
                if stall_deadline is None:
                    stall_deadline = now + _STALL_CAP
                elif now > stall_deadline:
                    c_rejected.inc(len(remaining))
                    break
                wait.idle()

        def emit(outs: List[Tuple[int, int, bytes]]) -> None:
            if not outs:
                return
            c_drained.inc(len(outs))
            if args.egress_counts:
                return
            for record in pack_egress(outs, egress_budget):
                for _ in range(64):
                    if egress.try_push(record):
                        break
                    wait.idle()
                else:
                    from repro.dispatch.splitter import burst_frames
                    c_egress_full.inc(burst_frames(record))

        def ship_telemetry(force: bool = False) -> None:
            nonlocal next_hb, next_stats, stats_gen
            now = time.monotonic()
            if now >= next_hb or force:
                ctrl_up.try_push(encode_event(ControlEvent(
                    KIND_HEARTBEAT, args.shard_id, 0,
                    struct.pack("<d", now))))
                next_hb = now + args.heartbeat_interval
            if now >= next_stats or force:
                stats_gen += 1
                for chunk in encode_stats_chunks(registry.snapshot(),
                                                 stats_gen, stats_budget):
                    if not ctrl_up.try_push(encode_event(ControlEvent(
                            KIND_STATS, args.shard_id, 0, chunk))):
                        break
                if ctl is not None:
                    payload = json.dumps(
                        ctl.state(), separators=(",", ":")).encode()
                    if len(payload) <= stats_budget:
                        ctrl_up.try_push(encode_event(ControlEvent(
                            KIND_SHARD_OVERLOAD, args.shard_id, 0,
                            payload)))
                next_stats = now + args.stats_interval

        while running:
            # Control first — the thesis' control-over-data priority.
            progress = pump_ctrl()
            for _ in range(_INGEST_PER_SWEEP):
                record = ingest.try_pop()
                if record is None:
                    break
                c_ingest.inc()
                frames = unpack_burst(record)
                absorb(frames)
                progress += len(frames)
            outs = core.drain()
            if outs:
                emit(outs)
                progress += len(outs)
            ship_telemetry()
            if progress:
                wait.reset()
            else:
                wait.idle()

        # Cooperative stop: absorb the residual ingest backlog, then
        # give in-flight worker bursts a bounded grace to come home.
        while True:
            record = ingest.try_pop()
            if record is None:
                break
            c_ingest.inc()
            absorb(unpack_burst(record))
        deadline = time.monotonic() + _STOP_CAP
        quiet_at = time.monotonic() + _STOP_QUIET
        while time.monotonic() < min(deadline, quiet_at):
            outs = core.drain()
            if outs:
                emit(outs)
                quiet_at = time.monotonic() + _STOP_QUIET
            else:
                wait.idle()
        ship_telemetry(force=True)
    finally:
        if core is not None:
            core.close()
        if arena is not None:
            arena.close()
        if verdict is not None:
            verdict.close()
        for ring in rings:
            ring.close()
        for seg in segs:
            seg.close()
