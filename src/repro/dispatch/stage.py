"""The shard-runnable dispatch/drain stage.

:class:`DispatchPipeline` is the monitor's classify → overload-admit →
balance → stage → descriptor-push pipeline plus the matching drain side,
extracted verbatim from ``runtime/monitor.py`` so the exact same code
runs in two hosts:

* :class:`repro.runtime.monitor.RuntimeLvrm` — the paper's single
  monitor process (1 shard);
* :class:`repro.dispatch.shard._ShardCore` — one of N dispatcher-shard
  processes, each owning a disjoint VRI subset.

The mixin is deliberately attribute-driven rather than constructor-
driven: a host supplies the state the pipeline reads, nothing more.

Required host attributes
------------------------
``vris``                 list of handles with ``vri_id``, ``data_in``,
                         ``data_out``, ``dispatched``, ``drained``
``balancer``/``_rr``     ``"rr"`` or ``"jsq"`` + the rotation cursor
``ring_capacity``        worker data-ring depth (occupancy normalizer)
``overload``             ``AdmissionController`` or None
``spans``                ``SpanRecorder`` (``sample_every == 0`` in
                         shards: probes need the monitor on both ends)
``arena``/``_arena_prod``  ``FrameArena`` + this process's producer
                         shard, or None on the copy plane
``_push_pending``        record-mode coalesced ``ring.push`` counts
``_drain_batcher``       AIMD drain burst sizer
``_c_dispatched``, ``_c_arena_alloc``, ``_c_arena_exhausted``,
``_h_batch``, ``_h_batch_drain``, ``_c_seq_gap_spans``,
``_c_wait_sleeps``/``_wait``/``_wait_sleeps_seen``  instruments
``pump_control()``       idle-path control pump (used by drain_until)
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import RuntimeBackendError
from repro.ipc.desc import FLAG_PROBE, PROBE_HEADROOM, pack_desc_block
from repro.obs.spans import PROBE_MAGIC_BYTES, decode_out_probe, \
    encode_in_probe
from repro.obs.trace import TRACER as _TRACE
from repro.runtime.api import VriSideApi

__all__ = ["DispatchPipeline"]


class DispatchPipeline:
    """Dispatch/drain stage shared by the monitor and dispatcher shards."""

    # -- data plane ------------------------------------------------------------
    def _pick(self):
        if self.balancer == "jsq":
            return min(self.vris, key=lambda v: len(v.data_in))
        vri = self.vris[self._rr % len(self.vris)]
        self._rr += 1
        return vri

    def _overload_occupancy(self) -> float:
        """Admission-control load signal: max data-ring fill across
        *this host's* workers, normalized to [0, 1] — which makes a
        shard's AIMD controller shard-aware for free: it reacts to the
        rings it actually feeds, not the cluster max."""
        if not self.vris:
            return 0.0
        depth = max(len(v.data_in) for v in self.vris)
        return depth / self.ring_capacity if self.ring_capacity else 0.0

    def occupancies(self) -> Dict[int, float]:
        """Per-VRI data-ring fill fractions (the shard-aware shedding
        signal surfaced on ``/overload``)."""
        cap = self.ring_capacity
        if not cap:
            return {}
        return {v.vri_id: len(v.data_in) / cap for v in self.vris}

    @staticmethod
    def _flush(ring) -> None:
        flush = getattr(ring, "flush", None)
        if flush is not None:
            flush()

    def dispatch(self, frame: bytes, t_capture: float = 0.0) -> bool:
        """Balance one raw frame to a worker; False when its ring is full.

        ``t_capture`` (monotonic) marks when the frame entered the
        gateway; defaults to now, making the dispatch phase ~0 for
        callers that hand frames straight in.
        """
        if not self.vris:
            raise RuntimeBackendError("monitor is stopped")
        if self.overload is not None:
            self.overload.maybe_update(time.monotonic(),
                                       self._overload_occupancy)
            shed_before = (list(self.overload.shed) if _TRACE.enabled
                           else None)
            admitted = self.overload.admit_raw(frame)
            if shed_before is not None:
                self._trace_shed(shed_before)
            if not admitted:
                # Shed reads as "not accepted", same as backpressure —
                # callers already handle a False dispatch.
                return False
        vri = self._pick()
        if self.arena is not None:
            probe = bool(self.spans.sample_every
                         and self.spans.should_sample())
            return self._dispatch_arena_one(vri, frame, t_capture, probe)
        if self.spans.sample_every and self.spans.should_sample():
            now = time.monotonic()
            frame = encode_in_probe(t_capture or now, now, frame)
        ok = vri.data_in.try_push(frame)
        if ok:
            vri.dispatched += 1
            self._c_dispatched.inc()
            self._flush(vri.data_in)
            if _TRACE.enabled:
                self._push_pending[vri.vri_id] = (
                    self._push_pending.get(vri.vri_id, 0) + 1)
        return ok

    def flush_trace(self) -> None:
        """Emit the coalesced ``ring.push`` trace events (record mode).

        The scalar dispatch path only bumps a pending per-VRI count —
        a dict update, not a Tracer emit, keeping record-mode overhead
        inside its e2e budget.  This flushes the counts as one batched
        event per VRI, and must run before any event that *observes*
        ring occupancy in the replay twin: ring pops, stranded-arena
        reclaims, and the final summary.  Single-threaded monitor, so
        the deferral never reorders across a pop of the same records.
        """
        pend = self._push_pending
        if not pend:
            return
        now = time.monotonic()
        for vri_id, n in pend.items():
            _TRACE.instant("ring.push", ts=now, cat="replay",
                           track="lvrm", vri=vri_id, n=n)
        pend.clear()

    def _trace_shed(self, shed_before: List[int]) -> None:
        """Record per-class shed deltas since ``shed_before`` as
        ``frame.shed`` trace events (record mode only — the replayer
        recomputes per-class counters from these)."""
        ctl = self.overload
        names = ctl.classifier.classes
        now = time.monotonic()
        for c, before in enumerate(shed_before):
            delta = ctl.shed[c] - before
            if delta:
                _TRACE.instant("frame.shed", ts=now, cat="replay",
                               track="lvrm", cls=names[c], n=delta)

    def _dispatch_arena_one(self, vri, frame: bytes,
                            t_capture: float, probe: bool) -> bool:
        """Arena mode: stage the payload once into its chunk, push a
        24-byte descriptor.  An exhausted arena reads as backpressure
        (False), same as a full ring."""
        prod = self._arena_prod
        got = prod.write(frame, headroom=PROBE_HEADROOM if probe else 0)
        if got is None:
            self._c_arena_exhausted.inc()
            return False
        off, length = got
        flags = 0
        if probe:
            now = time.monotonic()
            self.arena.write_stamps(off, length, 0, t_capture or now, now)
            flags = FLAG_PROBE
        ok = vri.data_in.try_push_desc_many(
            ((off, length, 0, flags, time.monotonic_ns()),)) == 1
        if ok:
            vri.dispatched += 1
            self._c_dispatched.inc()
            self._c_arena_alloc.inc()
            self._flush(vri.data_in)
            if _TRACE.enabled:
                self._push_pending[vri.vri_id] = (
                    self._push_pending.get(vri.vri_id, 0) + 1)
        else:
            prod.free_local(off)
        return ok

    def dispatch_many(self, frames: List[bytes]) -> int:
        """Balance a burst of frames with one ring transaction per worker.

        The balancing decision runs at batch granularity (one pick per
        burst, rotating to the next worker only for frames the first
        choice could not absorb) — the runtime twin of what the thesis
        calls amortizing the "balance" step.  Returns how many frames
        were accepted.
        """
        if not self.vris:
            raise RuntimeBackendError("monitor is stopped")
        if self.overload is not None:
            # Admission is decided per-block *before* staging so the
            # vectorized kernels (numpy/cffi write_block) still see one
            # contiguous burst — just a smaller one.
            self.overload.maybe_update(time.monotonic(),
                                       self._overload_occupancy)
            shed_before = (list(self.overload.shed) if _TRACE.enabled
                           else None)
            frames = self.overload.admit_block(frames)
            if shed_before is not None:
                self._trace_shed(shed_before)
            if not frames:
                return 0
        if self.arena is not None:
            return self._dispatch_arena_many(frames)
        probe_at = self.spans.sample_index(len(frames))
        if probe_at is not None:
            now = time.monotonic()
            frames = list(frames)
            frames[probe_at] = encode_in_probe(now, now, frames[probe_at])
        sent = 0
        remaining = frames
        # At worst every worker's ring is tried once.
        for _ in range(len(self.vris)):
            if not remaining:
                break
            vri = self._pick()
            n = vri.data_in.try_push_many(remaining)
            if n:
                vri.dispatched += n
                self._flush(vri.data_in)
                sent += n
                remaining = remaining[n:]
                if _TRACE.enabled:
                    _TRACE.instant("ring.push", ts=time.monotonic(),
                                   cat="replay", track="lvrm",
                                   vri=vri.vri_id, n=n)
        if sent:
            self._c_dispatched.inc(sent)
            self._h_batch.observe(sent)
        return sent

    def _dispatch_arena_many(self, frames: List[bytes]) -> int:
        """Arena-mode burst dispatch: each payload staged once, the
        burst's descriptors pushed with one ring transaction per worker
        tried.  Frames that find neither a chunk nor ring space are
        rejected (their chunks freed), mirroring the copy path's
        partial-accept contract."""
        prod = self._arena_prod
        arena = self.arena
        n_frames = len(frames)
        probe_at = self.spans.sample_index(n_frames)
        stamp = time.monotonic_ns()
        probe_row: Optional[int] = None
        if probe_at is None:
            # Fused staging: one call writes the burst and returns its
            # descriptor block (no per-frame packing).
            block = prod.write_block(frames, stamp=stamp)
            staged = len(block)
            if staged < n_frames:
                self._c_arena_exhausted.inc(n_frames - staged)
                if not staged:
                    return 0
            return self._push_desc_block(block, staged)
        else:
            # The sampled frame alone needs stamp headroom, so it stages
            # through the scalar path between two bulk writes.
            offs, lens = prod.write_many(frames[:probe_at])
            if len(offs) == probe_at:
                got = prod.write(frames[probe_at], headroom=PROBE_HEADROOM)
                if got is not None:
                    off, length = got
                    now = time.monotonic()
                    arena.write_stamps(off, length, 0, now, now)
                    probe_row = len(offs)
                    offs.append(off)
                    lens.append(length)
                    tail_offs, tail_lens = prod.write_many(
                        frames[probe_at + 1:])
                    offs.extend(tail_offs)
                    lens.extend(tail_lens)
        staged = len(offs)
        if staged < n_frames:
            # Arena dry: staging stopped — descriptors later in the
            # burst would only deepen the shortage.
            self._c_arena_exhausted.inc(n_frames - staged)
            if not staged:
                return 0
        block = pack_desc_block(offs, lens, stamp=stamp)
        if probe_row is not None:
            block[probe_row, 1] |= np.uint64(FLAG_PROBE << 48)
        return self._push_desc_block(block, staged)

    def _push_desc_block(self, block, staged: int) -> int:
        """Push a staged descriptor block across worker rings (one
        transaction per worker tried), freeing any unsent tail."""
        sent = 0
        for _ in range(len(self.vris)):
            if sent >= staged:
                break
            vri = self._pick()
            n = vri.data_in.try_push_desc_block(block[sent:])
            if n:
                vri.dispatched += n
                self._flush(vri.data_in)
                sent += n
                if _TRACE.enabled:
                    _TRACE.instant("ring.push", ts=time.monotonic(),
                                   cat="replay", track="lvrm",
                                   vri=vri.vri_id, n=n)
        if sent < staged:
            # Every ring full: give the staged chunks back.
            self._arena_prod.free_local_many(block[sent:, 0])
        if sent:
            self._c_dispatched.inc(sent)
            self._c_arena_alloc.inc(sent)
            self._h_batch.observe(sent)
        return sent

    def drain(self) -> List[Tuple[int, int, bytes]]:
        """Collect all available outputs: ``(vri_id, out_iface, frame)``."""
        if self.arena is not None:
            return self._drain_arena()
        out: List[Tuple[int, int, bytes]] = []
        split = VriSideApi.split_output
        magic = PROBE_MAGIC_BYTES
        batcher = self._drain_batcher
        for vri in self.vris:
            while True:
                records = vri.data_out.try_pop_many(batcher.size)
                got = len(records)
                batcher.update(got)
                if not got:
                    break
                self._h_batch_drain.observe(got)
                vri.drained += got
                vri_id = vri.vri_id
                if _TRACE.enabled:
                    # Covering pushes must hit the trace before the pop.
                    if self._push_pending:
                        self.flush_trace()
                    _TRACE.instant("ring.pop", ts=time.monotonic(),
                                   cat="replay", track="lvrm",
                                   vri=vri_id, n=got)
                for record in records:
                    if record[:4] == magic:
                        # A probed record closes its latency span here.
                        stamps, record = decode_out_probe(record)
                        if stamps is not None:
                            self.spans.record_stamps(
                                *stamps, time.monotonic(), vri_id=vri_id)
                            if _TRACE.enabled:
                                _TRACE.instant(
                                    "span.close", ts=time.monotonic(),
                                    cat="replay", track="lvrm", vri=vri_id)
                        else:
                            # Magic matched but the stamp block did not
                            # decode: a lost/garbled probe sequence.
                            self._c_seq_gap_spans.inc()
                    iface, frame = split(record)
                    out.append((vri_id, iface, frame))
        return out

    def _drain_arena(self) -> List[Tuple[int, int, bytes]]:
        """Arena-mode drain: pop descriptors, copy each frame out of its
        chunk exactly once (the caller owns the result, so this copy is
        the round trip's second and last), then free the chunk straight
        onto the owner's shard free list."""
        out: List[Tuple[int, int, bytes]] = []
        arena = self.arena
        read_block = arena.read_block
        free_many = self._arena_prod.free_local_many
        record_stamps = self.spans.record_stamps
        batcher = self._drain_batcher
        probe_bits = np.uint64(FLAG_PROBE << 48)
        shift32 = np.uint64(32)
        mask16 = np.uint64(0xFFFF)
        # Probes only exist when dispatch samples spans; with sampling
        # off the per-block flag scan is pure overhead.
        check_probes = bool(self.spans.sample_every)
        for vri in self.vris:
            while True:
                block = vri.data_out.try_pop_desc_block(batcher.size)
                got = 0 if block is None else len(block)
                batcher.update(got)
                if not got:
                    break
                self._h_batch_drain.observe(got)
                vri.drained += got
                vri_id = vri.vri_id
                if _TRACE.enabled:
                    # Covering pushes must hit the trace before the pop.
                    if self._push_pending:
                        self.flush_trace()
                    _TRACE.instant("ring.pop", ts=time.monotonic(),
                                   cat="replay", track="lvrm",
                                   vri=vri_id, n=got)
                word1 = block[:, 1]
                if check_probes and (word1 & probe_bits).any():
                    # Probed chunks carry all four span stamps in their
                    # headroom; close those spans before freeing.
                    now = time.monotonic()
                    for row in np.flatnonzero(
                            word1 & probe_bits).tolist():
                        off = int(block[row, 0])
                        length = int(word1[row]) & 0xFFFFFFFF
                        record_stamps(*arena.read_stamps(off, length),
                                      now, vri_id=vri_id)
                        if _TRACE.enabled:
                            _TRACE.instant("span.close", ts=now,
                                           cat="replay", track="lvrm",
                                           vri=vri_id)
                payloads = read_block(block)
                ifaces = ((word1 >> shift32) & mask16).tolist()
                out.extend(zip(itertools.repeat(vri_id), ifaces, payloads))
                free_many(block[:, 0])
        return out

    def drain_until(self, n_expected: int, timeout: float = 10.0
                    ) -> List[Tuple[int, int, bytes]]:
        """Drain until ``n_expected`` outputs arrive or timeout expires.

        Idle waits follow the configured wait strategy (spin / yield /
        escalating sleep); actual sleeps feed ``wait_sleeps_total``.
        """
        collected: List[Tuple[int, int, bytes]] = []
        deadline = time.monotonic() + timeout
        policy = self._wait
        while len(collected) < n_expected and time.monotonic() < deadline:
            batch = self.drain()
            if batch:
                collected.extend(batch)
                policy.reset()
            else:
                self.pump_control()
                policy.idle()
        taken = policy.sleeps - self._wait_sleeps_seen
        if taken:
            self._c_wait_sleeps.inc(taken)
            self._wait_sleeps_seen = policy.sleeps
        return collected
