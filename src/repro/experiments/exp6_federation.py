"""Experiment 6 (extension): multi-LVRM federation.

The paper stops at one monitor process; this extension shards VRs
across N of them and adds an HA pair.  Two figures:

* :func:`fed_des` — shard-count scaling (aggregate throughput at
  N=1/2/4 with the monitor core saturated) plus the HA-pair failover
  drill (failover time against the 2-supervision-period budget,
  recovered throughput, route/pin survival).
* :func:`fed_rt` — the same failover drill over real worker
  processes and a real shared-memory replication ring.
"""

from __future__ import annotations

import pathlib

from repro.experiments.common import ExperimentResult, Profile

__all__ = ["fed_des", "fed_rt"]

#: The canned HA-pair drill shipped with the repo (resolved against the
#: repo root so the experiment works from any working directory).
PAIR_CONFIG = (pathlib.Path(__file__).resolve().parents[3]
               / "examples" / "configs" / "federation_pair.json")


def fed_des(profile: Profile) -> ExperimentResult:
    """Sharding scaling sweep + the kill-the-active failover drill."""
    from repro.cluster import (load_federation_config,
                               run_des_failover_scenario, run_des_scaling)

    result = ExperimentResult(
        "fed-des", "Federation: sharded scaling and HA failover (DES)",
        ("scenario", "metric", "value"))
    duration = max(0.3, min(0.6, profile.window))
    base = None
    for n in (1, 2, 4):
        report = run_des_scaling(n, duration=duration)
        kfps = report["throughput_kfps"]
        if n == 1:
            base = kfps
        result.add(f"scale-n{n}", "throughput_kfps", kfps)
        result.add(f"scale-n{n}", "speedup_vs_n1",
                   round(kfps / base, 3) if base else 0.0)
    cfg = load_federation_config(str(PAIR_CONFIG))
    report = run_des_failover_scenario(cfg)
    failover = report.get("failover", {})
    result.add("ha-pair", "failover_ms",
               round(failover.get("failover_seconds", float("nan")) * 1e3,
                     3))
    result.add("ha-pair", "budget_ms",
               round(failover.get("budget_seconds", 0.0) * 1e3, 3))
    result.add("ha-pair", "lost_in_blackout",
               failover.get("lost_in_blackout", -1))
    result.add("ha-pair", "recovered_ratio",
               report.get("throughput", {}).get("recovered_ratio", 0.0))
    result.add("ha-pair", "pins_installed",
               failover.get("promote", {}).get("pins_installed", 0))
    result.add("ha-pair", "routes_survived",
               report["routes"]["present_on_standby_at_promote"])
    result.add("ha-pair", "route_relearns",
               report["routes"]["relearned_after_promotion"])
    result.add("ha-pair", "ok", int(report["ok"]))
    result.notes.append(
        "scale-nN saturates each monitor core (inflated capture cost), "
        "so aggregate throughput is shard-count-linear; the ha-pair "
        "rows are the canned examples/configs/federation_pair.json "
        "drill (deterministic).")
    return result


def fed_rt(profile: Profile) -> ExperimentResult:
    """The failover drill over real processes (mechanism proof)."""
    from repro.cluster.runtime import run_runtime_failover_scenario

    report = run_runtime_failover_scenario(duration=3.0, kill_at=1.0)
    result = ExperimentResult(
        "fed-rt", "Federation: HA failover over real processes",
        ("metric", "value"))
    failover = report.get("failover") or {}
    result.add("failover_ms",
               round(failover.get("failover_seconds", float("nan")) * 1e3,
                     3))
    result.add("budget_ms", round(report["budget_seconds"] * 1e3, 3))
    result.add("within_budget", int(report["within_budget"]))
    result.add("standby_forwarded", report["standby_forwarded"])
    result.add("routes_on_standby", report["routes_on_standby"])
    result.add("replicate_events", report["bus"]["replicate"])
    result.add("ok", int(report["ok"]))
    result.notes.append(
        "SIGKILLs every worker of the active; the director detects the "
        "crash from process liveness + heartbeat staleness and promotes "
        "the standby over a real shared-memory control ring.")
    return result
