"""Shared scaffolding for the Chapter 4 experiments.

Profiles
--------
The paper runs 60-second UDP trials and 600-second FTP trials on real
hardware; a DES reproduces the same steady states in far shorter
windows.  Three profiles scale only *measurement durations and sweep
densities* — never rates, thresholds, or costs — so every crossover sits
where the paper puts it:

* ``QUICK`` — seconds of wall time; used by the test suite.
* ``BENCH`` — tens of seconds; used by ``benchmarks/``.
* ``FULL``  — paper-scale durations for offline runs.

Mechanisms
----------
:func:`udp_trial` runs one offered-load trial for any of the Figure 4.2
forwarding mechanisms (native kernel, the LVRM variants, and the two
hypervisors) and returns sent/received rates — the primitive under the
achievable-throughput search.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines import (HypervisorForwarder, KernelForwarder, qemu_kvm,
                             vmware_server)
from repro.core import (FixedAllocation, Lvrm, LvrmConfig, VrSpec, VrType,
                        make_socket_adapter)
from repro.core.allocation import CoreAllocator
from repro.errors import ConfigError
from repro.hardware import AffinityMode, CostModel, DEFAULT_COSTS, Machine
from repro.metrics import achievable_throughput
from repro.net import Testbed
from repro.net.link import GIGABIT
from repro.routing.prefix import Prefix
from repro.sim import Simulator
from repro.traffic import FrameSink, UdpSender

__all__ = ["Profile", "QUICK", "BENCH", "FULL", "get_profile",
           "ExperimentResult", "udp_trial", "search_achievable",
           "build_lvrm_gateway", "MECHANISMS", "SENDER_MAX_FPS"]

#: The testbed's measured input ceiling: 2 hosts x 224 Kfps (Chapter 4).
SENDER_MAX_FPS = 448_000.0

MECHANISMS = ("native", "lvrm-cpp-raw", "lvrm-cpp-pfring",
              "lvrm-click-pfring", "vmware", "qemu-kvm")


@dataclass(frozen=True)
class Profile:
    """Scale knobs for one experiment run."""

    name: str
    #: Steady-state measurement window per UDP trial (seconds).
    window: float
    #: Settling time before the window opens.
    warmup: float
    #: Frame sizes swept by the size figures.
    frame_sizes: Tuple[int, ...]
    #: Max binary-search probes per achievable-throughput point.
    probes: int
    #: ICMP echo requests per latency point.
    ping_count: int
    #: Frames streamed per memory-trace (Exp 1c/1d) point.
    trace_frames: int
    #: Control events per Exp 1e point.
    ctrl_events: int
    #: Ramp step duration and allocation period (Exp 2c-2e).  The paper
    #: uses 5 s steps with a 1 s period; the ratio is preserved.
    ramp_step: float
    allocation_period: float
    #: FTP sessions and measurement window (Exp 3c).
    ftp_sessions: int
    ftp_window: float
    ftp_warmup: float
    #: Flow-count sweep and window (Exp 4).
    exp4_flows: Tuple[int, ...]
    exp4_window: float
    #: Aggregate application read rate at the receivers (bytes/s); the
    #: flow-control ceiling behind Experiment 4's ~700 Mbps plateau.
    app_read_total: float = 92e6
    #: Joint scale on the CPU-bound experiments' rates, thresholds, and
    #: (inversely) dummy loads (Exp 2b-2e, 3a, 3b).  Utilizations, and
    #: therefore every staircase/crossover shape, are invariant under
    #: this scale; it only trades simulated frame count for wall time.
    rate_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.window <= 0 or self.warmup < 0:
            raise ConfigError("bad window/warmup")
        if self.probes < 3:
            raise ConfigError("need >= 3 search probes")


QUICK = Profile(
    name="quick", window=0.020, warmup=0.006,
    frame_sizes=(84, 512, 1538), probes=6, ping_count=50,
    trace_frames=15_000, ctrl_events=40,
    ramp_step=0.30, allocation_period=0.06,
    ftp_sessions=16, ftp_window=0.35, ftp_warmup=0.25,
    exp4_flows=(8, 16, 24), exp4_window=0.35,
    rate_scale=0.25,
)

BENCH = Profile(
    name="bench", window=0.035, warmup=0.010,
    frame_sizes=(84, 256, 512, 1024, 1538), probes=7, ping_count=150,
    trace_frames=40_000, ctrl_events=120,
    ramp_step=0.45, allocation_period=0.09,
    ftp_sessions=32, ftp_window=0.6, ftp_warmup=0.35,
    exp4_flows=(10, 25, 50), exp4_window=0.6,
)

FULL = Profile(
    name="full", window=1.0, warmup=0.25,
    frame_sizes=(84, 128, 256, 512, 1024, 1280, 1538), probes=10,
    ping_count=4000, trace_frames=2_000_000, ctrl_events=1000,
    ramp_step=5.0, allocation_period=1.0,
    ftp_sessions=100, ftp_window=10.0, ftp_warmup=3.0,
    exp4_flows=(10, 25, 50, 100), exp4_window=10.0,
)

_PROFILES = {"quick": QUICK, "bench": BENCH, "full": FULL}


def get_profile(name: Optional[str] = None) -> Profile:
    """Resolve a profile by name or the ``REPRO_PROFILE`` env var."""
    if name is None:
        name = os.environ.get("REPRO_PROFILE", "quick")
    try:
        return _PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown profile {name!r}; choose from {sorted(_PROFILES)}")


# ---------------------------------------------------------------------------
# Result container
# ---------------------------------------------------------------------------

@dataclass
class ExperimentResult:
    """Rows reproducing one paper figure."""

    exp_id: str
    title: str
    columns: Tuple[str, ...]
    rows: List[Tuple] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, expected {len(self.columns)}")
        self.rows.append(tuple(values))

    def column(self, name: str) -> List:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def by(self, **filters) -> List[Tuple]:
        """Rows whose named columns equal the given values."""
        idxs = {self.columns.index(k): v for k, v in filters.items()}
        return [row for row in self.rows
                if all(row[i] == v for i, v in idxs.items())]

    def value(self, column: str, **filters) -> float:
        """The single value of ``column`` among rows matching filters."""
        rows = self.by(**filters)
        if len(rows) != 1:
            raise ValueError(
                f"expected exactly one row for {filters}, got {len(rows)}")
        return rows[0][self.columns.index(column)]

    def to_dict(self) -> dict:
        """JSON-ready representation (CLI ``--json``)."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": list(self.notes),
        }

    def chart(self, x: str, y: str, group_by: Optional[str] = None,
              width: int = 64, height: int = 12) -> str:
        """ASCII chart of column ``y`` against column ``x``, one series
        per distinct value of ``group_by`` (if given)."""
        from repro.metrics.plot import ascii_chart

        xi, yi = self.columns.index(x), self.columns.index(y)
        series: Dict[str, Tuple[list, list]] = {}
        if group_by is None:
            series["all"] = ([r[xi] for r in self.rows],
                             [r[yi] for r in self.rows])
        else:
            gi = self.columns.index(group_by)
            for row in self.rows:
                xs, ys = series.setdefault(str(row[gi]), ([], []))
                xs.append(row[xi])
                ys.append(row[yi])
        return ascii_chart(series, width=width, height=height,
                           title=f"{self.exp_id}: {y} vs {x}",
                           x_label=x, y_label=y)

    def render(self) -> str:
        """Plain-text table, in the spirit of the paper's figures."""
        header = [f"== {self.exp_id}: {self.title} =="]
        widths = [max(len(str(c)),
                      *(len(_fmt(row[i])) for row in self.rows)) if self.rows
                  else len(str(c))
                  for i, c in enumerate(self.columns)]
        header.append("  ".join(str(c).ljust(w)
                                for c, w in zip(self.columns, widths)))
        for row in self.rows:
            header.append("  ".join(_fmt(v).ljust(w)
                                    for v, w in zip(row, widths)))
        for note in self.notes:
            header.append(f"# {note}")
        return "\n".join(header)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


# ---------------------------------------------------------------------------
# Gateway builders
# ---------------------------------------------------------------------------

def build_lvrm_gateway(
        sim: Simulator,
        testbed: Testbed,
        costs: CostModel = DEFAULT_COSTS,
        vr_type: VrType = VrType.CPP,
        adapter_name: str = "pf-ring",
        allocator_factory: Optional[Callable[[], CoreAllocator]] = None,
        n_vrs: int = 1,
        dummy_load=0.0,
        config: Optional[LvrmConfig] = None,
        own_both_sides: bool = False,
) -> Tuple[Machine, Lvrm]:
    """Stand LVRM up on the Figure 4.1 gateway.

    ``n_vrs`` = 1 gives one VR owning both sender subnets; 2 gives one VR
    per sender subnet (Experiments 2d/2e/3b).  ``own_both_sides`` extends
    ownership to the receiver subnets so reverse traffic (TCP ACKs, ICMP
    replies) is classified too.
    """
    machine = Machine(sim, costs=costs)
    adapter = make_socket_adapter(adapter_name, sim, costs,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter, costs=costs,
                config=config or LvrmConfig(record_latency=False))
    if allocator_factory is None:
        allocator_factory = lambda: FixedAllocation(1)
    loads = (tuple(dummy_load) if isinstance(dummy_load, (tuple, list))
             else (dummy_load,) * max(n_vrs, 1))
    if len(loads) < n_vrs:
        raise ConfigError("dummy_load tuple shorter than n_vrs")
    if n_vrs == 1:
        subnets = [Prefix.parse("10.1.0.0/16")]
        if own_both_sides:
            subnets.append(Prefix.parse("10.2.0.0/16"))
        lvrm.add_vr(VrSpec(name="vr1", subnets=tuple(subnets),
                           vr_type=vr_type, dummy_load=loads[0]),
                    allocator_factory())
    elif n_vrs == 2:
        for i, sub in enumerate(("10.1.1.0/24", "10.1.2.0/24"), start=1):
            subnets = [Prefix.parse(sub)]
            if own_both_sides:
                subnets.append(Prefix.parse(f"10.2.{i}.0/24"))
            lvrm.add_vr(VrSpec(name=f"vr{i}", subnets=tuple(subnets),
                               vr_type=vr_type, dummy_load=loads[i - 1]),
                        allocator_factory())
    else:
        raise ConfigError(f"n_vrs must be 1 or 2, got {n_vrs}")
    lvrm.start()
    return machine, lvrm


# ---------------------------------------------------------------------------
# The UDP trial primitive (Experiment 1a/2a/2b/3a/3b)
# ---------------------------------------------------------------------------

def udp_trial(mechanism: str, offered_fps: float, frame_size: int,
              profile: Profile,
              costs: CostModel = DEFAULT_COSTS,
              vr_variant: Optional[dict] = None) -> Tuple[float, float]:
    """One offered-load trial; returns ``(sent_fps, received_fps)``.

    ``vr_variant`` overrides LVRM construction knobs (affinity mode,
    allocator factory, dummy load, balancer, n_vrs, per-VR rate split).
    """
    variant = dict(vr_variant or {})
    sim = Simulator()
    testbed = Testbed(sim)
    machine = Machine(sim, costs=costs)

    if mechanism == "native":
        KernelForwarder(sim, machine, testbed, costs, record_latency=False)
    elif mechanism == "vmware":
        HypervisorForwarder(sim, machine, testbed, costs,
                            vmware_server(costs), record_latency=False)
    elif mechanism == "qemu-kvm":
        HypervisorForwarder(sim, machine, testbed, costs,
                            qemu_kvm(costs), record_latency=False)
    elif mechanism.startswith("lvrm"):
        _, vr_kind, adapter_kind = mechanism.split("-", 2)
        vr_type = VrType.CPP if vr_kind == "cpp" else VrType.CLICK
        adapter_name = {"raw": "raw-socket", "pfring": "pf-ring",
                        "pfring1.0": "pf-ring-1.0"}[adapter_kind]
        config = LvrmConfig(
            record_latency=False,
            allocation_period=variant.get("allocation_period", 1.0),
            balancer=variant.get("balancer", "jsq"),
            flow_based=variant.get("flow_based", False),
            affinity=variant.get("affinity", AffinityMode.SIBLING_FIRST),
        )
        build_lvrm_gateway(
            sim, testbed, costs=costs, vr_type=vr_type,
            adapter_name=adapter_name,
            allocator_factory=variant.get("allocator_factory"),
            n_vrs=variant.get("n_vrs", 1),
            dummy_load=variant.get("dummy_load", 0.0),
            config=config)
    else:
        raise ConfigError(f"unknown mechanism {mechanism!r}")

    # Start senders only after every initial VRI has spawned (up to
    # eight vfork()s at ~0.8 ms each); otherwise warmup frames queue
    # behind the spawns and drain into the measurement window.
    t0 = 0.012
    senders = [
        UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                  offered_fps / 2, frame_size, t_start=t0),
        UdpSender(sim, testbed.hosts["s2"], testbed.host_ip("r2"),
                  offered_fps / 2, frame_size, t_start=t0, phase=1.3e-6),
    ]
    sinks = [FrameSink(sim, testbed.hosts["r1"], record_latency=False),
             FrameSink(sim, testbed.hosts["r2"], record_latency=False)]

    # Warm up, snapshot, measure over the window only (steady state).
    sim.run(until=t0 + profile.warmup)
    sent0 = sum(s.sent for s in senders)
    recv0 = sum(k.received for k in sinks)
    sim.run(until=t0 + profile.warmup + profile.window)
    sent = sum(s.sent for s in senders) - sent0
    recv = sum(k.received for k in sinks) - recv0
    return sent / profile.window, recv / profile.window


def search_achievable(mechanism: str, frame_size: int, profile: Profile,
                      costs: CostModel = DEFAULT_COSTS,
                      vr_variant: Optional[dict] = None,
                      hi: Optional[float] = None) -> float:
    """Achievable throughput (fps) for one mechanism/frame-size point."""
    link_cap = GIGABIT / (8.0 * frame_size)
    hi = hi if hi is not None else min(SENDER_MAX_FPS * 1.02, link_cap * 1.02)
    lo = max(hi * 0.04, 5_000.0)
    result = achievable_throughput(
        lambda rate: udp_trial(mechanism, rate, frame_size, profile,
                               costs, vr_variant),
        lo=lo, hi=hi, max_probes=profile.probes)
    return result.achievable_fps
