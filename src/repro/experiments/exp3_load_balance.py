"""Experiment 3: load balancing (Figures 4.14-4.18).

3a — UDP throughput of JSQ / round-robin / random across six VRIs of a
     single VR (both VR types, 1/60 ms dummy load, 360 Kfps offered);
3b — fairness between two VRs: ``T = 2 * min(T1, T2)`` vs the ideal;
3c — FTP/TCP: frame-based vs flow-based balancing — aggregate
     throughput, max-min fairness, and Jain's index across 100 flow
     pairs (scaled by profile).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.baselines import KernelForwarder
from repro.core import FixedAllocation, LvrmConfig, VrType
from repro.experiments.common import (ExperimentResult, Profile,
                                      build_lvrm_gateway, get_profile,
                                      udp_trial)
from repro.experiments.exp2_core_alloc import DUMMY_LOAD_1_60MS
from repro.hardware import DEFAULT_COSTS, Machine
from repro.metrics import jain_index, max_min_fairness
from repro.net import Testbed
from repro.sim import Simulator
from repro.traffic import FrameSink, UdpSender
from repro.traffic.ftp import FtpWorkload
from repro.traffic.tcp import TcpParams

__all__ = ["exp3a", "exp3b", "exp3c", "run_ftp_scenario"]

BALANCERS = ("jsq", "rr", "random")


def exp3a(profile: Optional[Profile] = None,
          offered_fps: float = 360_000.0) -> ExperimentResult:
    """Figure 4.14: throughput of balancing schemes within one VR."""
    profile = profile or get_profile()
    s = profile.rate_scale
    offered = offered_fps * s
    result = ExperimentResult(
        "exp3a", "Load balancing among six VRIs of one VR",
        columns=("vr_type", "balancer", "kfps", "ideal_kfps"))
    for vr_kind, mech in (("cpp", "lvrm-cpp-pfring"),
                          ("click", "lvrm-click-pfring")):
        for scheme in BALANCERS:
            _sent, recv = udp_trial(
                mech, offered, 84, profile,
                vr_variant={"dummy_load": DUMMY_LOAD_1_60MS / s,
                            "balancer": scheme,
                            "allocator_factory": lambda: FixedAllocation(6)})
            result.add(vr_kind, scheme, recv / (1e3 * s),
                       offered_fps / 1e3)
    result.notes.append(f"rates reported at paper scale (scale={s})")
    return result


def exp3b(profile: Optional[Profile] = None,
          rate_per_vr: float = 180_000.0) -> ExperimentResult:
    """Figure 4.15: load balancing among two VRs.

    Each VR gets three VRIs and a 180 Kfps flow; the paper's fairness
    proxy is ``T = 2 * min(T1, T2)`` compared against the 360 Kfps ideal.
    """
    profile = profile or get_profile()
    s = profile.rate_scale
    rate_scaled = rate_per_vr * s
    result = ExperimentResult(
        "exp3b", "Load balancing among two VRs (T = 2*min(T1, T2))",
        columns=("vr_type", "balancer", "t_kfps", "ideal_kfps"))
    for vr_kind, vr_type in (("cpp", VrType.CPP), ("click", VrType.CLICK)):
        for scheme in BALANCERS:
            sim = Simulator()
            testbed = Testbed(sim)
            config = LvrmConfig(record_latency=False, balancer=scheme)
            build_lvrm_gateway(
                sim, testbed, vr_type=vr_type, n_vrs=2,
                allocator_factory=lambda: FixedAllocation(3),
                dummy_load=DUMMY_LOAD_1_60MS / s, config=config)
            t0 = 0.012  # after the six vfork()s
            UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                      rate_scaled, 84, t_start=t0)
            UdpSender(sim, testbed.hosts["s2"], testbed.host_ip("r2"),
                      rate_scaled, 84, t_start=t0, phase=1.3e-6)
            sinks = [FrameSink(sim, testbed.hosts["r1"], record_latency=False),
                     FrameSink(sim, testbed.hosts["r2"], record_latency=False)]
            sim.run(until=t0 + profile.warmup)
            base = [k.received for k in sinks]
            sim.run(until=t0 + profile.warmup + profile.window)
            rates = [(k.received - b) / profile.window
                     for k, b in zip(sinks, base)]
            t = 2.0 * min(rates)
            result.add(vr_kind, scheme, t / (1e3 * s),
                       2 * rate_per_vr / 1e3)
    result.notes.append(f"rates reported at paper scale (scale={s})")
    return result


def run_ftp_scenario(profile: Profile, mechanism: str, scheme: str,
                     flow_based: bool, n_sessions: int,
                     rate_bin: Optional[float] = None,
                     dummy_load: float = 0.0,
                     read_rate_spread: float = 0.5):
    """Stand up the FTP/TCP scenario and run one measurement window.

    Returns ``(goodputs_bps ndarray, sinks, sim)``; the per-flow goodputs
    cover only the post-warmup window (the paper's "crests").  Sessions
    get heterogeneous application read rates (the paper's "various flow
    and segment sizes") spread around ``app_read_total / n``.
    """
    sim = Simulator()
    testbed = Testbed(sim)
    machine = Machine(sim)
    if mechanism == "native":
        KernelForwarder(sim, machine, testbed, DEFAULT_COSTS,
                        record_latency=False)
    else:
        config = LvrmConfig(record_latency=False, balancer=scheme,
                            flow_based=flow_based)
        build_lvrm_gateway(
            sim, testbed, config=config, own_both_sides=True,
            dummy_load=dummy_load,
            allocator_factory=lambda: FixedAllocation(6))

    read_rate = profile.app_read_total / n_sessions
    params = TcpParams(app_read_rate=read_rate)
    workload = FtpWorkload(
        sim,
        pairs=[(testbed.hosts["s1"], testbed.hosts["r1"]),
               (testbed.hosts["s2"], testbed.hosts["r2"])],
        n_sessions=n_sessions, params=params, t_start=0.002,
        start_jitter=min(0.01, profile.ftp_warmup / 4),
        read_rate_spread=read_rate_spread)
    sinks = None
    if rate_bin is not None:
        # Rate series needs the receiver side; TCP owns host.handler, so
        # tap the gateway's receiver-side NIC instead.
        from repro.sim.timeline import RateCounter
        counter = RateCounter(rate_bin)
        nic = testbed.gw_nics[1]
        original = nic.transmit

        def _tap(frame):
            ok = original(frame)
            if ok and frame.size > 200:  # count data segments only
                counter.record(sim.now)
            return ok

        nic.transmit = _tap
        sinks = counter
    sim.run(until=0.002 + profile.ftp_warmup)
    workload.mark_window_start()
    sim.run(until=0.002 + profile.ftp_warmup + profile.ftp_window)
    goodputs = workload.goodputs_bps(profile.ftp_window)
    workload.stop_all()
    return goodputs, sinks, sim


def exp3c(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figures 4.16-4.18: FTP/TCP, frame- vs flow-based balancing."""
    profile = profile or get_profile()
    result = ExperimentResult(
        "exp3c", "FTP/TCP: aggregate throughput and fairness",
        columns=("mechanism", "agg_mbps", "max_min", "jain"))
    scenarios: List[Tuple[str, str, bool]] = [("native", "jsq", False)]
    scenarios += [("lvrm", s, False) for s in BALANCERS]
    scenarios += [("lvrm", s, True) for s in BALANCERS]
    for mechanism, scheme, flow_based in scenarios:
        # Unlike Experiment 4, the VRIs here carry the 1/60 ms dummy
        # load (the paper only *removes* it for Exp 4, "as TCP responds
        # to late segments").
        goodputs, _sinks, _sim = run_ftp_scenario(
            profile, mechanism, scheme, flow_based, profile.ftp_sessions,
            dummy_load=DUMMY_LOAD_1_60MS)
        label = ("native" if mechanism == "native"
                 else f"{'flow' if flow_based else 'frame'}-{scheme}")
        result.add(label, float(goodputs.sum() / 1e6),
                   max_min_fairness(goodputs), jain_index(goodputs))
    result.notes.append(
        f"{profile.ftp_sessions} FTP sessions, "
        f"{profile.ftp_window * 1e3:.0f} ms crest window")
    return result
