"""Experiment registry: map ids to figure-reproducing functions."""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import ConfigError
from repro.experiments.common import ExperimentResult, Profile, get_profile
from repro.experiments import exp1_overhead, exp2_core_alloc
from repro.experiments import exp3_load_balance, exp4_scalability
from repro.experiments import exp5_telemetry
from repro.experiments import exp6_federation

__all__ = ["EXPERIMENTS", "run_experiment"]

#: id -> (function, paper figure, one-line description)
EXPERIMENTS: Dict[str, tuple] = {
    "exp1a": (exp1_overhead.exp1a, "Fig 4.2",
              "achievable throughput in data forwarding"),
    "exp1a-cpu": (exp1_overhead.exp1a_cpu, "Fig 4.3",
                  "CPU usage in data forwarding"),
    "exp1b": (exp1_overhead.exp1b, "Fig 4.4",
              "round-trip latency in data forwarding"),
    "exp1c": (exp1_overhead.exp1c, "Fig 4.5",
              "achievable throughput with LVRM only"),
    "exp1d": (exp1_overhead.exp1d, "Fig 4.6",
              "latency with LVRM only"),
    "exp1e": (exp1_overhead.exp1e, "Fig 4.7",
              "latency of control-message passing"),
    "exp2a": (exp2_core_alloc.exp2a, "Fig 4.8",
              "throughput analysis on core affinity"),
    "exp2b": (exp2_core_alloc.exp2b, "Fig 4.9",
              "throughput vs fixed core allocation"),
    "exp2c": (exp2_core_alloc.exp2c, "Fig 4.10",
              "dynamic core allocation for one VR"),
    "exp2c-reaction": (exp2_core_alloc.exp2c_reaction, "Fig 4.11",
                       "core (de)allocation reaction times"),
    "exp2d": (exp2_core_alloc.exp2d, "Fig 4.12",
              "dynamic core allocation for two VRs"),
    "exp2e": (exp2_core_alloc.exp2e, "Fig 4.13",
              "dynamic allocation with dynamic thresholds"),
    "exp3a": (exp3_load_balance.exp3a, "Fig 4.14",
              "load balancing among VRIs of a VR"),
    "exp3b": (exp3_load_balance.exp3b, "Fig 4.15",
              "load balancing among VRs"),
    "exp3c": (exp3_load_balance.exp3c, "Fig 4.16-4.18",
              "frame- vs flow-based balancing under FTP/TCP"),
    "exp4": (exp4_scalability.exp4, "Fig 4.19-4.21",
             "scalability: rate and fairness vs flow count"),
    "exp4-ts": (exp4_scalability.exp4_timeseries, "Fig 4.22",
                "aggregate forward rate vs elapsed time"),
    "fwd-des": (exp5_telemetry.fwd_des, "(extension)",
                "frame-latency attribution on the simulated gateway"),
    "fwd-rt": (exp5_telemetry.fwd_rt, "(extension)",
               "frame-latency attribution + merged worker telemetry "
               "on real processes"),
    "fed-des": (exp6_federation.fed_des, "(extension)",
                "federation: sharded scaling + HA failover on the DES"),
    "fed-rt": (exp6_federation.fed_rt, "(extension)",
               "federation: HA failover over real worker processes"),
}


#: Default ASCII-chart axes per experiment (CLI ``--chart``):
#: exp id -> (x column, y column, group-by column or None).
CHARTS: Dict[str, tuple] = {
    "exp1a": ("frame_size", "kfps", "mechanism"),
    "exp1b": ("frame_size", "rtt_us", "mechanism"),
    "exp1c": ("frame_size", "mfps", "vr_type"),
    "exp1d": ("frame_size", "latency_us", "vr_type"),
    "exp1e": ("event_bytes", "latency_us", "load"),
    "exp2b": ("cores", "kfps", "vr_type"),
    "exp2c": ("t_rel", "cores", None),
    "exp2d": ("t_rel", "cores", "vr"),
    "exp4": ("n_flows", "agg_mbps", "mechanism"),
    "exp4-ts": ("t_bin", "mbps", "mechanism"),
}


def run_experiment(exp_id: str,
                   profile: Optional[Profile] = None) -> ExperimentResult:
    """Run one experiment by id under the given (or env-derived) profile."""
    try:
        fn, _figure, _desc = EXPERIMENTS[exp_id]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}")
    return fn(profile or get_profile())
