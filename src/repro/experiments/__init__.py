"""The Chapter 4 experiment harness: one function per paper figure.

Every experiment accepts a :class:`~repro.experiments.common.Profile`
(QUICK for tests, BENCH for the benchmark harness, FULL for paper-scale
runs) and returns an
:class:`~repro.experiments.common.ExperimentResult` whose rows mirror
the corresponding figure's series.  See DESIGN.md §4 for the index.
"""

from repro.experiments.common import (Profile, QUICK, BENCH, FULL,
                                      ExperimentResult, get_profile)
from repro.experiments.registry import EXPERIMENTS, run_experiment

__all__ = [
    "Profile",
    "QUICK",
    "BENCH",
    "FULL",
    "ExperimentResult",
    "get_profile",
    "EXPERIMENTS",
    "run_experiment",
]
