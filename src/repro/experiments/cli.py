"""``lvrm-exp``: run paper experiments from the command line.

Examples::

    lvrm-exp list
    lvrm-exp run exp1a --profile quick
    lvrm-exp run all --profile bench
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from repro.experiments.common import get_profile
from repro.experiments.registry import CHARTS, EXPERIMENTS, run_experiment

__all__ = ["main"]


def _cmd_list(_args) -> int:
    width = max(len(k) for k in EXPERIMENTS)
    for exp_id, (_fn, figure, desc) in sorted(EXPERIMENTS.items()):
        print(f"{exp_id.ljust(width)}  {figure.ljust(14)}  {desc}")
    return 0


def _cmd_calibrate(_args) -> int:
    from repro.experiments.calibration import render_report

    print(render_report())
    return 0


def _cmd_run(args) -> int:
    from repro import obs

    if args.kernel is not None:
        # Experiments build their own LvrmConfig, which resolves a None
        # kernel from REPRO_KERNEL — exporting the flag here reaches
        # every config the run constructs.
        os.environ["REPRO_KERNEL"] = args.kernel
    if args.dispatch_shards is not None:
        # Same trick: LvrmConfig resolves a None dispatch_shards from
        # REPRO_DISPATCH_SHARDS.
        os.environ["REPRO_DISPATCH_SHARDS"] = str(args.dispatch_shards)
    profile = get_profile(args.profile)
    targets = (sorted(EXPERIMENTS) if args.experiment == "all"
               else [args.experiment])
    for path in (args.trace_out, args.metrics_out, args.json):
        # Catch unwritable output paths *before* the (possibly long)
        # run, not at export time.
        if path is not None:
            directory = os.path.dirname(os.path.abspath(path)) or "."
            if not os.path.isdir(directory):
                print(f"error: output directory does not exist: "
                      f"{directory}", file=sys.stderr)
                return 2
    if args.trace_out or args.metrics_out:
        # Start from a clean slate so the exports describe this run only.
        obs.reset()
    if args.trace_out:
        obs.enable_tracing(retain=True)
    status = 0
    collected = []
    for exp_id in targets:
        t0 = time.perf_counter()
        try:
            result = run_experiment(exp_id, profile)
        except Exception as exc:  # surface, keep going on "all"
            print(f"!! {exp_id} failed: {exc}", file=sys.stderr)
            status = 1
            continue
        wall = time.perf_counter() - t0
        print(result.render())
        if args.chart and exp_id in CHARTS:
            x, y, group = CHARTS[exp_id]
            try:
                print(result.chart(x, y, group))
            except ValueError as exc:
                print(f"# (chart unavailable: {exc})")
        print(f"# profile={profile.name} wall={wall:.1f}s\n")
        payload = result.to_dict()
        payload["wall_seconds"] = round(wall, 3)
        payload["profile"] = profile.name
        collected.append(payload)
    if args.trace_out is not None:
        obs.disable_tracing()
        obs.write_chrome_trace(args.trace_out, obs.TRACER.events,
                               process_name="lvrm-exp")
        print(f"# wrote {args.trace_out} "
              f"({len(obs.TRACER.events)} trace events)")
    if args.metrics_out is not None:
        obs.write_text(args.metrics_out,
                       obs.prometheus_text(obs.default_registry()))
        print(f"# wrote {args.metrics_out}")
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(collected, fh, indent=2)
        print(f"# wrote {args.json}")
    return status


def _cmd_faults(args) -> int:
    from repro import obs
    from repro.faults import FaultSchedule
    from repro.faults.scenario import run_des_scenario, run_runtime_scenario

    try:
        schedule = FaultSchedule.load(args.fault_schedule)
    except OSError as exc:
        print(f"error: cannot read fault schedule: {exc}", file=sys.stderr)
        return 2
    if args.record_trace is not None and args.backend == "des":
        # The DES is already deterministic end to end; recording exists
        # to capture the *runtime* backend's real interleavings.
        print("error: --record-trace requires --backend runtime",
              file=sys.stderr)
        return 2
    if args.record_trace is not None and (args.dispatch_shards or 1) > 1:
        # Shard processes interleave ring ops the monitor-side tracer
        # cannot sequence; a sharded trace would be incomplete.
        print("error: --record-trace requires --dispatch-shards 1",
              file=sys.stderr)
        return 2
    if args.profile_out is not None and args.backend == "des":
        print("error: --profile-out requires --backend runtime "
              "(it profiles the real monitor and shard processes)",
              file=sys.stderr)
        return 2
    overload_opts = None
    if args.overload_opts is not None:
        try:
            if args.overload_opts.startswith("@"):
                with open(args.overload_opts[1:], encoding="utf-8") as fh:
                    overload_opts = json.load(fh)
            else:
                overload_opts = json.loads(args.overload_opts)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: bad --overload-opts: {exc}", file=sys.stderr)
            return 2
        if isinstance(overload_opts, dict) and "overload" in overload_opts:
            overload_opts = overload_opts["overload"]  # config-file shape
        # A policy pinned in the opts file must not silently fight the
        # flag; drop it when the flag is the default and they agree in
        # spirit (build_controller enforces real conflicts).
        if (isinstance(overload_opts, dict)
                and args.overload_policy == "none"
                and overload_opts.get("policy", "none") != "none"):
            args.overload_policy = overload_opts["policy"]
    if args.backend == "des":
        if args.admin_port is not None:
            print("note: --admin-port ignored on the des backend "
                  "(poll Lvrm.admin_state() instead)", file=sys.stderr)
        report = run_des_scenario(schedule, duration=args.duration,
                                  seed=args.seed,
                                  postmortem_dir=args.postmortem_dir,
                                  data_plane=args.data_plane,
                                  kernel=args.kernel,
                                  overload_policy=args.overload_policy,
                                  overload_x=args.overload_x,
                                  overload_opts=overload_opts,
                                  dispatch_shards=args.dispatch_shards)
        ok = report["flows_ok"]
    else:
        report = run_runtime_scenario(schedule, duration=args.duration,
                                      admin_port=args.admin_port,
                                      postmortem_dir=args.postmortem_dir,
                                      data_plane=args.data_plane,
                                      wait_strategy=args.wait_strategy,
                                      kernel=args.kernel,
                                      overload_policy=args.overload_policy,
                                      overload_x=args.overload_x,
                                      overload_opts=overload_opts,
                                      record_trace=args.record_trace,
                                      dispatch_shards=args.dispatch_shards,
                                      profile_out=args.profile_out)
        ok = report["resumed_ok"]
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2)
        print(f"# wrote {args.json}")
    if args.metrics_out is not None:
        obs.write_text(args.metrics_out,
                       obs.prometheus_text(obs.default_registry()))
        print(f"# wrote {args.metrics_out}")
    desc = schedule.description or args.fault_schedule
    sup = report["supervisor"]
    print(f"== faults ({args.backend}): {desc} ==")
    print(f"faults injected   {report['faults']['injected']}")
    print(f"forwarded         {report['forwarded']}")
    print(f"failovers         {sup['failovers']}")
    print(f"restarts          {sup['restarts']}")
    print(f"degraded          {sup['degraded']}")
    if args.backend == "des":
        intact = report["flows_total"] - len(report["lost_flows"])
        print(f"flows intact      {intact}/{report['flows_total']}")
    slo = report.get("slo", {})
    if slo.get("rules"):
        breaches = {name: n for name, n in slo["breaches"].items() if n}
        print(f"slo breaches      {breaches or 'none'}")
    total = report.get("spans", {}).get("total")
    if total:
        print(f"frame latency     p50={total['p50'] * 1e6:.1f}us "
              f"p99={total['p99'] * 1e6:.1f}us")
    if report.get("dispatch_shards", 1) > 1:
        print(f"dispatch shards   {report['dispatch_shards']}")
    if report.get("trace") is not None:
        print(f"trace             {report['trace']} "
              f"({report['trace_events']} events)")
    if report.get("profile") is not None:
        print(f"profile           {report['profile']} "
              f"(merged {report['profile_files']} pstats streams; "
              f"inspect with python -m pstats)")
    overload = report.get("overload", {})
    if overload.get("policy", "none") != "none":
        state = overload.get("state", {})
        shed = sum(c["shed"] for c in state.get("classes", {}).values())
        rates = {name: c["rate"]
                 for name, c in state.get("classes", {}).items()}
        print(f"overload          policy={overload['policy']} "
              f"x={overload['offered_x']:g} shed={shed} rates={rates}")
    print(f"scenario          {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_replay(args) -> int:
    from repro.replay import check_races, load_trace, replay_events

    try:
        events = load_trace(args.trace)
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    if not events:
        print("error: trace is empty", file=sys.stderr)
        return 2
    report = replay_events(events)
    hb = check_races(events, allow=tuple(args.allow or ()))
    combined = {"trace": args.trace, "replay": report, "races": hb}
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(combined, fh, indent=2)
        print(f"# wrote {args.json}")
    totals = report["replayed"]["totals"]
    sup = report["replayed"]["supervisor"]
    print(f"== replay: {args.trace} ==")
    print(f"events            {report['events']}")
    print(f"replayed          dispatched={totals['dispatched']} "
          f"drained={totals['drained']} shed={totals['shed']} "
          f"failovers={sup['failovers']} restarts={sup['restarts']} "
          f"spans={report['replayed']['spans']}")
    print(f"counters          "
          f"{'MATCH' if not report['mismatches'] else 'MISMATCH'}")
    for line in report["mismatches"][:20]:
        print(f"  != {line}")
    for line in report["anomalies"][:20]:
        print(f"  ?? {line}")
    print(f"hb races          {hb['n_races']} "
          f"({hb['n_unexplained']} unexplained)")
    for race in hb["races"][:20]:
        print(f"  !! {race['rule']}: {race['a']['name']} "
              f"(seq={race['a']['seq']}) || {race['b']['name']} "
              f"(seq={race['b']['seq']}) on {race['resource']}")
    if hb["seq_gaps"]:
        print(f"seq gaps          {hb['seq_gaps']} (trace is incomplete; "
              f"verdicts may be unreliable)")
    ok = (report["ok"] and not report["anomalies"]
          and hb["n_unexplained"] == 0)
    if args.no_races and hb["n_races"]:
        ok = False
    print(f"replay            {'OK' if ok else 'FAILED'}")
    return 0 if ok else 1


def _cmd_federation(args) -> int:
    from repro.cluster import (load_federation_config,
                               run_des_failover_scenario)

    try:
        config = load_federation_config(args.config)
    except OSError as exc:
        print(f"error: cannot read federation config: {exc}",
              file=sys.stderr)
        return 2
    if args.backend == "des":
        if args.admin_port is not None:
            print("note: --admin-port ignored on the des backend "
                  "(poll DesFederation.admin_state() instead)",
                  file=sys.stderr)
        report = run_des_failover_scenario(config)
    else:
        from repro.cluster.runtime import run_runtime_failover_scenario

        kill_at = min((f.t for f in config.faults), default=1.0)
        report = run_runtime_failover_scenario(
            duration=args.duration, kill_at=kill_at,
            n_vris=config.n_vris, n_routes=config.routes,
            admin_port=args.admin_port)
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, default=str)
        print(f"# wrote {args.json}")
    desc = config.description or args.config
    failover = report.get("failover") or {}
    print(f"== federation ({args.backend}): {desc} ==")
    if failover:
        budget = (failover.get("budget_seconds")
                  or report.get("budget_seconds", 0.0))
        print(f"failover          {failover['failover_seconds'] * 1e3:.2f}ms "
              f"(budget {budget * 1e3:.0f}ms) "
              f"{failover['member']} -> {failover['promoted']}")
    if args.backend == "des":
        throughput = report.get("throughput", {})
        if throughput:
            print(f"throughput        pre {throughput['pre_kill_kfps']}kfps "
                  f"-> post {throughput['post_failover_kfps']}kfps "
                  f"(recovered {throughput['recovered_ratio']:.0%})")
        routes = report["routes"]
        print(f"routes            {routes['announced']} announced, "
              f"{routes['present_on_standby_at_promote']} on standby at "
              f"promote, {routes['relearned_after_promotion']} re-learned")
        print(f"blackout drops    {failover.get('lost_in_blackout', 0)}")
    else:
        print(f"routes on standby {report['routes_on_standby']}")
        print(f"standby forwarded {report['standby_forwarded']}")
    print(f"bus               {report['bus']}")
    print(f"scenario          {'OK' if report['ok'] else 'FAILED'}")
    return 0 if report["ok"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="lvrm-exp",
        description="Reproduce the LVRM paper's Chapter 4 experiments.")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    sub.add_parser("calibrate",
                   help="print the cost model's derived capacities "
                        "against the paper anchors")
    report = sub.add_parser(
        "report", help="run every experiment and write a markdown report")
    report.add_argument("output", help="path of the markdown file to write")
    report.add_argument("--profile", default=None,
                        choices=["quick", "bench", "full"])
    report.add_argument("--only", nargs="*", default=None,
                        metavar="EXP", help="restrict to these experiment ids")
    run = sub.add_parser("run", help="run an experiment (or 'all')")
    run.add_argument("experiment",
                     help="experiment id (see 'list') or 'all'")
    run.add_argument("--profile", default=None,
                     choices=["quick", "bench", "full"],
                     help="scale profile (default: $REPRO_PROFILE or quick)")
    run.add_argument("--chart", action="store_true",
                     help="sketch an ASCII chart of the figure's series")
    run.add_argument("--json", metavar="PATH", default=None,
                     help="also write all results as JSON to PATH")
    run.add_argument("--trace-out", metavar="PATH", default=None,
                     help="enable event tracing and write a Chrome-trace "
                          "JSON (opens in Perfetto) to PATH")
    run.add_argument("--metrics-out", metavar="PATH", default=None,
                     help="write the run's metrics in Prometheus text "
                          "format to PATH")
    run.add_argument("--kernel", default=None,
                     choices=["scalar", "numpy", "cffi"],
                     help="burst kernel for the data-plane hot path "
                          "(default: REPRO_KERNEL env or scalar; "
                          "cffi auto-degrades to numpy without a "
                          "compiler — see docs/PERFORMANCE.md)")
    run.add_argument("--dispatch-shards", type=int, default=None,
                     metavar="N",
                     help="dispatcher shards for the monitor pipeline "
                          "(default: REPRO_DISPATCH_SHARDS env or 1; "
                          "runtime backend needs ring-impl lamport — "
                          "see docs/PERFORMANCE.md)")
    faults = sub.add_parser(
        "faults", help="run a fault-injection scenario "
                       "(see docs/RELIABILITY.md)")
    faults.add_argument("--fault-schedule", required=True, metavar="FILE",
                        help="JSON fault schedule "
                             "(e.g. examples/configs/faults_kill_vri1.json)")
    faults.add_argument("--backend", default="des",
                        choices=["des", "runtime"],
                        help="simulated gateway (des, default) or real "
                             "worker processes (runtime; kill/hang only)")
    faults.add_argument("--duration", type=float, default=None,
                        help="scenario length in seconds "
                             "(default: 6 des / 5 runtime)")
    faults.add_argument("--seed", type=int, default=2011,
                        help="DES master seed (determinism contract)")
    faults.add_argument("--json", metavar="PATH", default=None,
                        help="also write the scenario report as JSON")
    faults.add_argument("--admin-port", type=int, default=None,
                        metavar="PORT",
                        help="runtime backend: serve /metrics, /healthz, "
                             "/topology, /spans on this loopback port for "
                             "the duration of the scenario (0 = ephemeral)")
    faults.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the scenario's merged metrics in "
                             "Prometheus text format to PATH")
    faults.add_argument("--postmortem-dir", metavar="DIR", default=None,
                        help="dump a flight-recorder post-mortem file "
                             "into DIR at every failover")
    faults.add_argument("--data-plane", default="copy",
                        choices=["copy", "arena"],
                        help="frame transport: copy rings (default) or "
                             "the zero-copy shared-memory arena with "
                             "descriptor rings (docs/PERFORMANCE.md)")
    faults.add_argument("--wait-strategy", default="sleep",
                        choices=["spin", "yield", "sleep"],
                        help="runtime backend idle-wait policy for the "
                             "poll loops (latency vs idle CPU)")
    faults.add_argument("--kernel", default=None,
                        choices=["scalar", "numpy", "cffi"],
                        help="burst kernel for the data-plane hot path "
                             "(default: REPRO_KERNEL env or scalar; "
                             "cffi auto-degrades to numpy without a "
                             "compiler — see docs/PERFORMANCE.md)")
    faults.add_argument("--overload-policy", default="none",
                        choices=["none", "tail-drop", "priority-shed",
                                 "adaptive-sample"],
                        help="admission policy fronting dispatch "
                             "(default none = legacy path; see "
                             "docs/OVERLOAD.md)")
    faults.add_argument("--overload-x", type=float, default=1.0,
                        metavar="MULT",
                        help="offered-load multiplier for the overload "
                             "drill (des: scales the flow rates; "
                             "runtime: frames offered per loop turn)")
    faults.add_argument("--overload-opts", default=None, metavar="JSON",
                        help="OverloadConfig overrides as inline JSON "
                             "(e.g. '{\"band_lo\": 0.1, \"band_hi\": "
                             "0.4}') or @FILE to read a JSON file; a "
                             "top-level \"overload\" key is unwrapped, "
                             "so @examples/configs/"
                             "overload_priority.json works as-is")
    faults.add_argument("--record-trace", metavar="PATH", default=None,
                        help="runtime backend: record a sequenced replay "
                             "trace (JSONL) of the drill to PATH for "
                             "'lvrm-exp replay' (see docs/REPLAY.md; "
                             "incompatible with --dispatch-shards > 1)")
    faults.add_argument("--dispatch-shards", type=int, default=None,
                        metavar="N",
                        help="shard the monitor's dispatch pipeline "
                             "across N processes (runtime) or charge "
                             "the DES cost model's sharded variant "
                             "(des); default: REPRO_DISPATCH_SHARDS "
                             "env or 1")
    faults.add_argument("--profile-out", metavar="PATH", default=None,
                        help="runtime backend: cProfile the monitor's "
                             "driving loop and every dispatcher shard, "
                             "dump one merged pstats file to PATH "
                             "(shards also leave PATH.shardN)")
    replay = sub.add_parser(
        "replay", help="replay a recorded trace through the DES twin and "
                       "run the happens-before race checker "
                       "(see docs/REPLAY.md)")
    replay.add_argument("trace", metavar="TRACE",
                        help="JSONL trace written by "
                             "'lvrm-exp faults --record-trace'")
    replay.add_argument("--json", metavar="PATH", default=None,
                        help="also write the replay + race report as JSON")
    replay.add_argument("--allow", action="append", default=None,
                        metavar="RULE",
                        help="treat races with this classification as "
                             "explained (repeatable; e.g. "
                             "'restart-vs-reclaim')")
    replay.add_argument("--no-races", action="store_true",
                        help="fail (exit 1) on *any* race, even allowed "
                             "classifications")
    federation = sub.add_parser(
        "federation", help="run a canned multi-LVRM federation scenario "
                           "(see docs/ARCHITECTURE.md §7)")
    federation.add_argument(
        "--config", required=True, metavar="FILE",
        help="JSON federation config "
             "(e.g. examples/configs/federation_pair.json)")
    federation.add_argument(
        "--backend", default="des", choices=["des", "runtime"],
        help="bit-reproducible simulation (des, default) or real "
             "worker processes over a shared-memory control ring")
    federation.add_argument(
        "--duration", type=float, default=4.0,
        help="runtime backend: wall-clock scenario length in seconds")
    federation.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the scenario report as JSON")
    federation.add_argument(
        "--admin-port", type=int, default=None, metavar="PORT",
        help="runtime backend: serve the director's merged registry "
             "(and /cluster) on this loopback port during the scenario "
             "(0 = ephemeral)")
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except BrokenPipeError:
        # Piping into `head` etc. closes stdout early; exit cleanly.
        import os
        try:
            sys.stdout.close()
        except Exception:
            pass
        os._exit(0)


def _dispatch(args) -> int:
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "calibrate":
        return _cmd_calibrate(args)
    if args.command == "faults":
        if args.duration is None:
            args.duration = 6.0 if args.backend == "des" else 5.0
        return _cmd_faults(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "federation":
        return _cmd_federation(args)
    if args.command == "report":
        from repro.experiments.report import generate_report

        failures = generate_report(args.output, get_profile(args.profile),
                                   exp_ids=args.only)
        print(f"wrote {args.output}"
              + (f" ({failures} experiments failed)" if failures else ""))
        return 1 if failures else 0
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
