"""Experiment 1: performance overhead of LVRM (Figures 4.2-4.7).

1a — achievable throughput vs frame size for native Linux forwarding,
     three LVRM variants, and two general-purpose hypervisors; plus the
     CPU-usage breakdown (the thesis' second "Figure 4.3").
1b — round-trip ping latency for the same mechanisms.
1c — LVRM-only throughput with the main-memory socket adapter.
1d — LVRM-only latency with the main-memory socket adapter.
1e — inter-VRI control-message latency, no-load vs full-load.
"""

from __future__ import annotations

from typing import Optional

from repro.core import FixedAllocation, Lvrm, LvrmConfig, VrSpec, VrType, make_socket_adapter
from repro.baselines import (HypervisorForwarder, KernelForwarder, qemu_kvm,
                             vmware_server)
from repro.experiments.common import (ExperimentResult, MECHANISMS, Profile,
                                      SENDER_MAX_FPS, build_lvrm_gateway,
                                      get_profile, search_achievable)
from repro.hardware import DEFAULT_COSTS, Machine
from repro.ipc.messages import ControlEvent, KIND_USER
from repro.net import Testbed
from repro.routing.prefix import Prefix
from repro.sim import Simulator
from repro.sim.timeline import Timeline
from repro.traffic import EchoResponder, Pinger, UdpSender
from repro.traffic.trace import synthetic_trace

__all__ = ["exp1a", "exp1a_cpu", "exp1b", "exp1c", "exp1d", "exp1e"]


def exp1a(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figure 4.2: achievable throughput in data forwarding."""
    profile = profile or get_profile()
    result = ExperimentResult(
        "exp1a", "Achievable throughput in data forwarding",
        columns=("mechanism", "frame_size", "kfps", "mbps"))
    for mechanism in MECHANISMS:
        for size in profile.frame_sizes:
            fps = search_achievable(mechanism, size, profile)
            result.add(mechanism, size, fps / 1e3, fps * size * 8 / 1e6)
    result.notes.append(
        f"sender ceiling {SENDER_MAX_FPS/1e3:.0f} Kfps aggregate (84 B)")
    return result


def exp1a_cpu(profile: Optional[Profile] = None,
              offered_fps: float = 220_000.0,
              frame_size: int = 84) -> ExperimentResult:
    """Figure 4.3: per-core CPU usage (us/sy/si) while forwarding.

    Run each mechanism at a fixed sub-saturation load and read the
    forwarding core's busy split.  A polling LVRM burns its whole core;
    the idle remainder is attributed to the socket adapter's poll class
    (user space for PF_RING, system for the raw socket's ``recvfrom``),
    matching the paper's `top` observations.
    """
    profile = profile or get_profile()
    result = ExperimentResult(
        "exp1a-cpu", "CPU usage in data forwarding (forwarding core)",
        columns=("mechanism", "us", "sy", "si", "polling"))
    window = profile.window

    for mechanism in ("native", "lvrm-cpp-raw", "lvrm-cpp-pfring"):
        sim = Simulator()
        testbed = Testbed(sim)
        machine = Machine(sim)
        poll_class = None
        if mechanism == "native":
            KernelForwarder(sim, machine, testbed, DEFAULT_COSTS,
                            record_latency=False)
        else:
            adapter_name = ("raw-socket" if mechanism.endswith("raw")
                            else "pf-ring")
            poll_class = "sy" if adapter_name == "raw-socket" else "us"
            machine, _ = _lvrm_on(sim, testbed, adapter_name, machine)
        t0 = 0.002
        for host, dst in (("s1", "r1"), ("s2", "r2")):
            UdpSender(sim, testbed.hosts[host], testbed.host_ip(dst),
                      offered_fps / 2, frame_size, t_start=t0)
        sim.run(until=t0 + profile.warmup)
        base = {c: dict(core.busy) for c, core in
                zip(range(8), machine.cores)}
        sim.run(until=t0 + profile.warmup + window)
        # The forwarding core is core 0 for every mechanism here.
        core = machine.cores[0]
        usage = {cls: (core.busy[cls] - base[0][cls]) / window
                 for cls in ("us", "sy", "si")}
        polling = 0.0
        if poll_class is not None:
            # Busy-poll burns the rest of the core.
            polling = max(0.0, 1.0 - sum(usage.values()))
            usage[poll_class] += polling
        result.add(mechanism, usage["us"], usage["sy"], usage["si"], polling)
    result.notes.append(
        "polling = busy-wait share folded into the adapter's CPU class")
    return result


def _lvrm_on(sim, testbed, adapter_name, machine):
    adapter = make_socket_adapter(adapter_name, sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(record_latency=False))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(1))
    lvrm.start()
    return machine, lvrm


def exp1b(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figure 4.4: round-trip latency in data forwarding (ping)."""
    profile = profile or get_profile()
    result = ExperimentResult(
        "exp1b", "Round-trip latency in data forwarding",
        columns=("mechanism", "frame_size", "rtt_us"))
    for mechanism in MECHANISMS:
        for size in profile.frame_sizes:
            sim = Simulator()
            testbed = Testbed(sim)
            machine = Machine(sim)
            if mechanism == "native":
                KernelForwarder(sim, machine, testbed, DEFAULT_COSTS,
                                record_latency=False)
            elif mechanism == "vmware":
                HypervisorForwarder(sim, machine, testbed, DEFAULT_COSTS,
                                    vmware_server(DEFAULT_COSTS),
                                    record_latency=False)
            elif mechanism == "qemu-kvm":
                HypervisorForwarder(sim, machine, testbed, DEFAULT_COSTS,
                                    qemu_kvm(DEFAULT_COSTS),
                                    record_latency=False)
            else:
                vr_type = (VrType.CLICK if "click" in mechanism
                           else VrType.CPP)
                adapter = ("raw-socket" if mechanism.endswith("raw")
                           else "pf-ring")
                build_lvrm_gateway(sim, testbed, vr_type=vr_type,
                                   adapter_name=adapter,
                                   own_both_sides=True)
            EchoResponder(sim, testbed.hosts["r1"])
            pinger = Pinger(sim, testbed.hosts["s1"],
                            testbed.host_ip("r1"),
                            count=profile.ping_count, frame_size=size,
                            interval=150e-6, t_start=0.002)
            sim.run(until=0.002 + profile.ping_count * 0.001 + 0.05)
            result.add(mechanism, size, pinger.mean_rtt() * 1e6)
    return result


def _lvrm_memory_run(profile: Profile, vr_type: VrType, frame_size: int,
                     record_latency: bool, rate_fps=None,
                     n_frames: Optional[int] = None):
    """Shared Exp 1c/1d body: stream a trace through LVRM, time it."""
    sim = Simulator()
    machine = Machine(sim)
    adapter = make_socket_adapter(
        "memory", sim, DEFAULT_COSTS,
        trace=synthetic_trace(n_frames or profile.trace_frames, frame_size),
        trace_rate_fps=rate_fps)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(record_latency=record_latency))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                       vr_type=vr_type), FixedAllocation(1))
    lvrm.start()
    done_at = Timeline("done")
    lvrm.done.add_callback(lambda _e: done_at.record(sim.now, 1.0))
    sim.run(until=3600.0)
    if len(done_at) != 1:
        raise RuntimeError("memory trace did not drain")
    return lvrm, done_at.times[0]


def exp1c(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figure 4.5: maximum achievable throughput with LVRM only."""
    profile = profile or get_profile()
    result = ExperimentResult(
        "exp1c", "Achievable throughput with LVRM only (memory adapter)",
        columns=("vr_type", "frame_size", "mfps", "gbps"))
    for vr_type in (VrType.CPP, VrType.CLICK):
        for size in profile.frame_sizes:
            lvrm, _t_done = _lvrm_memory_run(profile, vr_type, size,
                                             record_latency=True)
            # Steady-state rate: first-to-last forwarding span, so the
            # one-off VRI spawn (~0.8 ms of vfork) does not dilute it.
            times = lvrm.stats.latency.times
            span = times[-1] - times[0]
            fps = (lvrm.stats.forwarded - 1) / span
            result.add(vr_type.value, size, fps / 1e6, fps * size * 8 / 1e9)
    return result


def exp1d(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figure 4.6: round-trip latency with LVRM only.

    The trace is replayed at ~70 % of the measured Exp-1c rate so the
    sample captures the pipeline's own latency rather than the backlog
    of a deliberately saturated input (the paper's 15/25-35 us numbers
    are clearly queue-free).
    """
    profile = profile or get_profile()
    result = ExperimentResult(
        "exp1d", "Per-frame latency with LVRM only (memory adapter)",
        columns=("vr_type", "frame_size", "latency_us"))
    probe_frames = max(2000, profile.trace_frames // 10)
    for vr_type in (VrType.CPP, VrType.CLICK):
        for size in profile.frame_sizes:
            # Measure the saturation rate with a short unpaced probe...
            lvrm, t_done = _lvrm_memory_run(profile, vr_type, size,
                                            record_latency=False,
                                            n_frames=probe_frames)
            rate = lvrm.stats.forwarded / t_done
            # ...then replay paced below it and record latencies.
            lvrm, _ = _lvrm_memory_run(profile, vr_type, size,
                                       record_latency=True,
                                       rate_fps=0.7 * rate,
                                       n_frames=probe_frames)
            result.add(vr_type.value, size, lvrm.stats.latency.mean() * 1e6)
    return result


def exp1e(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figure 4.7: latency of control-message passing between two VRIs."""
    profile = profile or get_profile()
    result = ExperimentResult(
        "exp1e", "Control-event latency between VRIs",
        columns=("load", "event_bytes", "latency_us"))
    for load in ("no-load", "full-load"):
        for size in (64, 256, 512, 1024):
            sim = Simulator()
            testbed = Testbed(sim)
            _machine, lvrm = build_lvrm_gateway(
                sim, testbed,
                allocator_factory=lambda: FixedAllocation(2))
            if load == "full-load":
                for host, dst in (("s1", "r1"), ("s2", "r2")):
                    UdpSender(sim, testbed.hosts[host],
                              testbed.host_ip(dst), SENDER_MAX_FPS / 2,
                              84, t_start=0.001)
            latencies = Timeline("ctrl-latency")

            def _measure_when_ready():
                # Wait for both VRIs to exist (spawned at LVRM start).
                while len(lvrm.all_vris()) < 2:
                    yield sim.timeout(1e-4)
                src, dst = lvrm.all_vris()[:2]
                dst.control_handler = (
                    lambda ev, _vri: latencies.record(
                        sim.now, sim.now - ev.t_sent))
                yield sim.timeout(profile.warmup)
                for _ in range(profile.ctrl_events):
                    event = ControlEvent(KIND_USER, src.vri_id, dst.vri_id,
                                         bytes(size), t_sent=sim.now)
                    yield from src.send_control(event)
                    yield sim.timeout(250e-6)

            sim.process(_measure_when_ready())
            sim.run(until=0.01 + profile.warmup
                    + profile.ctrl_events * 300e-6)
            if len(latencies) < profile.ctrl_events * 0.9:
                raise RuntimeError(
                    f"control events lost: {len(latencies)}")
            result.add(load, size, latencies.mean() * 1e6)
    return result
