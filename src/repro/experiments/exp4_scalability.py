"""Experiment 4: scalability (Figures 4.19-4.22).

TCP congestion control against LVRM at scale: aggregate forward rate,
max-min fairness and Jain's index versus the number of FTP flow pairs,
plus the aggregate-rate-vs-time series at the largest flow count.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, Profile, get_profile
from repro.experiments.exp3_load_balance import run_ftp_scenario
from repro.metrics import jain_index, max_min_fairness

__all__ = ["exp4", "exp4_timeseries", "EXP4_MECHANISMS"]

EXP4_MECHANISMS = (
    ("native", "jsq", False),
    ("lvrm-frame", "jsq", False),
    ("lvrm-flow", "jsq", True),
)


def exp4(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figures 4.19-4.21: rate and fairness vs number of flows."""
    profile = profile or get_profile()
    result = ExperimentResult(
        "exp4", "Scalability: TCP flows through LVRM",
        columns=("mechanism", "n_flows", "agg_mbps", "max_min", "jain"))
    for label, scheme, flow_based in EXP4_MECHANISMS:
        mechanism = "native" if label == "native" else "lvrm"
        for n_flows in profile.exp4_flows:
            # Near-homogeneous bulk GETs: the paper's Exp 4 fairness
            # indexes (max-min > 0.8, Jain > 0.99) imply far less
            # client-side variance than Exp 3c's mixed flows.
            goodputs, _s, _sim = run_ftp_scenario(
                profile, mechanism, scheme, flow_based, n_flows,
                read_rate_spread=0.15)
            result.add(label, n_flows, float(goodputs.sum() / 1e6),
                       max_min_fairness(goodputs), jain_index(goodputs))
    return result


def exp4_timeseries(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figure 4.22: aggregate forward rate vs elapsed time.

    Taps the gateway's receiver-side NIC and bins forwarded data
    segments over time at the largest flow count.
    """
    profile = profile or get_profile()
    n_flows = profile.exp4_flows[-1]
    bin_width = max(profile.ftp_window / 12, 0.02)
    result = ExperimentResult(
        "exp4-ts", f"Aggregate forward rate vs time ({n_flows} flows)",
        columns=("mechanism", "t_bin", "mbps"))
    for label, scheme, flow_based in EXP4_MECHANISMS:
        mechanism = "native" if label == "native" else "lvrm"
        goodputs, counter, _sim = run_ftp_scenario(
            profile, mechanism, scheme, flow_based, n_flows,
            rate_bin=bin_width, read_rate_spread=0.15)
        if counter is None:
            raise RuntimeError("rate counter missing")
        rates = counter.rates() * 1538 * 8 / 1e6  # data frames -> Mbit/s
        for t, mbps in zip(counter.bin_centers(), rates):
            result.add(label, float(t), float(mbps))
    return result
