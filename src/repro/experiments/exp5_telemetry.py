"""Telemetry-plane trials (this repo's observability extension).

Not a paper figure: these two experiments exist to demonstrate — and let
CI assert — the convergence property of docs/OBSERVABILITY.md.  The same
forwarding workload runs on either backend with frame-latency spans
armed, and both expose the *same metric families*:

* ``fwd-des`` — the simulated gateway, spans sim-time exact (every
  frame is sampled, ``span_sample_every=1``);
* ``fwd-rt`` — real worker processes, spans wall-time 1-in-8 sampled
  via ring-record probes, worker registries riding the control ring as
  chunked ``KIND_STATS`` snapshots merged under ``vri_id`` labels.

Each result is one row per span phase with the p50/p95/p99 latency
attribution (µs), plus notes carrying the forwarding ledger and — on the
runtime — which ``vri_id`` series landed through the stats channel.
Run with ``--metrics-out`` to get the merged registry in Prometheus
text format.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.experiments.common import ExperimentResult, Profile
from repro.obs.registry import default_registry
from repro.obs.spans import PHASES

__all__ = ["fwd_des", "fwd_rt"]

#: Phases reported, in pipeline order (``total`` last).
_REPORT_PHASES = PHASES + ("total",)


def _span_rows(result: ExperimentResult, backend: str,
               percentiles: Dict[str, Dict[str, float]]) -> None:
    for phase in _REPORT_PHASES:
        pcts = percentiles.get(phase, {})
        result.add(backend, phase,
                   pcts.get("p50", float("nan")) * 1e6,
                   pcts.get("p95", float("nan")) * 1e6,
                   pcts.get("p99", float("nan")) * 1e6)


def fwd_des(profile: Profile) -> ExperimentResult:
    """Forwarding trial on the DES with exact frame-latency spans."""
    from repro.core import LvrmConfig
    from repro.experiments.common import build_lvrm_gateway
    from repro.net import Testbed
    from repro.sim import Simulator
    from repro.traffic import FrameSink, UdpSender

    sim = Simulator()
    testbed = Testbed(sim)
    config = LvrmConfig(record_latency=False, record_spans=True,
                        span_sample_every=1)
    _machine, lvrm = build_lvrm_gateway(sim, testbed, config=config)

    duration = 0.012 + profile.warmup + profile.window
    senders = [
        UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                  40_000.0, t_start=0.012, t_stop=duration),
        UdpSender(sim, testbed.hosts["s2"], testbed.host_ip("r2"),
                  40_000.0, t_start=0.012, phase=1.3e-6, t_stop=duration),
    ]
    sinks = [FrameSink(sim, testbed.hosts["r1"], record_latency=False),
             FrameSink(sim, testbed.hosts["r2"], record_latency=False)]
    sim.run(until=duration + 0.01)

    result = ExperimentResult(
        exp_id="fwd-des",
        title="frame-latency attribution, simulated gateway "
              "(sim-time, every frame sampled)",
        columns=("backend", "phase", "p50_us", "p95_us", "p99_us"))
    _span_rows(result, "des", lvrm.spans.percentiles())
    sent = sum(s.sent for s in senders)
    received = sum(k.received for k in sinks)
    result.notes.append(
        f"sent={sent} dispatched={lvrm.stats.dispatched} "
        f"forwarded={lvrm.stats.forwarded} received={received}")
    result.notes.append(
        f"spans recorded={len(lvrm.spans.recent)} (sample_every=1)")
    return result


def fwd_rt(profile: Profile) -> ExperimentResult:
    """Forwarding trial on real workers with the telemetry plane armed."""
    from repro.net.addresses import ip_to_int
    from repro.net.packet import build_udp_frame
    from repro.runtime import RuntimeLvrm

    frame = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                            ip_to_int("10.2.1.2"), 1, 2, b"telemetry")
    stats_interval = 0.08
    duration = max(0.6, profile.window * 12)
    lvrm = RuntimeLvrm(n_vris=2, heartbeat_interval=0.02,
                       stats_interval=stats_interval, span_sample_every=8)
    dispatched = drained = 0
    try:
        deadline = time.monotonic() + duration
        while time.monotonic() < deadline:
            for _ in range(32):
                if lvrm.dispatch(frame):
                    dispatched += 1
            drained += len(lvrm.drain())
            lvrm.pump_control()
            time.sleep(200e-6)
        # Let the final snapshots land: a few stats intervals of settle.
        settle = time.monotonic() + 4 * stats_interval
        while time.monotonic() < settle:
            drained += len(lvrm.drain())
            lvrm.pump_control()
            time.sleep(1e-3)
        reg = default_registry()
        merged_ids: List[str] = sorted(
            dict(inst.labels).get("vri_id", "")
            for inst in reg.find("vri_forwarded_total")
            if "vri_id" in dict(inst.labels))
        percentiles = lvrm.spans.percentiles()
        n_spans = len(lvrm.spans.recent)
    finally:
        lvrm.stop()

    result = ExperimentResult(
        exp_id="fwd-rt",
        title="frame-latency attribution, real workers "
              "(wall-time, 1-in-8 sampled + merged worker registries)",
        columns=("backend", "phase", "p50_us", "p95_us", "p99_us"))
    _span_rows(result, "runtime", percentiles)
    result.notes.append(f"dispatched={dispatched} forwarded={drained}")
    result.notes.append(
        f"worker series merged via KIND_STATS for vri_id={merged_ids} "
        f"(see --metrics-out)")
    result.notes.append(f"spans recorded={n_spans} (sample_every=8)")
    if not merged_ids:
        result.notes.append(
            "WARNING: no vri_id-labeled series arrived — stats channel "
            "did not complete a snapshot in time")
    return result
