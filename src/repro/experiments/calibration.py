"""Analytic calibration report.

Derives, in closed form from the :class:`~repro.hardware.costs.CostModel`,
the capacity of every pipeline stage the experiments exercise — and
states the paper anchor each figure must honour.  Two uses:

* ``lvrm-exp calibrate`` prints the audit table, so anyone adjusting a
  cost immediately sees which anchors move;
* the tests cross-check the closed forms against *simulated* capacities
  (the DES must agree with its own arithmetic; disagreement means a
  bookkeeping bug in the pipeline, which is exactly how the per-frame
  cost merging was validated).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hardware.costs import CostModel, DEFAULT_COSTS

__all__ = ["StageCapacity", "lvrm_stage_cost", "vri_stage_cost",
           "calibration_report", "ANCHORS"]

#: The measured anchors the paper's text states (DESIGN.md §5):
#: name -> (target, tolerance as a fraction, unit).
ANCHORS = {
    "lvrm-only C++ @84B": (3.7e6, 0.35, "fps"),
    "lvrm-only C++ @1538B": (922e3, 0.15, "fps"),
    "native input ceiling": (448e3, 0.05, "fps"),
    "raw-socket vs pf-ring @84B": (1.5, 0.2, "ratio"),
    "alloc reaction": (900e-6, 0.15, "s"),
    "dealloc reaction": (700e-6, 0.15, "s"),
}


@dataclass(frozen=True)
class StageCapacity:
    """One pipeline stage's closed-form capacity."""

    stage: str
    per_frame_seconds: float
    anchor: str = ""

    @property
    def fps(self) -> float:
        return 1.0 / self.per_frame_seconds


def lvrm_stage_cost(costs: CostModel, frame_size: int, adapter: str,
                    n_vris: int = 1, cross_socket: bool = False,
                    flow_based: bool = False) -> float:
    """Per-frame cost of the LVRM process: rx + dispatch + drain + tx.

    Mirrors :meth:`Lvrm._capture_one` + :meth:`Lvrm._transmit_one`
    exactly; the tests enforce that the two never drift apart.
    """
    if adapter == "pf-ring":
        rx, tx = costs.pfring_rx, costs.pfring_tx
    elif adapter == "pf-ring-1.0":
        rx = costs.pfring_rx
        tx = costs.rawsock_tx + costs.rawsock_per_byte * frame_size
    elif adapter == "raw-socket":
        rx = costs.rawsock_rx + costs.rawsock_per_byte * frame_size
        tx = costs.rawsock_tx + costs.rawsock_per_byte * frame_size
    elif adapter == "memory":
        rx = costs.memory_rx + costs.memory_rx_per_byte * frame_size
        tx = costs.discard_tx
    else:
        raise ValueError(f"unknown adapter {adapter!r}")
    balance = costs.balance_fixed + costs.balance_jsq_per_vri * n_vris
    if flow_based:
        balance += costs.balance_flow_lookup
    ipc = 2 * costs.ipc_data_cost(frame_size, cross_socket)
    return rx + costs.classify_cost + balance + ipc + tx


def vri_stage_cost(costs: CostModel, frame_size: int, vr_type: str,
                   dummy_load: float = 0.0,
                   cross_socket: bool = False,
                   click_elements: int = 8) -> float:
    """Per-frame cost of one VRI: pop + process + push."""
    if vr_type == "cpp":
        processing = costs.cpp_vr_cost
    elif vr_type == "click":
        processing = click_elements * costs.click_element_cost
    else:
        raise ValueError(f"unknown VR type {vr_type!r}")
    ipc = 2 * costs.ipc_data_cost(frame_size, cross_socket)
    return ipc + processing + dummy_load


def calibration_report(costs: CostModel = DEFAULT_COSTS) -> List[StageCapacity]:
    """Every derived capacity with its paper anchor."""
    rows = [
        StageCapacity("LVRM stage, memory adapter, 84 B",
                      lvrm_stage_cost(costs, 84, "memory"),
                      "3.7 Mfps (Exp 1c)"),
        StageCapacity("LVRM stage, memory adapter, 1538 B",
                      lvrm_stage_cost(costs, 1538, "memory"),
                      "922 Kfps / 11 Gbps (Exp 1c)"),
        StageCapacity("LVRM stage, PF_RING, 84 B",
                      lvrm_stage_cost(costs, 84, "pf-ring"),
                      ">= 448 Kfps so LVRM ~ native (Exp 1a)"),
        StageCapacity("LVRM stage, raw socket, 84 B",
                      lvrm_stage_cost(costs, 84, "raw-socket"),
                      "~1/1.5 of PF_RING (Exp 1a)"),
        StageCapacity("VRI stage, C++ VR, 84 B",
                      vri_stage_cost(costs, 84, "cpp"),
                      "never the bottleneck without dummy load"),
        StageCapacity("VRI stage, Click VR, 84 B",
                      vri_stage_cost(costs, 84, "click"),
                      "the Click bottleneck of Exp 1c/2a"),
        StageCapacity("VRI stage, C++ + 1/60 ms dummy, 84 B",
                      vri_stage_cost(costs, 84, "cpp",
                                     dummy_load=1 / 60e3),
                      "~60 Kfps per core (Exp 2b-3b)"),
        StageCapacity("kernel forward, 84 B",
                      costs.kernel_forward_fixed
                      + costs.kernel_forward_per_byte * 84,
                      "above the 448 Kfps sender ceiling (Exp 1a)"),
        StageCapacity("sender host frame generation",
                      costs.sender_per_frame,
                      "224 Kfps per host -> 448 Kfps ceiling"),
    ]
    return rows


def render_report(costs: CostModel = DEFAULT_COSTS) -> str:
    lines = ["== calibration: derived stage capacities =="]
    lines.append(f"{'stage':<44} {'us/frame':>9} {'kfps':>9}  anchor")
    for row in calibration_report(costs):
        lines.append(f"{row.stage:<44} {row.per_frame_seconds * 1e6:>9.3f} "
                     f"{row.fps / 1e3:>9.1f}  {row.anchor}")
    lines.append("")
    lines.append("== paper anchors (tolerance) ==")
    for name, (target, tol, unit) in ANCHORS.items():
        lines.append(f"{name:<34} {target:>12g} {unit}  (+/- {tol:.0%})")
    return "\n".join(lines)
