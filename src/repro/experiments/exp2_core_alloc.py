"""Experiment 2: core allocation (Figures 4.8-4.13).

2a — throughput vs core-affinity mode (sibling / non-sibling / default /
     same) for both VR types;
2b — throughput vs a *fixed* number of allocated cores, CPU-bound VRIs;
2c — dynamic core allocation tracking a rate staircase, plus the
     allocation/deallocation reaction times;
2d — dynamic allocation with two VRs on staggered ramps;
2e — dynamic allocation with *dynamic thresholds* for VRs whose service
     rates differ 1:2.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core import (DynamicDynamicThresholds, DynamicFixedThresholds,
                        FixedAllocation, LvrmConfig)
from repro.experiments.common import (ExperimentResult, Profile,
                                      build_lvrm_gateway, get_profile,
                                      search_achievable, udp_trial)
from repro.hardware import AffinityMode
from repro.net import Testbed
from repro.sim import Simulator
from repro.traffic import RampSender, step_ramp

__all__ = ["exp2a", "exp2b", "exp2c", "exp2c_reaction", "exp2d", "exp2e",
           "DUMMY_LOAD_1_60MS"]

#: The paper's dummy processing load: 1/60 ms per frame, making one VRI
#: saturate at ~60 Kfps.
DUMMY_LOAD_1_60MS = 1.0 / 60.0 * 1e-3


def exp2a(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figure 4.8: throughput analysis on core affinity."""
    profile = profile or get_profile()
    result = ExperimentResult(
        "exp2a", "Throughput vs core affinity (single VRI, 84 B)",
        columns=("vr_type", "affinity", "kfps"))
    modes = (AffinityMode.SIBLING, AffinityMode.NON_SIBLING,
             AffinityMode.DEFAULT, AffinityMode.SAME)
    for vr_kind, mech in (("cpp", "lvrm-cpp-pfring"),
                          ("click", "lvrm-click-pfring")):
        for mode in modes:
            fps = search_achievable(
                mech, 84, profile,
                vr_variant={"affinity": mode,
                            "allocator_factory": lambda: FixedAllocation(1)})
            result.add(vr_kind, mode.value, fps / 1e3)
    return result


def exp2b(profile: Optional[Profile] = None,
          offered_fps: float = 360_000.0) -> ExperimentResult:
    """Figure 4.9: throughput vs number of fixed-allocated cores.

    VRIs carry the 1/60 ms dummy load, so the ideal throughput is
    60c Kfps; past the 7 available cores, VRIs double up and contention
    drops the curve.  Rates/loads co-scale with ``profile.rate_scale``.
    """
    profile = profile or get_profile()
    s = profile.rate_scale
    offered = offered_fps * s
    result = ExperimentResult(
        "exp2b", "Throughput vs fixed core count (dummy load 1/60 ms)",
        columns=("vr_type", "cores", "kfps", "ideal_kfps"))
    for vr_kind, mech in (("cpp", "lvrm-cpp-pfring"),
                          ("click", "lvrm-click-pfring")):
        for cores in range(1, 9):
            # Round-robin dispatch: with a fixed allocation the paper's
            # past-capacity contention (instances > physical cores) must
            # show up as per-instance overload; JSQ would adaptively
            # route around the doubled-up instances and mask it.
            _sent, recv = udp_trial(
                mech, offered, 84, profile,
                vr_variant={"dummy_load": DUMMY_LOAD_1_60MS / s,
                            "balancer": "rr",
                            "allocator_factory":
                                lambda c=cores: FixedAllocation(c)})
            ideal = min(offered, cores * 60_000.0 * s)
            result.add(vr_kind, cores, recv / (1e3 * s),
                       ideal / (1e3 * s))
    result.notes.append(f"rates reported at paper scale (scale={s})")
    result.notes.append("round-robin dispatch (see docstring)")
    return result


def _run_ramp(profile: Profile, n_vrs: int, allocator_factory,
              peak_each: float, step_each: float, dummy_loads: Tuple[float, ...],
              stagger: float = 0.0):
    """Shared 2c/2d/2e body: ramps in, staircases out.

    Rates and dummy loads arrive *pre-scaled* by the caller.
    """
    sim = Simulator()
    testbed = Testbed(sim)
    config = LvrmConfig(record_latency=False,
                        allocation_period=profile.allocation_period)
    _machine, lvrm = build_lvrm_gateway(
        sim, testbed, n_vrs=n_vrs, allocator_factory=allocator_factory,
        config=config,
        dummy_load=(dummy_loads if len(dummy_loads) > 1 else dummy_loads[0]))

    t0 = 0.01
    schedules = []
    senders = []
    for i, (host, dst) in enumerate((("s1", "r1"), ("s2", "r2"))[:max(n_vrs, 1)]):
        start = t0 + (stagger if i == 1 else 0.0)
        schedule = step_ramp(peak_each, step_each, profile.ramp_step,
                             t_start=start)
        schedules.append(schedule)
        senders.append(RampSender(sim, testbed.hosts[host],
                                  testbed.host_ip(dst), schedule,
                                  frame_size=84, phase=1.1e-6 * i))
    if n_vrs == 1 and len(senders) == 1:
        # Single VR: both hosts feed it; add the second half-ramp.
        schedule = step_ramp(peak_each, step_each, profile.ramp_step,
                             t_start=t0)
        schedules.append(schedule)
        senders.append(RampSender(sim, testbed.hosts["s2"],
                                  testbed.host_ip("r2"), schedule,
                                  frame_size=84, phase=2.3e-6))
    end = max(s[-1][0] for s in schedules) + 4 * profile.allocation_period
    sim.run(until=end)
    return sim, lvrm, schedules, t0


def exp2c(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figure 4.10: cores allocated vs the offered-rate staircase.

    Aggregate rate steps 60 -> 360 -> 60 Kfps; with the 1/60 ms dummy
    load and 60 Kfps thresholds the expected allocation is
    ``ceil(rate / 60 Kfps)`` cores, tracked with ~1-period lag.
    """
    profile = profile or get_profile()
    s = profile.rate_scale
    sim, lvrm, schedules, t0 = _run_ramp(
        profile, n_vrs=1,
        allocator_factory=lambda: DynamicFixedThresholds(60_000.0 * s),
        peak_each=180_000.0 * s, step_each=30_000.0 * s,
        dummy_loads=(DUMMY_LOAD_1_60MS / s,))
    result = ExperimentResult(
        "exp2c", "Dynamic core allocation for one VR",
        columns=("t_rel", "offered_kfps", "cores"))
    series = lvrm.vr_monitor.entries["vr1"].cores_series
    # Sample at the midpoint of each step (allocation has settled).
    for idx, (t_step, rate_each) in enumerate(schedules[0]):
        mid = t_step + 0.75 * profile.ramp_step
        if mid > sim.now:
            break
        offered = sum(sched.rate_at(mid)
                      for sched in (_Sched(sch) for sch in schedules))
        result.add(round(mid - t0, 6), offered / (1e3 * s),
                   series.value_at(mid))
    result.notes.append(f"rates reported at paper scale (scale={s})")
    return result


class _Sched:
    """Rate lookup over a raw schedule list (senders may have ended)."""

    def __init__(self, schedule):
        self.schedule = schedule

    def rate_at(self, t: float) -> float:
        rate = 0.0
        for start, r in self.schedule:
            if t >= start:
                rate = r
            else:
                break
        return rate


def exp2c_reaction(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figure 4.11: allocation/deallocation reaction times."""
    profile = profile or get_profile()
    s = profile.rate_scale
    _sim, lvrm, _schedules, _t0 = _run_ramp(
        profile, n_vrs=1,
        allocator_factory=lambda: DynamicFixedThresholds(60_000.0 * s),
        peak_each=180_000.0 * s, step_each=30_000.0 * s,
        dummy_loads=(DUMMY_LOAD_1_60MS / s,))
    vm = lvrm.vr_monitor
    result = ExperimentResult(
        "exp2c-reaction", "Core (de)allocation reaction times",
        columns=("kind", "count", "mean_us", "max_us"))
    for kind, series in (("allocate", vm.alloc_latency),
                         ("deallocate", vm.dealloc_latency)):
        if len(series) == 0:
            raise RuntimeError(f"no {kind} events recorded")
        result.add(kind, len(series), series.mean() * 1e6,
                   series.max() * 1e6)
    return result


def exp2d(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figure 4.12: dynamic allocation, two VRs, staggered ramps."""
    profile = profile or get_profile()
    s = profile.rate_scale
    stagger = 2 * profile.ramp_step
    sim, lvrm, schedules, t0 = _run_ramp(
        profile, n_vrs=2,
        allocator_factory=lambda: DynamicFixedThresholds(60_000.0 * s),
        peak_each=180_000.0 * s, step_each=30_000.0 * s,
        dummy_loads=(DUMMY_LOAD_1_60MS / s,), stagger=stagger)
    result = ExperimentResult(
        "exp2d", "Dynamic core allocation with two VRs",
        columns=("t_rel", "vr", "offered_kfps", "cores"))
    for vr_idx, name in enumerate(("vr1", "vr2")):
        series = lvrm.vr_monitor.entries[name].cores_series
        sched = _Sched(schedules[vr_idx])
        for t_step, _rate in schedules[vr_idx]:
            mid = t_step + 0.75 * profile.ramp_step
            if mid > sim.now:
                break
            result.add(round(mid - t0, 6), name,
                       sched.rate_at(mid) / (1e3 * s),
                       series.value_at(mid))
    result.notes.append(f"rates reported at paper scale (scale={s})")
    return result


def exp2e(profile: Optional[Profile] = None) -> ExperimentResult:
    """Figure 4.13: dynamic thresholds with a 1:2 service-rate ratio.

    VR1's VRIs take twice the per-frame time of VR2's (1/30 vs 1/60 ms),
    so at equal offered rates the dynamic-threshold allocator should give
    VR1 about twice VR2's cores.
    """
    profile = profile or get_profile()
    s = profile.rate_scale
    sim = Simulator()
    testbed = Testbed(sim)
    config = LvrmConfig(record_latency=False,
                        allocation_period=profile.allocation_period)
    _machine, lvrm = build_lvrm_gateway(
        sim, testbed, n_vrs=2,
        allocator_factory=lambda: DynamicDynamicThresholds(),
        config=config,
        # VR1 serves at half VR2's rate: double its per-frame dummy load.
        dummy_load=(2 * DUMMY_LOAD_1_60MS / s, DUMMY_LOAD_1_60MS / s))

    from repro.traffic import UdpSender
    t0 = 0.01
    # 50 Kfps per VR: VR1 (service ~30 Kfps/VRI) needs 2 VRIs, VR2
    # (~59 Kfps/VRI) needs 1 — a clean 2:1 target for the 1:2 ratio.
    rate_each = 50_000.0 * s
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"), rate_each,
              84, t_start=t0)
    UdpSender(sim, testbed.hosts["s2"], testbed.host_ip("r2"), rate_each,
              84, t_start=t0, phase=1.7e-6)
    horizon = t0 + 14 * profile.allocation_period
    sim.run(until=horizon)

    result = ExperimentResult(
        "exp2e", "Dynamic thresholds: cores track service rates (1:2)",
        columns=("vr", "offered_kfps", "service_ratio", "cores"))
    window_start = horizon - 4 * profile.allocation_period
    for name, ratio in (("vr1", 0.5), ("vr2", 1.0)):
        series = lvrm.vr_monitor.entries[name].cores_series
        cores = series.time_average(window_start, horizon)
        result.add(name, rate_each / (1e3 * s), ratio, cores)
    result.notes.append(f"rates reported at paper scale (scale={s})")
    return result
