"""Exception hierarchy for the LVRM reproduction."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "TopologyError",
    "RoutingError",
    "QueueFullError",
    "QueueEmptyError",
    "AllocationError",
    "RuntimeBackendError",
    "ArenaError",
    "KernelError",
]


class ReproError(Exception):
    """Base class for all library-specific errors."""


class ConfigError(ReproError, ValueError):
    """Invalid configuration value or combination."""


class TopologyError(ReproError):
    """Invalid hardware or network topology operation."""


class RoutingError(ReproError):
    """Route table / forwarding errors (no route, bad prefix, ...)."""


class QueueFullError(ReproError):
    """Raised by strict IPC queue insertion when the ring is full."""


class QueueEmptyError(ReproError):
    """Raised by strict IPC queue extraction when the ring is empty."""


class AllocationError(ReproError):
    """Core allocation failed (no free cores, unknown VR, ...)."""


class RuntimeBackendError(ReproError):
    """Real-process runtime backend failures (spawn, shm, affinity)."""


class ArenaError(ReproError):
    """Shared-memory frame-arena protocol violations (double free,
    refcount underflow, exhausted size class, foreign offset)."""


class KernelError(ReproError):
    """Burst-kernel selection/compilation failures (unknown kind,
    backend unavailable and degradation disallowed)."""
