"""Fairness indexes (Chapter 4 "Metrics").

* Jain's fairness index [20]: ``(sum x)^2 / (n * sum x^2)`` — sensitive
  to the majority of flows; 1 means perfectly equal, 1/n means one flow
  hogs everything.
* Max-min fairness, "which focuses on the outlier": the paper normalizes
  by the aggregate, so we report ``n * min(x) / sum(x)`` — the worst
  flow's share relative to an equal split (1 = perfectly fair).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["jain_index", "max_min_fairness"]


def _as_rates(values: Sequence[float]) -> np.ndarray:
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("fairness of an empty allocation is undefined")
    if np.any(x < 0):
        raise ValueError("rates must be non-negative")
    return x


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index, in [1/n, 1] (1 when all-zero, by convention)."""
    x = _as_rates(values)
    total = x.sum()
    if total == 0.0:
        return 1.0
    # Normalize by the mean before squaring: the index is scale
    # invariant, and this keeps subnormal/huge rates from under- or
    # overflowing the squared sums.
    x = x / (total / x.size)
    return float(x.size / np.square(x).sum())


def max_min_fairness(values: Sequence[float]) -> float:
    """Worst flow's share of an equal split: ``n * min / sum``, in [0, 1]."""
    x = _as_rates(values)
    total = x.sum()
    if total == 0.0:
        return 1.0
    return float(x.size * x.min() / total)
