"""Achievable-throughput measurement.

Chapter 4's criterion: "the maximum frame rate ... such that the sending
rate and the receiving rate differ by no more than 2 %".  The paper finds
it by increasing the send rate until the criterion breaks; we binary-
search it, running one fresh trial (a complete simulation) per probe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

__all__ = ["achievable_throughput", "SearchResult", "LOSS_CRITERION"]

#: The paper's 2 % send/receive divergence criterion.
LOSS_CRITERION = 0.02


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one achievable-throughput search."""

    #: Highest offered rate (frames/s) that met the loss criterion.
    achievable_fps: float
    #: Probes taken: (offered_fps, delivered_fps, passed).
    probes: Tuple[Tuple[float, float, bool], ...]

    @property
    def achievable_bps(self) -> float:
        raise AttributeError(
            "bits/s depends on the frame size; compute it at the call site")


def achievable_throughput(trial: Callable[[float], Tuple[float, float]],
                          lo: float, hi: float,
                          rel_tol: float = 0.03,
                          loss_criterion: float = LOSS_CRITERION,
                          max_probes: int = 12) -> SearchResult:
    """Binary-search the maximum offered rate meeting the loss criterion.

    ``trial(offered_fps)`` must run one independent measurement and
    return ``(sent_fps, received_fps)``.  ``lo`` must be a rate assumed
    achievable (it is probed first and the search fails loudly if not);
    ``hi`` is an upper bound on what the senders can offer.
    """
    if not 0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi, got {lo}, {hi}")
    if not 0 < rel_tol < 1:
        raise ValueError("rel_tol must be in (0, 1)")
    probes: List[Tuple[float, float, bool]] = []

    def probe(rate: float) -> bool:
        sent, received = trial(rate)
        if sent <= 0:
            raise RuntimeError(f"trial at {rate} fps sent nothing")
        passed = (sent - received) <= loss_criterion * sent
        probes.append((rate, received, passed))
        return passed

    if not probe(lo):
        # Even the floor rate loses >2%: report the floor's delivery.
        return SearchResult(achievable_fps=probes[0][1],
                            probes=tuple(probes))
    if probe(hi):
        return SearchResult(achievable_fps=hi, probes=tuple(probes))

    good, bad = lo, hi
    for _ in range(max_probes - 2):
        if (bad - good) <= rel_tol * bad:
            break
        mid = 0.5 * (good + bad)
        if probe(mid):
            good = mid
        else:
            bad = mid
    return SearchResult(achievable_fps=good, probes=tuple(probes))
