"""Summary statistics for measurement samples."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Summary", "summarize"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    maximum: float

    def __str__(self) -> str:
        return (f"n={self.n} mean={self.mean:.6g} std={self.std:.6g} "
                f"min={self.minimum:.6g} p50={self.p50:.6g} "
                f"p95={self.p95:.6g} max={self.maximum:.6g}")


def summarize(values: Sequence[float]) -> Summary:
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(x.size),
        mean=float(x.mean()),
        std=float(x.std(ddof=1)) if x.size > 1 else 0.0,
        minimum=float(x.min()),
        p50=float(np.percentile(x, 50)),
        p95=float(np.percentile(x, 95)),
        maximum=float(x.max()),
    )
