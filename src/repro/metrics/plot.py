"""Terminal plotting for experiment output.

The paper's figures are staircases, sweeps, and time series; the CLI can
sketch them directly in the terminal so a reproduction run is legible
without a plotting stack.  Pure string assembly — no dependencies.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_chart", "ascii_steps"]

_MARKS = "*o+x#@%&"


def _scale(values: Sequence[float], lo: float, hi: float,
           cells: int) -> List[int]:
    span = hi - lo
    if span <= 0:
        return [0 for _ in values]
    return [min(cells - 1, max(0, int((v - lo) / span * (cells - 1))))
            for v in values]


def ascii_chart(series: Dict[str, Tuple[Sequence[float], Sequence[float]]],
                width: int = 64, height: int = 14,
                title: str = "", x_label: str = "",
                y_label: str = "") -> str:
    """Render named (x, y) series on one character grid.

    Each series gets a distinct mark; later series overwrite earlier
    ones where they collide.  Axes are annotated with min/max.
    """
    if not series:
        raise ValueError("nothing to plot")
    if width < 8 or height < 4:
        raise ValueError("chart too small")
    xs_all = [x for xs, _ys in series.values() for x in xs]
    ys_all = [y for _xs, ys in series.values() for y in ys]
    if not xs_all:
        raise ValueError("series are empty")
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 1.0, y_hi + 1.0

    grid = [[" "] * width for _ in range(height)]
    legend = []
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        legend.append(f"{mark}={name}")
        cols = _scale(list(xs), x_lo, x_hi, width)
        rows = _scale(list(ys), y_lo, y_hi, height)
        for col, row in zip(cols, rows):
            grid[height - 1 - row][col] = mark

    out = []
    if title:
        out.append(title)
    y_top = f"{y_hi:.4g}"
    y_bot = f"{y_lo:.4g}"
    label_w = max(len(y_top), len(y_bot), len(y_label))
    for i, row in enumerate(grid):
        if i == 0:
            prefix = y_top.rjust(label_w)
        elif i == height - 1:
            prefix = y_bot.rjust(label_w)
        elif i == height // 2 and y_label:
            prefix = y_label.rjust(label_w)
        else:
            prefix = " " * label_w
        out.append(f"{prefix} |{''.join(row)}")
    axis = f"{' ' * label_w} +{'-' * width}"
    out.append(axis)
    x_line = (f"{' ' * label_w}  {f'{x_lo:.4g}'}"
              f"{x_label.center(width - 12)}{f'{x_hi:.4g}'}")
    out.append(x_line)
    out.append(f"{' ' * label_w}  {'  '.join(legend)}")
    return "\n".join(out)


def ascii_steps(times: Sequence[float], values: Sequence[float],
                width: int = 64, height: int = 10,
                title: str = "", y_label: str = "") -> str:
    """Render a piecewise-constant series (e.g. cores vs time) with the
    step holds filled in, not just the sample points."""
    if len(times) != len(values) or not times:
        raise ValueError("need matching, non-empty times/values")
    t_lo, t_hi = min(times), max(times)
    # Densify: one sample per column using step semantics.
    xs, ys = [], []
    for col in range(width):
        t = t_lo + (t_hi - t_lo) * col / max(1, width - 1)
        value = values[0]
        for tt, vv in zip(times, values):
            if tt <= t:
                value = vv
            else:
                break
        xs.append(t)
        ys.append(value)
    return ascii_chart({"steps": (xs, ys)}, width=width, height=height,
                       title=title, y_label=y_label)
