"""Measurement utilities: fairness indexes, achievable-throughput search,
and summary statistics for the experiment harness."""

from repro.metrics.fairness import jain_index, max_min_fairness
from repro.metrics.stats import summarize, Summary
from repro.metrics.throughput import achievable_throughput, SearchResult

__all__ = [
    "jain_index",
    "max_min_fairness",
    "summarize",
    "Summary",
    "achievable_throughput",
    "SearchResult",
]
