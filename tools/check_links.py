#!/usr/bin/env python3
"""Dead-link checker for the repo's Markdown documentation.

Scans ``README.md`` and ``docs/*.md`` for relative links and fails
(exit 1, one line per offender) when a link's target file does not
exist or its ``#anchor`` names a heading that isn't in the target.
External links (``http://``, ``https://``, ``mailto:``) are ignored —
this guards the *internal* cross-reference graph, which is what PRs
break.

Anchor checking reproduces GitHub's heading slugger: strip inline
markdown (backticks, link syntax), lowercase, drop every character
that is not alphanumeric, space, hyphen, or underscore, then turn each
space into a hyphen — runs are NOT collapsed, so
``## 7. Federation & HA (`repro.cluster`)`` yields
``7-federation--ha-reprocluster`` (double hyphen).  Duplicate headings
get ``-1``, ``-2``, ... suffixes, as on GitHub.

Run it locally with ``python tools/check_links.py``; CI runs it in the
``docs-links`` job.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import Dict, List, Set, Tuple

REPO = pathlib.Path(__file__).resolve().parent.parent

#: Markdown inline links/images: [text](target), ![alt](target "title").
LINK_RE = re.compile(r"!?\[[^\]]*\]\(<?([^)<>\s]+)>?(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(`{3,}|~{3,})")
HEADING_RE = re.compile(r"(#{1,6})\s+(.*)")
INLINE_LINK_TEXT_RE = re.compile(r"\[([^\]]*)\]\([^)]*\)")
SLUG_DROP_RE = re.compile(r"[^0-9a-z\-_ ]")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")


def sources() -> List[pathlib.Path]:
    return [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]


def slugify(heading: str) -> str:
    """GitHub's anchor slug for one heading line's text."""
    text = INLINE_LINK_TEXT_RE.sub(r"\1", heading.strip())
    text = text.replace("`", "")
    text = SLUG_DROP_RE.sub("", text.lower())
    return text.replace(" ", "-")


_ANCHOR_CACHE: Dict[pathlib.Path, Set[str]] = {}


def anchors_of(path: pathlib.Path) -> Set[str]:
    """Every anchor GitHub would generate for ``path``'s headings."""
    if path not in _ANCHOR_CACHE:
        seen: Dict[str, int] = {}
        slugs: Set[str] = set()
        in_fence = False
        for line in path.read_text(encoding="utf-8").splitlines():
            if FENCE_RE.match(line.lstrip()):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m is None:
                continue
            slug = slugify(m.group(2))
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            slugs.add(slug if n == 0 else f"{slug}-{n}")
        _ANCHOR_CACHE[path] = slugs
    return _ANCHOR_CACHE[path]


def links_of(path: pathlib.Path) -> List[Tuple[int, str]]:
    out: List[Tuple[int, str]] = []
    in_fence = False
    for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), 1):
        if FENCE_RE.match(line.lstrip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        # Inline code spans may quote link syntax as an example.
        line = re.sub(r"`[^`]*`", "", line)
        for m in LINK_RE.finditer(line):
            out.append((lineno, m.group(1)))
    return out


def check() -> List[str]:
    errors: List[str] = []
    for src in sources():
        for lineno, target in links_of(src):
            if EXTERNAL_RE.match(target):
                continue  # http(s):, mailto:, etc.
            where = f"{src.relative_to(REPO)}:{lineno}"
            path_part, _, anchor = target.partition("#")
            dest = (src if not path_part
                    else (src.parent / path_part).resolve())
            if not dest.is_file():
                errors.append(f"{where}: missing file: {target}")
                continue
            if anchor and dest.suffix.lower() == ".md":
                if anchor.lower() not in anchors_of(dest):
                    errors.append(
                        f"{where}: dead anchor: {target} "
                        f"(no heading slugs to #{anchor} in "
                        f"{dest.relative_to(REPO)})")
    return errors


def main() -> int:
    errors = check()
    for err in errors:
        print(err, file=sys.stderr)
    n_links = sum(len(links_of(p)) for p in sources())
    print(f"check_links: {len(sources())} files, {n_links} links, "
          f"{len(errors)} dead")
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
