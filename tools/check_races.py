#!/usr/bin/env python3
"""Offline happens-before race checker for recorded replay traces.

Feeds one or more JSONL traces (written by
``lvrm-exp faults --record-trace``, or any file of
``repro.obs.export`` event lines) through
:func:`repro.replay.check_races` and prints every concurrent
conflicting pair: two events with no happens-before path between them
that touch the same resource with at least one write — a restart
racing an in-flight descriptor reclaim, an arena free racing a
borrowed FrameView, a replication delta racing a VIP move.

Exit status: 0 when every trace is race-free (or every race matches an
``--allow`` classification), 1 when any unexplained race remains,
2 on unreadable input.

Examples::

    python tools/check_races.py drill.jsonl
    python tools/check_races.py --allow restart-vs-reclaim *.jsonl
    python tools/check_races.py --json report.json drill.jsonl

Run ``lvrm-exp replay TRACE`` instead when you also want the trace
replayed through the DES twin; this tool is the race checker alone, so
it works on partial traces whose counters can't be expected to match.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.replay import check_races, load_trace  # noqa: E402


def _check_one(path: str, allow: List[str], verbose: bool) -> dict:
    events = load_trace(path)
    report = check_races(events, allow=tuple(allow))
    report["trace"] = path
    status = ("CLEAN" if report["n_races"] == 0 else
              "EXPLAINED" if report["n_unexplained"] == 0 else "RACY")
    print(f"{path}: {status} — {report['events']} events, "
          f"{len(report['tracks'])} tracks, {report['n_races']} races "
          f"({report['n_unexplained']} unexplained)")
    if report["seq_gaps"]:
        print(f"  note: {report['seq_gaps']} sequence gaps — trace is "
              f"incomplete, verdicts may be unreliable")
    if report["truncated"]:
        print("  note: pair budget exhausted, check truncated")
    shown = report["races"] if verbose else report["races"][:10]
    for race in shown:
        a, b = race["a"], race["b"]
        print(f"  {race['rule']}: {a['name']} "
              f"(track={a['track']} seq={a['seq']}) || {b['name']} "
              f"(track={b['track']} seq={b['seq']}) on {race['resource']}")
    if not verbose and len(report["races"]) > 10:
        print(f"  ... {len(report['races']) - 10} more (use --verbose)")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="happens-before race checker for replay traces")
    parser.add_argument("traces", nargs="+", metavar="TRACE",
                        help="JSONL replay trace(s) to check")
    parser.add_argument("--allow", action="append", default=[],
                        metavar="RULE",
                        help="treat races with this classification as "
                             "explained (repeatable)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the full per-trace reports as JSON")
    parser.add_argument("--verbose", action="store_true",
                        help="print every race, not just the first 10")
    args = parser.parse_args(argv)
    reports = []
    status = 0
    for path in args.traces:
        try:
            reports.append(_check_one(path, args.allow, args.verbose))
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        if reports[-1]["n_unexplained"]:
            status = 1
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(reports, fh, indent=2)
        print(f"# wrote {args.json}")
    return status


if __name__ == "__main__":
    sys.exit(main())
