"""Tests for any_of / all_of composite events."""

import pytest

from repro.sim import Simulator, all_of, any_of


def test_any_of_first_wins(sim):
    a = sim.timeout(2.0, "slow")
    b = sim.timeout(1.0, "fast")
    composite = any_of(sim, [a, b])
    results = []
    composite.add_callback(lambda e: results.append((sim.now, e.value)))
    sim.run()
    assert results == [(1.0, (1, "fast"))]


def test_any_of_with_already_triggered(sim):
    ev = sim.event()
    ev.succeed("done")
    sim.run()
    composite = any_of(sim, [ev, sim.timeout(5.0)])
    # The already-processed event fires the composite synchronously.
    assert composite.triggered
    assert composite.value == (0, "done")


def test_any_of_waitable_by_process(sim):
    def waiter(sim):
        index, value = yield any_of(sim, [sim.timeout(3.0, "a"),
                                          sim.timeout(1.0, "b")])
        return (sim.now, index, value)

    p = sim.process(waiter(sim))
    sim.run()
    assert p.value == (1.0, 1, "b")


def test_any_of_propagates_failure(sim):
    bad = sim.event()
    composite = any_of(sim, [bad, sim.timeout(10.0)])

    def waiter(sim):
        try:
            yield composite
        except RuntimeError as exc:
            return f"caught {exc}"

    p = sim.process(waiter(sim))
    bad.fail(RuntimeError("boom"), delay=1.0)
    sim.run()
    assert p.value == "caught boom"


def test_all_of_collects_in_order(sim):
    events = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"),
              sim.timeout(2.0, "b")]
    composite = all_of(sim, events)
    done = []
    composite.add_callback(lambda e: done.append((sim.now, e.value)))
    sim.run()
    assert done == [(3.0, ["c", "a", "b"])]


def test_all_of_joins_processes(sim):
    def child(sim, delay, name):
        yield sim.timeout(delay)
        return name

    def parent(sim):
        kids = [sim.process(child(sim, d, n))
                for d, n in ((0.5, "x"), (1.5, "y"))]
        names = yield all_of(sim, kids)
        return (sim.now, names)

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == (1.5, ["x", "y"])


def test_all_of_fails_fast(sim):
    bad = sim.event()
    slow = sim.timeout(10.0)
    composite = all_of(sim, [bad, slow])

    def waiter(sim):
        try:
            yield composite
        except ValueError:
            return sim.now

    p = sim.process(waiter(sim))
    bad.fail(ValueError("nope"), delay=2.0)
    sim.run()
    assert p.value == 2.0


def test_empty_inputs_rejected(sim):
    with pytest.raises(ValueError):
        any_of(sim, [])
    with pytest.raises(ValueError):
        all_of(sim, [])


def test_late_losers_are_ignored(sim):
    a, b = sim.timeout(1.0, "a"), sim.timeout(2.0, "b")
    composite = any_of(sim, [a, b])
    sim.run()
    assert composite.value == (0, "a")
    assert b.triggered  # still fired on its own; no error raised
