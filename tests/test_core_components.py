"""Tests for VR specs, router models, allocators, and adapters."""

import pytest

from repro.core import (ClickVrModel, CppVrModel, DynamicDynamicThresholds,
                        DynamicFixedThresholds, FixedAllocation, VrSpec,
                        VrType)
from repro.core.allocation import GROW, HOLD, SHRINK, VrLoadState
from repro.core.lvrm_adapter import LvrmAdapter
from repro.core.vri_adapter import VriAdapter
from repro.errors import ConfigError, RoutingError
from repro.hardware import DEFAULT_COSTS
from repro.net.addresses import ip_to_int
from repro.net.frame import Frame
from repro.routing.mapfile import parse_map_lines
from repro.routing.prefix import Prefix


def _spec(**kw):
    defaults = dict(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),))
    defaults.update(kw)
    return VrSpec(**defaults)


# -- VrSpec ---------------------------------------------------------------------

def test_spec_ownership():
    spec = _spec()
    assert spec.owns(ip_to_int("10.1.2.3"))
    assert not spec.owns(ip_to_int("10.2.2.3"))


def test_spec_builds_cpp_router():
    router = _spec().build_router()
    assert isinstance(router, CppVrModel)
    f = Frame(84, ip_to_int("10.1.1.2"), ip_to_int("10.2.1.2"))
    assert router.process(f)
    assert f.out_iface == 1


def test_spec_builds_click_router():
    router = _spec(vr_type=VrType.CLICK).build_router()
    assert isinstance(router, ClickVrModel)


def test_spec_each_vri_gets_fresh_router_state():
    spec = _spec()
    assert spec.build_router() is not spec.build_router()


@pytest.mark.parametrize("kw", [
    dict(name=""),
    dict(subnets=()),
    dict(dummy_load=-1.0),
    dict(max_vris=0),
    dict(click_config="x"),  # click config on a CPP VR
])
def test_spec_validation(kw):
    with pytest.raises(ConfigError):
        _spec(**kw)


# -- router models -----------------------------------------------------------------

def test_cpp_service_time_includes_dummy_load():
    routes, _ = parse_map_lines(["route 10.2.0.0/16 iface 1"])
    r = CppVrModel(routes, dummy_load=1e-3)
    f = Frame(84, 1, ip_to_int("10.2.0.1"))
    assert r.service_time(f, DEFAULT_COSTS) == pytest.approx(
        DEFAULT_COSTS.cpp_vr_cost + 1e-3)


def test_cpp_drop_counts_no_route():
    routes, _ = parse_map_lines(["route 10.2.0.0/16 iface 1"])
    r = CppVrModel(routes)
    assert not r.process(Frame(84, 1, ip_to_int("99.9.9.9")))
    assert r.dropped == 1 and r.forwarded == 0


def test_cpp_requires_routes():
    from repro.routing.table import RouteTable
    with pytest.raises(RoutingError):
        CppVrModel(RouteTable())


def test_click_costs_more_than_cpp():
    routes, _ = parse_map_lines(["route 10.2.0.0/16 iface 1"])
    cpp = CppVrModel(routes)
    click = ClickVrModel()
    f = Frame(84, 1, ip_to_int("10.2.0.1"))
    assert click.service_time(f, DEFAULT_COSTS) > \
        5 * cpp.service_time(f, DEFAULT_COSTS)


def test_click_forwards_via_pipeline():
    r = ClickVrModel()
    f = Frame(84, ip_to_int("10.1.1.2"), ip_to_int("10.2.1.2"))
    assert r.process(f)
    assert f.out_iface == 1


# -- allocators --------------------------------------------------------------------

def _state(n, arrival, service=0.0, max_vris=8):
    return VrLoadState(n_vris=n, arrival_rate=arrival,
                       service_rate=service, max_vris=max_vris)


def test_fixed_allocation_holds_at_target():
    alloc = FixedAllocation(4)
    assert alloc.initial_vris() == 4
    assert alloc.decide(_state(4, 1e9)) == HOLD
    assert alloc.decide(_state(3, 0)) == GROW
    assert alloc.decide(_state(5, 0)) == SHRINK


def test_dynamic_fixed_grow_and_shrink_bands():
    alloc = DynamicFixedThresholds(60_000.0, hysteresis=0.05)
    assert alloc.decide(_state(1, 61_000)) == GROW
    assert alloc.decide(_state(1, 59_000)) == HOLD
    assert alloc.decide(_state(2, 100_000)) == HOLD
    # Release band: below (c-1)*thr*(1-hyst) = 57000.
    assert alloc.decide(_state(2, 56_000)) == SHRINK
    assert alloc.decide(_state(2, 58_000)) == HOLD


def test_dynamic_fixed_clamps():
    alloc = DynamicFixedThresholds(60_000.0)
    assert alloc.decide(_state(8, 1e9, max_vris=8)) == HOLD
    assert alloc.decide(_state(1, 0.0)) == HOLD  # never below one VRI


def test_dynamic_fixed_hysteresis_prevents_flapping_at_boundary():
    alloc = DynamicFixedThresholds(60_000.0, hysteresis=0.05)
    # Just under 2*thr after growing to 2: must not immediately shrink.
    assert alloc.decide(_state(2, 60_500)) == HOLD


def test_dynamic_fixed_validation():
    with pytest.raises(ConfigError):
        DynamicFixedThresholds(0.0)
    with pytest.raises(ConfigError):
        DynamicFixedThresholds(1.0, hysteresis=1.0)


def test_dynamic_dynamic_grows_on_overload():
    alloc = DynamicDynamicThresholds()
    assert alloc.decide(_state(2, arrival=120_000, service=100_000)) == GROW


def test_dynamic_dynamic_shrinks_when_one_less_suffices():
    alloc = DynamicDynamicThresholds()
    # 3 VRIs at 60K service each = 180K; arrival 90K <= 120K * 0.9.
    assert alloc.decide(_state(3, arrival=90_000, service=180_000)) == SHRINK


def test_dynamic_dynamic_holds_in_band():
    alloc = DynamicDynamicThresholds()
    assert alloc.decide(_state(2, arrival=115_000, service=125_000)) == HOLD


def test_dynamic_dynamic_cold_start_grows_only_with_traffic():
    alloc = DynamicDynamicThresholds()
    assert alloc.decide(_state(1, arrival=0.0, service=0.0)) == HOLD
    assert alloc.decide(_state(1, arrival=5_000, service=0.0)) == GROW


# -- adapters ------------------------------------------------------------------------

def test_vri_adapter_counts_and_estimates():
    a = VriAdapter(1)
    a.observe_dispatch(0.0, queue_len=4, accepted=True)
    a.observe_dispatch(0.1, queue_len=4, accepted=False)
    assert a.relayed == 1 and a.push_failures == 1
    assert a.load_estimate() > 0.0


def test_lvrm_adapter_service_rate():
    a = LvrmAdapter(1)
    for _ in range(50):
        a.record_service(1e-3)
    assert a.service_rate() == pytest.approx(1000.0, rel=0.01)
    assert a.from_lvrm_calls == 50
