"""Tests for the ON/OFF bursty traffic source."""

import numpy as np
import pytest

from repro.traffic.onoff import OnOffSender


def test_average_rate_close_to_duty_times_peak(sim, testbed):
    rng = np.random.default_rng(5)
    sender = OnOffSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                         peak_fps=50_000, mean_on=0.01, mean_off=0.01,
                         rng=rng, t_stop=2.0)
    sim.run(until=2.0)
    assert sender.duty_cycle == pytest.approx(0.5)
    expected = sender.average_fps * 2.0
    assert sender.sent == pytest.approx(expected, rel=0.25)
    assert sender.bursts > 50


def test_no_off_period_is_cbr(sim, testbed):
    rng = np.random.default_rng(5)
    sender = OnOffSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                         peak_fps=10_000, mean_on=0.01, mean_off=0.0,
                         rng=rng, t_stop=0.1)
    sim.run(until=0.1)
    assert sender.duty_cycle == 1.0
    assert sender.sent == pytest.approx(1000, rel=0.02)


def test_traffic_is_actually_bursty(sim, testbed):
    """Coefficient of variation of per-bin counts must far exceed CBR's."""
    from repro.sim.timeline import RateCounter

    rng = np.random.default_rng(7)
    counter = RateCounter(0.002)
    testbed.hosts["s1"].handler = None
    sender = OnOffSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                         peak_fps=100_000, mean_on=0.005, mean_off=0.02,
                         rng=rng, t_stop=1.0)
    original_send = testbed.hosts["s1"].send
    testbed.hosts["s1"].send = lambda f: (counter.record(sim.now),
                                          original_send(f))
    sim.run(until=1.0)
    rates = counter.rates()
    cv = rates.std() / rates.mean()
    assert cv > 0.8  # CBR would be ~0


def test_stop_and_validation(sim, testbed):
    rng = np.random.default_rng(1)
    sender = OnOffSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                         peak_fps=10_000, mean_on=0.01, mean_off=0.01,
                         rng=rng)
    sim.call_in(0.05, sender.stop)
    sim.run(until=0.2)
    frozen = sender.sent
    sim.run(until=0.3)
    assert sender.sent == frozen
    with pytest.raises(ValueError):
        OnOffSender(sim, testbed.hosts["s1"], 1, peak_fps=0,
                    mean_on=1, mean_off=1, rng=rng)
