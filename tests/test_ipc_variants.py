"""Tests for the alternative lock-free queue implementations
(FastForward [17] and MCRingBuffer [24]) and the ring factory."""

import multiprocessing as mp
import time
from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, QueueEmptyError, QueueFullError
from repro.ipc import (FastForwardRing, McRingBuffer, RING_KINDS,
                       SharedSegment, attach_ring, make_ring,
                       ring_bytes_for)
from repro.ipc.fastforward import ff_bytes_needed
from repro.ipc.mcring import mc_bytes_needed


def _make(kind, capacity=8, slot=64, **kw):
    buf = bytearray(ring_bytes_for(kind, capacity, slot))
    if kind == "lamport":
        from repro.ipc.ring import SpscRing
        return SpscRing(buf, capacity, slot), buf
    if kind == "fastforward":
        return FastForwardRing(buf, capacity, slot), buf
    return McRingBuffer(buf, capacity, slot, **kw), buf


# -- shared semantics across all kinds --------------------------------------------

@pytest.mark.parametrize("kind", RING_KINDS)
def test_fifo_and_wraparound(kind):
    ring, _buf = _make(kind, capacity=4)
    for round_no in range(12):
        ring.push(f"r{round_no}".encode())
        if hasattr(ring, "flush"):
            ring.flush()
        assert ring.pop() == f"r{round_no}".encode()


@pytest.mark.parametrize("kind", RING_KINDS)
def test_full_and_empty_conditions(kind):
    ring, _buf = _make(kind, capacity=4, **({"batch": 1}
                                            if kind == "mcring" else {}))
    for i in range(4):
        ring.push(bytes([i]))
    with pytest.raises(QueueFullError):
        ring.push(b"x")
    for i in range(4):
        assert ring.pop() == bytes([i])
    with pytest.raises(QueueEmptyError):
        ring.pop()


@pytest.mark.parametrize("kind", RING_KINDS)
def test_oversize_record_rejected(kind):
    ring, _buf = _make(kind, slot=32)
    with pytest.raises(ConfigError):
        ring.push(b"x" * 64)


@pytest.mark.parametrize("kind", RING_KINDS)
def test_attach_round_trip(kind):
    ring, buf = _make(kind)
    ring.push(b"hello")
    if hasattr(ring, "flush"):
        ring.flush()
    attached = attach_ring(kind, buf)
    # FastForward consumers start at slot 0, which is where we pushed.
    assert attached.pop() == b"hello"


def test_factory_validates_kind():
    with pytest.raises(ConfigError):
        ring_bytes_for("quantum", 8, 64)
    with pytest.raises(ConfigError):
        make_ring("quantum", bytearray(1024), 8, 64)


@given(st.sampled_from(RING_KINDS),
       st.lists(st.tuples(st.booleans(), st.binary(max_size=24)),
                max_size=100))
@settings(max_examples=120, deadline=None)
def test_all_kinds_match_deque_model(kind, ops):
    """Property: every implementation behaves as a bounded FIFO.

    MCRingBuffer is flushed/released after each op so its *published*
    view matches the model (batch=1 semantics)."""
    kw = {"batch": 1} if kind == "mcring" else {}
    ring, _buf = _make(kind, capacity=8, slot=32, **kw)
    model = deque()
    for is_push, payload in ops:
        if is_push:
            ok = ring.try_push(payload)
            assert ok == (len(model) < 8)
            if ok:
                model.append(payload)
        else:
            got = ring.try_pop()
            expected = model.popleft() if model else None
            assert got == expected


# -- FastForward specifics ---------------------------------------------------------

def test_ff_geometry_validation():
    with pytest.raises(ConfigError):
        ff_bytes_needed(6, 64)
    with pytest.raises(ConfigError):
        ff_bytes_needed(8, 30)  # not 4-byte aligned
    with pytest.raises(ConfigError):
        FastForwardRing(bytearray(8), 8, 64)


def test_ff_occupancy_scan():
    ring, _buf = _make("fastforward", capacity=8)
    assert len(ring) == 0
    ring.push(b"a")
    ring.push(b"b")
    assert len(ring) == 2
    ring.pop()
    assert len(ring) == 1


def _ff_producer(name, n):
    seg = SharedSegment.attach(name)
    ring = FastForwardRing.attach(seg.buf)
    sent = 0
    while sent < n:
        if ring.try_push(sent.to_bytes(4, "little")):
            sent += 1
    ring.close()
    seg.close()


def test_ff_cross_process():
    n = 1500
    seg = SharedSegment.create(ff_bytes_needed(64, 32))
    ring = FastForwardRing(seg.buf, 64, 32)
    ctx = mp.get_context("fork")
    child = ctx.Process(target=_ff_producer, args=(seg.name, n))
    child.start()
    received = []
    deadline = time.monotonic() + 30
    while len(received) < n and time.monotonic() < deadline:
        record = ring.try_pop()
        if record is not None:
            received.append(int.from_bytes(record, "little"))
    child.join(5)
    assert received == list(range(n))
    ring.close()
    seg.close()


# -- MCRingBuffer specifics ------------------------------------------------------------

def test_mc_batching_defers_publication():
    ring, buf = _make("mcring", capacity=16, batch=4)
    consumer = McRingBuffer.attach(buf)
    for i in range(3):
        ring.try_push(bytes([i]))
    # Three unflushed records: invisible to a fresh consumer.
    assert consumer.try_pop() is None
    ring.try_push(b"\x03")  # fourth push crosses the batch: auto-flush
    assert consumer.try_pop() == b"\x00"


def test_mc_flush_publishes_immediately():
    ring, buf = _make("mcring", capacity=16, batch=8)
    consumer = McRingBuffer.attach(buf)
    ring.try_push(b"solo")
    assert consumer.try_pop() is None
    ring.flush()
    assert consumer.try_pop() == b"solo"


def test_mc_release_returns_slots():
    ring, _buf = _make("mcring", capacity=4, batch=2)
    for i in range(4):
        ring.push(bytes([i]))
    ring.flush()
    assert not ring.try_push(b"full")
    ring.pop()  # one unreleased consume
    assert not ring.try_push(b"still-full")  # slot not yet returned
    ring.release()
    assert ring.try_push(b"now-fits")


def test_mc_batch_validation():
    buf = bytearray(mc_bytes_needed(8, 64))
    with pytest.raises(ConfigError):
        McRingBuffer(buf, 8, 64, batch=0)
    with pytest.raises(ConfigError):
        McRingBuffer(buf, 8, 64, batch=16)


# -- runtime integration --------------------------------------------------------------------

@pytest.mark.parametrize("ring_impl", ["fastforward", "mcring"])
@pytest.mark.timeout(60)
def test_runtime_works_on_alternative_rings(ring_impl):
    from repro.net.addresses import ip_to_int
    from repro.net.packet import build_udp_frame
    from repro.runtime import RuntimeLvrm

    frame = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                            ip_to_int("10.2.1.2"), 1, 2, b"alt-ring")
    with RuntimeLvrm(n_vris=1, ring_impl=ring_impl,
                     worker_lifetime=40.0) as lvrm:
        for _ in range(30):
            while not lvrm.dispatch(frame):
                time.sleep(1e-4)
        out = lvrm.drain_until(30, timeout=20.0)
    assert len(out) == 30
    assert all(f == frame for _v, _i, f in out)
