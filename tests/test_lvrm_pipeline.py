"""Integration tests for the DES LVRM pipeline (core package)."""

import pytest

from repro.core import (FixedAllocation, Lvrm, LvrmConfig, VrSpec, VrType,
                        make_socket_adapter)
from repro.core.allocation import DynamicFixedThresholds
from repro.errors import ConfigError
from repro.hardware import AffinityMode, DEFAULT_COSTS, Machine
from repro.ipc.messages import ControlEvent, KIND_USER
from repro.net import Testbed
from repro.routing.prefix import Prefix
from repro.sim import Simulator
from repro.traffic import FrameSink, UdpSender
from repro.traffic.trace import synthetic_trace


def _memory_lvrm(sim, n_frames=2000, frame_size=84, vr_type=VrType.CPP,
                 n_vris=1, **config_kw):
    machine = Machine(sim)
    adapter = make_socket_adapter(
        "memory", sim, DEFAULT_COSTS,
        trace=synthetic_trace(n_frames, frame_size))
    lvrm = Lvrm(sim, machine, adapter, config=LvrmConfig(**config_kw))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                       vr_type=vr_type), FixedAllocation(n_vris))
    lvrm.start()
    return lvrm


def test_memory_trace_fully_forwarded(sim):
    lvrm = _memory_lvrm(sim, n_frames=3000)
    sim.run(until=10.0)
    assert lvrm.done.triggered
    s = lvrm.stats
    assert s.captured == 3000
    assert s.dispatched == 3000
    assert s.forwarded == 3000
    assert s.dropped_no_vr == 0


def test_unowned_source_dropped(sim):
    machine = Machine(sim)
    adapter = make_socket_adapter(
        "memory", sim, DEFAULT_COSTS,
        trace=synthetic_trace(100, 84, src_ip="192.168.1.1"))
    lvrm = Lvrm(sim, machine, adapter)
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(1))
    lvrm.start()
    sim.run(until=5.0)
    assert lvrm.stats.dropped_no_vr == 100
    assert lvrm.stats.forwarded == 0


def test_multiple_vris_share_the_load(sim):
    # Dummy load makes one VRI slower than LVRM's read rate, so JSQ has
    # to spread the trace across all three instances.
    machine = Machine(sim)
    adapter = make_socket_adapter(
        "memory", sim, DEFAULT_COSTS, trace=synthetic_trace(6000, 84))
    lvrm = Lvrm(sim, machine, adapter)
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                       dummy_load=0.5e-6), FixedAllocation(3))
    lvrm.start()
    sim.run(until=10.0)
    assert lvrm.done.triggered
    per_vri = [v.processed for v in lvrm.all_vris()]
    assert len(per_vri) == 3
    assert sum(per_vri) == 6000
    # JSQ spreads work across every instance (the third VRI sits on a
    # slower cross-socket path, so its share is smaller but material).
    assert min(per_vri) > 800


def test_latency_recorded(sim):
    lvrm = _memory_lvrm(sim, n_frames=500)
    sim.run(until=5.0)
    assert len(lvrm.stats.latency) == 500
    assert 0 < lvrm.stats.latency.mean() < 1e-4


def test_click_vr_forwards_and_is_slower(sim):
    lvrm_cpp = _memory_lvrm(sim, n_frames=2000, vr_type=VrType.CPP)
    sim.run(until=30.0)
    t_cpp = lvrm_cpp.stats.latency.times[-1]

    sim2 = Simulator()
    lvrm_click = _memory_lvrm(sim2, n_frames=2000, vr_type=VrType.CLICK)
    sim2.run(until=30.0)
    t_click = lvrm_click.stats.latency.times[-1]
    s = lvrm_click.stats
    # The trace is read far faster than one Click VRI drains, so the
    # data queue overflows — every frame is either forwarded or shed.
    assert s.forwarded + s.dropped_queue_full == 2000
    assert s.forwarded >= 500
    assert t_click > 2 * t_cpp  # click pipeline dominates the drain time


def test_network_mode_forwards_to_receivers(sim, testbed):
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter)
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(1))
    lvrm.start()
    sink = FrameSink(sim, testbed.hosts["r1"])
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=50_000, frame_size=84, t_start=0.002,
              t_stop=0.022)
    sim.run(until=0.05)
    sent = 50_000 * 0.02
    assert sink.received >= 0.98 * sent
    # End-to-end latency must sit in the sub-millisecond gateway band.
    assert sink.mean_latency() < 300e-6


def test_control_events_relayed_between_vris(sim):
    lvrm = _memory_lvrm(sim, n_frames=200, n_vris=2)
    received = []

    def runner():
        while len(lvrm.all_vris()) < 2:
            yield sim.timeout(1e-4)
        src, dst = lvrm.all_vris()
        dst.control_handler = lambda ev, vri: received.append(ev)
        for i in range(5):
            yield from src.send_control(
                ControlEvent(KIND_USER, src.vri_id, dst.vri_id,
                             payload=bytes([i]), t_sent=sim.now))
            yield sim.timeout(1e-4)

    sim.process(runner())
    sim.run(until=5.0)
    assert len(received) == 5
    assert lvrm.stats.ctrl_relayed == 5
    assert [ev.payload[0] for ev in received] == [0, 1, 2, 3, 4]


def test_control_to_unknown_vri_is_dropped_gracefully(sim):
    lvrm = _memory_lvrm(sim, n_frames=50, n_vris=1)

    def runner():
        while not lvrm.all_vris():
            yield sim.timeout(1e-4)
        src = lvrm.all_vris()[0]
        yield from src.send_control(
            ControlEvent(KIND_USER, src.vri_id, 9999))

    sim.process(runner())
    sim.run(until=5.0)
    assert lvrm.stats.ctrl_relayed == 0


def test_dynamic_allocation_grows_under_load(sim, testbed):
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(allocation_period=0.02,
                                  record_latency=False))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                       dummy_load=1 / 15_000.0),
                DynamicFixedThresholds(15_000.0))
    lvrm.start()
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=50_000, frame_size=84, t_start=0.002)
    sim.run(until=0.3)
    # 50 Kfps against a 15 Kfps-per-VRI threshold: several VRIs needed.
    assert len(lvrm.all_vris()) >= 3
    assert lvrm.vr_monitor.passes >= 2


def test_dynamic_allocation_shrinks_after_load_drops(sim, testbed):
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(allocation_period=0.02,
                                  record_latency=False))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                       dummy_load=1 / 15_000.0),
                DynamicFixedThresholds(15_000.0))
    lvrm.start()
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=50_000, frame_size=84, t_start=0.002, t_stop=0.2)
    # Trickle traffic afterwards so allocation passes keep triggering
    # (Figure 3.2: the pass runs only upon packet receipt).
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=1_000, frame_size=84, t_start=0.2)
    sim.run(until=0.12)  # mid-burst: allocation has ramped up
    peak = len(lvrm.all_vris())
    assert peak >= 3
    sim.run(until=0.7)  # long after the burst: shrunk back down
    assert len(lvrm.all_vris()) == 1


def test_affinity_same_mode_runs_vri_on_lvrm_core(sim, testbed):
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(affinity=AffinityMode.SAME,
                                  record_latency=False))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(1))
    lvrm.start()
    sim.run(until=0.01)
    assert lvrm.all_vris()[0].core.core_id == lvrm.config.lvrm_core


def test_lvrm_start_twice_rejected(sim):
    lvrm = _memory_lvrm(sim, n_frames=10)
    with pytest.raises(ConfigError):
        lvrm.start()


def test_lvrm_config_validation():
    with pytest.raises(ConfigError):
        LvrmConfig(allocation_period=0.0)
    with pytest.raises(ConfigError):
        LvrmConfig(queue_capacity=0)
    with pytest.raises(ConfigError):
        LvrmConfig(balancer="bogus")


def test_queue_overflow_counted_as_drops(sim):
    """A VRI slower than the input with a tiny queue must shed load."""
    machine = Machine(sim)
    adapter = make_socket_adapter(
        "memory", sim, DEFAULT_COSTS,
        trace=synthetic_trace(2000, 84))
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(queue_capacity=16))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                       dummy_load=50e-6),  # 20 Kfps vs ~3 Mfps input
                FixedAllocation(1))
    lvrm.start()
    sim.run(until=5.0)
    s = lvrm.stats
    assert s.dropped_queue_full > 0
    assert s.forwarded + s.dropped_queue_full == s.captured
