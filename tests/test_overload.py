"""repro.overload: classification, AIMD admission, and both backends.

The load-bearing guarantees under test:

* the stride sampler's scalar and block forms are *bit-identical* (the
  kernels' burst path must decide exactly like the scalar path);
* per class, ``offered == admitted + shed`` — always, including across
  a kill fault mid-overload;
* policy semantics: priority-shed never touches control, tail-drop is
  class-blind, adaptive-sample sheds lower classes faster but keeps a
  trickle everywhere.
"""

import json

import pytest

from repro.errors import ConfigError
from repro.faults import FaultSchedule
from repro.faults.scenario import run_des_scenario
from repro.net.addresses import ip_to_int
from repro.net.frame import Frame, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.net.packet import build_udp_frame
from repro.obs.registry import Registry
from repro.overload import (AdmissionController, ClassRule, DEFAULT_CLASSES,
                            OverloadConfig, PriorityClassifier, POLICIES,
                            build_controller)


def _controller(policy="priority-shed", **opts) -> AdmissionController:
    """A controller on a private registry (no cross-test metric bleed)."""
    cfg = OverloadConfig.from_spec({"policy": policy, **opts})
    return AdmissionController(cfg, registry=Registry())


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------

def test_default_taxonomy():
    clf = PriorityClassifier()
    assert clf.classes == DEFAULT_CLASSES
    assert clf.classify(PROTO_ICMP, 33000, 44000) == 0   # ICMP is control
    assert clf.classify(PROTO_TCP, 33000, 179) == 0      # BGP
    assert clf.classify(PROTO_UDP, 53, 33000) == 0       # DNS (src side)
    assert clf.classify(PROTO_UDP, 33000, 5000) == 1     # interactive band
    assert clf.classify(PROTO_TCP, 33000, 40000) == 2    # bulk fall-through


def test_classify_frame_and_malformed_views():
    clf = PriorityClassifier()
    frame = Frame(84, ip_to_int("10.1.1.2"), ip_to_int("10.2.1.2"),
                  proto=PROTO_UDP, src_port=10000, dst_port=179)
    assert clf.classify_frame(frame) == 0

    class Garbage:           # a FrameView over junk raises on field access
        @property
        def proto(self):
            raise ValueError("truncated header")
    assert clf.classify_frame(Garbage()) == clf.default_cls


def test_classify_raw_wire_bytes():
    clf = PriorityClassifier()
    ctl = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                          ip_to_int("10.2.1.2"), 10000, 179, b"bgp")
    bulk = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                           ip_to_int("10.2.1.2"), 10000, 40000, b"bulk")
    assert clf.classify_raw(ctl) == 0
    assert clf.classify_raw(bulk) == 2
    # Too short / non-IPv4 garbage never outranks real traffic.
    assert clf.classify_raw(b"\x00" * 10) == clf.default_cls
    assert clf.classify_raw(b"\xff" * 64) == clf.default_cls


def test_classifier_from_spec_custom_taxonomy():
    clf = PriorityClassifier.from_spec({
        "classes": ["gold", "best-effort"],
        "rules": [{"class": "gold", "port_lo": 0, "port_hi": 1023}],
        "default": "best-effort",
    })
    assert clf.n_classes == 2
    assert clf.classify(PROTO_UDP, 33000, 22) == 0
    assert clf.classify(PROTO_UDP, 33000, 33000) == 1
    # Round-trips through its own dict form.
    again = PriorityClassifier.from_spec(clf.to_dict())
    assert again.classify(PROTO_UDP, 33000, 22) == 0


def test_classifier_spec_validation():
    with pytest.raises(ConfigError, match="unknown class"):
        PriorityClassifier.from_spec(
            {"rules": [{"class": "platinum", "proto": 1}]})
    with pytest.raises(ConfigError, match="unknown keys"):
        PriorityClassifier.from_spec(
            {"rules": [{"class": "control", "vlan": 7}]})
    with pytest.raises(ConfigError, match="at least two"):
        PriorityClassifier.from_spec({"classes": ["only"], "rules": []})
    with pytest.raises(ConfigError, match="port range"):
        ClassRule(cls=0, port_lo=5)
    with pytest.raises(ConfigError, match="empty port range"):
        ClassRule(cls=0, port_lo=9, port_hi=3)


# ---------------------------------------------------------------------------
# The stride sampler
# ---------------------------------------------------------------------------

def test_rate_quarter_admits_exactly_every_fourth():
    ctl = _controller("tail-drop")
    ctl.set_rate(2, 0.25)
    decisions = [ctl.decide(2) for _ in range(16)]
    assert decisions.count(True) == 4          # exactly, not in expectation
    assert ctl.offered[2] == 16
    assert ctl.admitted[2] == 4 and ctl.shed[2] == 12


def test_block_admission_is_bit_identical_to_scalar():
    """The kernels' burst path must decide exactly like the scalar
    path, for every class, across arbitrary block boundaries."""
    rates = {0: 1.0, 1: 0.37, 2: 0.051}
    scalar = _controller("tail-drop")
    block = _controller("tail-drop")
    for c, r in rates.items():
        scalar.set_rate(c, r)
        block.set_rate(c, r)

    # A deterministic class pattern chopped into ragged block sizes.
    classes = [(3 * i + i // 7) % 3 for i in range(500)]
    scalar_out = [scalar.decide(c) for c in classes]

    block_out = []
    i = 0
    for size in (1, 7, 3, 64, 2, 100, 13, 310):
        chunk = classes[i:i + size]
        if not chunk:
            break
        admitted = block.admit_block(chunk, classify=lambda c: c)
        # Reconstruct per-frame decisions from the admitted sublist
        # (within a class the admitted subset is a first-k prefix, so
        # greedy matching recovers the exact positions).
        remaining = list(admitted)
        for c in chunk:
            if remaining and remaining[0] == c:
                remaining.pop(0)
                block_out.append(True)
            else:
                block_out.append(False)
        i += size
    assert i >= len(classes)

    # Identical accumulators and counters => identical future behaviour.
    assert scalar._acc == block._acc
    assert scalar.admitted == block.admitted
    assert scalar.shed == block.shed
    # Per-class admitted counts match exactly (block admits first-k per
    # class within a burst; the scalar pattern may differ inside one
    # burst but totals and carried credit must agree).
    for c in range(3):
        assert (sum(1 for cc, d in zip(classes, scalar_out)
                    if cc == c and d)
                == sum(1 for cc, d in zip(classes, block_out)
                       if cc == c and d))


def test_conservation_across_mixed_scalar_and_block_calls():
    ctl = _controller("adaptive-sample")
    for c in range(3):
        ctl.set_rate(c, (0.11, 0.5, 0.999)[c])
    for i in range(97):
        ctl.decide(i % 3)
    ctl.admit_block([i % 3 for i in range(211)], classify=lambda c: c)
    for c in range(3):
        assert ctl.offered[c] == ctl.admitted[c] + ctl.shed[c]
    assert sum(ctl.offered) == 97 + 211


def test_full_rate_block_fast_path_returns_all_frames():
    ctl = _controller("priority-shed")
    frames = ["a", "b", "c"]
    assert ctl.admit_block(frames, classify=lambda f: 0) == frames
    assert ctl.shed == [0, 0, 0]


# ---------------------------------------------------------------------------
# AIMD policy semantics
# ---------------------------------------------------------------------------

def test_priority_shed_tightens_bottom_up_and_spares_control():
    ctl = _controller("priority-shed", floor=0.05, decrease=0.5)
    for _ in range(50):
        ctl._tighten()
    assert ctl.rates[0] == 1.0                  # control never shed
    assert ctl.rates[1] == pytest.approx(0.05, abs=1e-4)
    assert ctl.rates[2] == pytest.approx(0.05, abs=1e-4)
    # Order: bulk must reach the floor before interactive is touched.
    ctl2 = _controller("priority-shed", floor=0.05, decrease=0.5)
    ctl2._tighten()
    assert ctl2.rates[2] < 1.0 and ctl2.rates[1] == 1.0


def test_tail_drop_is_class_blind():
    ctl = _controller("tail-drop", decrease=0.5)
    ctl._tighten()
    assert ctl.rates == pytest.approx([0.5, 0.5, 0.5], abs=1e-4)


def test_adaptive_sample_sheds_lower_classes_faster():
    ctl = _controller("adaptive-sample", decrease=0.5, floor=0.05)
    for _ in range(3):
        ctl._tighten()
    assert ctl.rates[0] == 1.0
    assert ctl.rates[0] > ctl.rates[1] > ctl.rates[2] > 0
    # Every class keeps a deterministic trickle even fully tightened.
    for _ in range(60):
        ctl._tighten()
    assert min(ctl.rates[1:]) >= 0.05 - 1e-9


def test_relax_restores_rates_additively():
    ctl = _controller("tail-drop", increase=0.25, decrease=0.5)
    ctl._tighten()
    ctl._relax()
    assert ctl.rates == pytest.approx([0.75, 0.75, 0.75], abs=1e-4)
    for _ in range(10):
        ctl._relax()
    assert ctl.rates == [1.0, 1.0, 1.0]


def test_maybe_update_rate_limits_and_follows_the_band():
    ctl = _controller("tail-drop", band_lo=0.25, band_hi=0.75,
                      update_interval=0.05, ewma_weight=0.0)
    assert ctl.maybe_update(0.00, lambda: 0.9)      # above band: tighten
    assert not ctl.maybe_update(0.01, lambda: 0.9)  # rate-limited
    assert ctl.tightens == 1 and ctl.rates[0] < 1.0
    assert ctl.maybe_update(0.06, lambda: 0.1)      # below band: relax
    assert ctl.relaxes == 1
    assert ctl.maybe_update(0.12, lambda: 0.5)      # in band: hold
    assert ctl.tightens == 1 and ctl.relaxes == 1


def test_slo_breach_tightens_on_edge_and_pins_pressure():
    ctl = _controller("priority-shed", band_lo=0.25, band_hi=0.75)
    ctl.note_slo(True)
    assert ctl.tightens == 1                      # immediate edge tighten
    ctl.note_slo(True)
    assert ctl.tightens == 1                      # no re-tighten per poll
    # While breaching, updates tighten even at comfortable occupancy.
    ctl.maybe_update(0.0, lambda: 0.0)
    assert ctl.tightens == 2
    ctl.note_slo(False)
    ctl.maybe_update(1.0, lambda: 0.0)
    assert ctl.relaxes >= 1


def test_state_snapshot_is_json_ready():
    ctl = _controller("adaptive-sample")
    ctl.decide(0)
    ctl.note_slo(True)
    state = json.loads(json.dumps(ctl.state()))
    assert state["policy"] == "adaptive-sample"
    assert state["slo_pressure"] is True
    assert state["classes"]["control"]["admitted"] == 1


# ---------------------------------------------------------------------------
# Config plumbing
# ---------------------------------------------------------------------------

def test_build_controller_none_installs_nothing():
    assert build_controller("none") is None
    assert build_controller("none", {"band_hi": 0.5}) is None


def test_build_controller_policy_conflict_and_validation():
    with pytest.raises(ConfigError, match="conflicts"):
        build_controller("tail-drop", {"policy": "priority-shed"})
    with pytest.raises(ConfigError, match="unknown overload policy"):
        build_controller("meteor")
    ctl = build_controller("priority-shed", {"floor": 0.1},
                           registry=Registry())
    assert ctl.config.floor == 0.1 and ctl.config.policy == "priority-shed"


def test_overload_config_rejects_bad_values():
    for bad in ({"policy": "nope"},
                {"band_lo": 0.8, "band_hi": 0.2},
                {"increase": 0.0},
                {"decrease": 1.0},
                {"floor": 1.0},
                {"update_interval": 0.0},
                {"ewma_weight": -1.0},
                {"mystery_knob": 1}):
        with pytest.raises(ConfigError):
            OverloadConfig.from_spec({"policy": "tail-drop", **bad})
    with pytest.raises(ConfigError, match="bad overload spec JSON"):
        OverloadConfig.from_spec("{not json")


def test_lvrm_config_validates_overload_spec_eagerly():
    from repro.core.lvrm import LvrmConfig
    with pytest.raises(ConfigError):
        LvrmConfig(overload_policy="meteor")
    with pytest.raises(ConfigError):
        LvrmConfig(overload_policy="tail-drop",
                   overload_opts={"mystery_knob": 1})


# ---------------------------------------------------------------------------
# DES integration: the drill, conservation across faults, admin route
# ---------------------------------------------------------------------------

def _kill_schedule():
    return FaultSchedule.from_json(
        '{"faults": [{"t": 0.5, "kind": "kill", "vri": 1}]}')


def test_des_drill_conserves_per_class_counts_across_kill():
    """ISSUE 8 satellite: admitted + shed == offered for every class,
    with a worker killed mid-overload."""
    report = run_des_scenario(_kill_schedule(), duration=1.5,
                              rate_fps=20_000.0,
                              overload_policy="priority-shed",
                              overload_x=3.0,
                              overload_opts={"band_lo": 0.1,
                                             "band_hi": 0.4,
                                             "update_interval": 0.005})
    state = report["overload"]["state"]
    assert state["policy"] == "priority-shed"
    total_offered = 0
    for name, cls in state["classes"].items():
        assert cls["offered"] == cls["admitted"] + cls["shed"], name
        total_offered += cls["offered"]
    # The overload stage saw every captured frame.
    assert total_offered == report["captured"]
    # 3x load over a degraded monitor must actually shed something...
    assert sum(c["shed"] for c in state["classes"].values()) > 0
    # ...but never from the control class under priority-shed.
    assert state["classes"]["control"]["shed"] == 0
    assert report["faults"]["applied"] == [(0.5, "kill")]
    assert report["flows_ok"]


def test_des_drill_none_policy_keeps_legacy_path():
    report = run_des_scenario(_kill_schedule(), duration=1.0)
    assert report["overload"] == {"policy": "none", "offered_x": 1.0}


def test_des_admin_route_serves_overload_state():
    from repro.core import FixedAllocation, Lvrm, LvrmConfig, VrSpec, \
        make_socket_adapter
    from repro.hardware import DEFAULT_COSTS, Machine
    from repro.net import Testbed
    from repro.routing.prefix import Prefix
    from repro.sim import Simulator

    sim = Simulator()
    testbed = Testbed(sim)
    machine = Machine(sim, costs=DEFAULT_COSTS)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter, costs=DEFAULT_COSTS,
                config=LvrmConfig(overload_policy="adaptive-sample"))
    lvrm.add_vr(VrSpec(name="vr1",
                       subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(1))
    lvrm.start()
    status, _ctype, body = lvrm.admin_state().handle("/overload")
    assert status == 200
    view = json.loads(body)
    assert view["policy"] == "adaptive-sample"
    assert set(view["classes"]) == set(DEFAULT_CLASSES)

    # Without a controller the same route serves an empty object.
    from repro.obs.admin import AdminState
    from repro.obs.registry import default_registry
    status, _ctype, body = AdminState(
        default_registry()).handle("/overload")
    assert status == 200 and json.loads(body) == {}


# ---------------------------------------------------------------------------
# Runtime integration (real worker processes)
# ---------------------------------------------------------------------------

@pytest.mark.timeout(60)
def test_runtime_dispatch_sheds_per_block_and_serves_admin():
    from repro.runtime import RuntimeLvrm

    bulk = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                           ip_to_int("10.2.1.2"), 10000, 40000, b"bulk")
    ctl_frame = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                                ip_to_int("10.2.1.2"), 10000, 179, b"bgp")
    # band [0, 1] freezes the AIMD loop (occupancy can never leave the
    # band), so the pinned rate below stays exactly where we put it.
    with RuntimeLvrm(n_vris=1, worker_lifetime=40.0,
                     overload_policy="priority-shed",
                     overload_opts={"band_lo": 0.0,
                                    "band_hi": 1.0}) as lvrm:
        ctl = lvrm.overload
        assert ctl is not None
        # Pin bulk to a trickle so shedding is observable immediately.
        ctl.set_rate(2, 0.25)
        n = lvrm.dispatch_many([bulk] * 8 + [ctl_frame] * 2)
        assert n == 4                       # 2 of 8 bulk + both control
        assert ctl.shed[2] == 6 and ctl.shed[0] == 0
        # Scalar path sheds read as a False return (backpressure).
        results = [lvrm.dispatch(bulk) for _ in range(8)]
        assert results.count(True) == 2
        state = json.loads(lvrm.admin_state().handle("/overload")[2])
        assert state["classes"]["bulk"]["shed"] == 12
        for cls in state["classes"].values():
            assert cls["offered"] == cls["admitted"] + cls["shed"]
        out = lvrm.drain_until(6, timeout=20.0)
        assert len(out) == 6                # everything admitted forwards


@pytest.mark.timeout(120)
def test_runtime_scenario_drill_conserves_and_resumes():
    from repro.faults.scenario import run_runtime_scenario

    report = run_runtime_scenario(_kill_schedule(), duration=2.0,
                                  overload_policy="tail-drop",
                                  overload_x=4.0)
    state = report["overload"]["state"]
    for name, cls in state["classes"].items():
        assert cls["offered"] == cls["admitted"] + cls["shed"], name
    assert sum(c["offered"] for c in state["classes"].values()) \
        == report["offered"]
    assert report["resumed_ok"]
