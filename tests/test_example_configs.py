"""The shipped example configuration files must parse and behave."""

import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import VrSpec, VrType
from repro.core.click import parse_click_config
from repro.net.addresses import ip_to_int
from repro.net.frame import Frame, PROTO_TCP, PROTO_UDP
from repro.routing import Prefix, RouteTable, dump_map_file, load_map_file, parse_map_lines

CONFIGS = pathlib.Path(__file__).parent.parent / "examples" / "configs"


def test_department_map_file_loads_from_disk():
    routes, arp = load_map_file(str(CONFIGS / "department.map"))
    assert len(routes) == 4
    assert routes.lookup(ip_to_int("10.2.1.9")) == 1
    assert routes.lookup(ip_to_int("10.1.7.7")) == 0
    assert arp.resolve(ip_to_int("10.2.2.2"), now=0.0) == 0x020000000202


def test_department_map_drives_a_vr_spec():
    lines = (CONFIGS / "department.map").read_text().splitlines()
    spec = VrSpec(name="dept", subnets=(Prefix.parse("10.1.0.0/16"),),
                  map_lines=tuple(lines))
    router = spec.build_router()
    frame = Frame(84, ip_to_int("10.1.1.2"), ip_to_int("10.2.2.9"))
    assert router.process(frame)
    assert frame.out_iface == 1


def test_firewall_click_config_parses_and_enforces():
    cfg = parse_click_config((CONFIGS / "firewall.click").read_text())
    assert cfg.n_elements == 8

    def run(src, proto):
        return cfg.run(Frame(84, ip_to_int(src), ip_to_int("10.2.1.2"),
                             proto=proto))

    assert run("10.1.1.2", PROTO_UDP) is not None       # clean UDP
    assert run("10.1.1.70", PROTO_UDP) is None          # quarantined
    assert run("10.1.1.2", PROTO_TCP) is None           # non-UDP
    assert cfg.elements["cnt"].count == 1


def test_firewall_config_usable_as_click_vr():
    spec = VrSpec(name="fw", subnets=(Prefix.parse("10.1.0.0/16"),),
                  vr_type=VrType.CLICK,
                  click_config=(CONFIGS / "firewall.click").read_text())
    router = spec.build_router()
    ok = Frame(84, ip_to_int("10.1.1.2"), ip_to_int("10.2.1.2"),
               proto=PROTO_UDP)
    assert router.process(ok)


_prefix = st.tuples(st.integers(0, 0xFFFFFFFF), st.integers(1, 32))


@given(st.lists(_prefix, min_size=1, max_size=20, unique=True))
@settings(max_examples=60, deadline=None)
def test_map_file_dump_parse_round_trip_property(prefix_specs):
    """Property: any route table survives a dump/parse cycle intact."""
    table = RouteTable()
    for i, (net, plen) in enumerate(prefix_specs):
        table.add(Prefix(net, plen), i % 4)
    text = dump_map_file(table)
    back, _arp = parse_map_lines(text.splitlines())
    assert sorted(back) == sorted(table)


def test_federation_pair_config_parses_and_is_runnable():
    from repro.cluster import FederationConfig

    cfg = FederationConfig.from_json(
        (CONFIGS / "federation_pair.json").read_text())
    assert cfg.description
    (fault,) = cfg.faults
    assert fault.kind == "kill_instance" and fault.instance == 0
    assert 0 < fault.t < cfg.duration
    # Off the heartbeat/probe grid, so the measured failover time is
    # honest (detection latency > 0) and the blackout loses frames.
    assert fault.t % (cfg.supervision_period / 4) != 0


def test_federation_pair_config_drives_a_short_failover():
    import dataclasses

    from repro.cluster import FederationConfig, run_des_failover_scenario
    from repro.faults import FaultSchedule, FaultSpec

    cfg = FederationConfig.from_json(
        (CONFIGS / "federation_pair.json").read_text())
    # The shipped drill at test scale: same shape, shorter run.
    short = dataclasses.replace(
        cfg, duration=1.2, rate_fps=3000.0,
        faults=FaultSchedule((FaultSpec(t=0.503, kind="kill_instance",
                                        instance=0),)))
    report = run_des_failover_scenario(short)
    assert report["ok"]
    assert report["failover"]["within_budget"]
    assert report["routes"]["relearned_after_promotion"] == 0


def test_overload_priority_config_parses_and_classifies():
    import json

    from repro.overload import OverloadConfig, PriorityClassifier

    spec = json.loads(
        (CONFIGS / "overload_priority.json").read_text())["overload"]
    cfg = OverloadConfig.from_spec(spec)
    assert cfg.policy == "priority-shed"
    assert 0 <= cfg.band_lo < cfg.band_hi <= 1
    clf = PriorityClassifier.from_spec(cfg.classifier)
    assert clf.classes == ("control", "interactive", "bulk")
    assert clf.classify(PROTO_TCP, 33000, 179) == 0     # BGP is control
    assert clf.classify(PROTO_UDP, 33000, 5000) == 1    # interactive band
    assert clf.classify(PROTO_UDP, 33000, 40000) == 2   # bulk fall-through


def test_overload_priority_config_drives_a_short_drill():
    import json

    from repro.faults import FaultSchedule
    from repro.faults.scenario import run_des_scenario

    spec = json.loads(
        (CONFIGS / "overload_priority.json").read_text())["overload"]
    report = run_des_scenario(FaultSchedule((), "no faults"),
                              duration=0.6, overload_x=4.0,
                              overload_policy=spec["policy"],
                              overload_opts=spec)
    state = report["overload"]["state"]
    assert state["policy"] == "priority-shed"
    # The shipped config's conservation + protection contract.
    for cls in state["classes"].values():
        assert cls["offered"] == cls["admitted"] + cls["shed"]
    assert state["classes"]["control"]["shed"] == 0
