"""Tests for the byte-accurate packet codecs and checksums."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import checksum as ck
from repro.net.addresses import ip_to_int
from repro.net.frame import PROTO_TCP, PROTO_UDP
from repro.net.packet import (EthernetHeader, IcmpEcho, Ipv4Header,
                              TcpHeader, UdpHeader, build_ethernet,
                              build_icmp_echo, build_ipv4, build_tcp,
                              build_udp, build_udp_frame, parse_ethernet,
                              parse_icmp_echo, parse_ipv4, parse_tcp,
                              parse_udp)

SRC = ip_to_int("10.1.1.2")
DST = ip_to_int("10.2.1.2")


# -- checksum -----------------------------------------------------------------

@given(st.binary(min_size=0, max_size=300))
@settings(max_examples=200, deadline=None)
def test_checksum_matches_reference(data):
    assert ck.checksum(data) == ck.checksum_reference(data)


@given(st.binary(min_size=2, max_size=100).filter(lambda b: len(b) % 2 == 0))
@settings(max_examples=100, deadline=None)
def test_checksum_verifies_own_output(data):
    # Append the checksum to word-aligned data; the whole must verify
    # (RFC 1071 property; odd lengths would shift word alignment).
    csum = ck.checksum(data)
    whole = data + csum.to_bytes(2, "big")
    assert ck.verify(whole)


def test_checksum_known_vector():
    # Classic example from RFC 1071 discussions.
    data = bytes.fromhex("0001f203f4f5f6f7")
    assert ck.checksum(data) == 0x220D


# -- ethernet --------------------------------------------------------------------

def test_ethernet_round_trip():
    hdr = EthernetHeader(dst_mac=0x020000000002, src_mac=0x020000000001)
    wire = build_ethernet(hdr, b"payload")
    parsed, rest = parse_ethernet(wire)
    assert parsed == hdr
    assert rest == b"payload"


def test_ethernet_short_frame_rejected():
    with pytest.raises(ValueError):
        parse_ethernet(b"short")


# -- ipv4 -------------------------------------------------------------------------

def test_ipv4_round_trip_and_checksum():
    hdr = Ipv4Header(SRC, DST, PROTO_UDP, ttl=17, ident=99)
    wire = build_ipv4(hdr, b"x" * 10)
    parsed, payload = parse_ipv4(wire)
    assert parsed.src_ip == SRC and parsed.dst_ip == DST
    assert parsed.ttl == 17 and parsed.ident == 99
    assert payload == b"x" * 10


def test_ipv4_corrupt_checksum_rejected():
    wire = bytearray(build_ipv4(Ipv4Header(SRC, DST, PROTO_UDP), b"hi"))
    wire[8] ^= 0xFF  # flip TTL without fixing the checksum
    with pytest.raises(ValueError, match="checksum"):
        parse_ipv4(bytes(wire))


def test_ipv4_wrong_version_rejected():
    wire = bytearray(build_ipv4(Ipv4Header(SRC, DST, PROTO_UDP), b""))
    wire[0] = 0x65  # version 6
    with pytest.raises(ValueError, match="IPv4"):
        parse_ipv4(bytes(wire))


# -- udp ---------------------------------------------------------------------------

@given(st.binary(max_size=64), st.integers(1, 65535), st.integers(1, 65535))
@settings(max_examples=50, deadline=None)
def test_udp_round_trip(payload, sport, dport):
    wire = build_udp(UdpHeader(sport, dport), payload, SRC, DST)
    hdr, out = parse_udp(wire, SRC, DST)
    assert (hdr.src_port, hdr.dst_port) == (sport, dport)
    assert out == payload


def test_udp_bad_checksum_rejected():
    wire = bytearray(build_udp(UdpHeader(1, 2), b"data", SRC, DST))
    wire[-1] ^= 0xFF
    with pytest.raises(ValueError, match="checksum"):
        parse_udp(bytes(wire), SRC, DST)


# -- tcp ---------------------------------------------------------------------------

def test_tcp_round_trip():
    hdr = TcpHeader(80, 12345, seq=7, ack=9,
                    flags=TcpHeader.ACK | TcpHeader.PSH, window=4096)
    wire = build_tcp(hdr, b"segment", SRC, DST)
    parsed, payload = parse_tcp(wire, SRC, DST)
    assert parsed == hdr
    assert payload == b"segment"


def test_tcp_corruption_rejected():
    wire = bytearray(build_tcp(TcpHeader(1, 2, 0, 0), b"seg", SRC, DST))
    wire[-2] ^= 0x01
    with pytest.raises(ValueError, match="checksum"):
        parse_tcp(bytes(wire), SRC, DST)


# -- icmp --------------------------------------------------------------------------

def test_icmp_echo_round_trip():
    echo = IcmpEcho(is_reply=False, ident=42, seq=7, payload=b"ping")
    parsed = parse_icmp_echo(build_icmp_echo(echo))
    assert parsed == echo
    reply = IcmpEcho(is_reply=True, ident=42, seq=7)
    assert parse_icmp_echo(build_icmp_echo(reply)).is_reply


# -- whole frame ---------------------------------------------------------------------

def test_udp_frame_builds_and_parses_end_to_end():
    wire = build_udp_frame(0x02_00_00_00_00_01, 0x02_00_00_00_00_02,
                           SRC, DST, 1000, 2000, b"hello")
    eth, ip_bytes = parse_ethernet(wire)
    ip, udp_bytes = parse_ipv4(ip_bytes)
    udp, payload = parse_udp(udp_bytes, ip.src_ip, ip.dst_ip)
    assert payload == b"hello"
    assert udp.dst_port == 2000
    assert ip.proto == PROTO_UDP
