"""Tests for socket-adapter capture backends."""

import pytest

from repro.core import make_socket_adapter
from repro.errors import ConfigError
from repro.hardware import DEFAULT_COSTS
from repro.net import (MemoryCapture, Nic, PfRingCapture, RawSocketCapture)
from repro.net.frame import Frame
from repro.traffic.trace import synthetic_trace


def _frame(size=84):
    return Frame(size, 1, 2)


# -- factory --------------------------------------------------------------------

def test_factory_builds_all_variants(sim, testbed):
    for name, cls in (("raw-socket", RawSocketCapture),
                      ("pf-ring", PfRingCapture),
                      ("pf-ring-1.0", PfRingCapture)):
        backend = make_socket_adapter(name, sim, DEFAULT_COSTS,
                                      nics=testbed.gw_nics)
        assert isinstance(backend, cls)
    mem = make_socket_adapter("memory", sim, DEFAULT_COSTS,
                              trace=synthetic_trace(1))
    assert isinstance(mem, MemoryCapture)


def test_factory_validates(sim, testbed):
    with pytest.raises(ConfigError):
        make_socket_adapter("teleport", sim, DEFAULT_COSTS,
                            nics=testbed.gw_nics)
    with pytest.raises(ConfigError):
        make_socket_adapter("pf-ring", sim, DEFAULT_COSTS)  # no NICs
    with pytest.raises(ConfigError):
        make_socket_adapter("memory", sim, DEFAULT_COSTS)  # no trace


# -- cost profiles --------------------------------------------------------------------

def test_raw_socket_costs_exceed_pfring(sim, testbed):
    raw = RawSocketCapture(sim, testbed.gw_nics, DEFAULT_COSTS)
    pfr = PfRingCapture(sim, testbed.gw_nics, DEFAULT_COSTS)
    f = _frame(1538)
    assert raw.rx_cost(f) > pfr.rx_cost(f)
    assert raw.tx_cost(f) > pfr.tx_cost(f)
    # Raw socket pays per byte; PF_RING is size-independent.
    assert raw.rx_cost(_frame(1538)) > raw.rx_cost(_frame(84))
    assert pfr.rx_cost(_frame(1538)) == pfr.rx_cost(_frame(84))


def test_cpu_time_classes(sim, testbed):
    raw = RawSocketCapture(sim, testbed.gw_nics, DEFAULT_COSTS)
    pfr = PfRingCapture(sim, testbed.gw_nics, DEFAULT_COSTS)
    assert raw.rx_time_class == "sy" and raw.tx_time_class == "sy"
    assert pfr.rx_time_class == "us" and pfr.tx_time_class == "us"


def test_pfring_1_0_sends_via_raw_socket(sim, testbed):
    old = PfRingCapture(sim, testbed.gw_nics, DEFAULT_COSTS,
                        tx_via_raw_socket=True)
    new = PfRingCapture(sim, testbed.gw_nics, DEFAULT_COSTS)
    f = _frame(84)
    assert old.rx_cost(f) == new.rx_cost(f)
    assert old.tx_cost(f) > new.tx_cost(f)
    assert old.tx_time_class == "sy"


# -- NIC-backed polling -------------------------------------------------------------------

def test_round_robin_poll_across_nics(sim, testbed):
    backend = PfRingCapture(sim, testbed.gw_nics, DEFAULT_COSTS)
    testbed.gw_nics[0].receive(_frame())
    testbed.gw_nics[1].receive(_frame())
    testbed.gw_nics[0].receive(_frame())
    first = backend.poll()
    second = backend.poll()
    # One from each interface before returning to the first.
    assert first.in_iface != second.in_iface
    assert backend.poll() is not None
    assert backend.poll() is None
    assert not backend.exhausted  # NICs may always produce more


def test_transmit_uses_out_iface(sim, testbed):
    backend = PfRingCapture(sim, testbed.gw_nics, DEFAULT_COSTS)
    f = _frame()
    f.out_iface = 1
    assert backend.transmit(f)
    assert testbed.gw_nics[1].tx_count == 1
    bad = _frame()
    with pytest.raises(ValueError):
        backend.transmit(bad)  # out_iface unset


def test_backend_requires_nics(sim):
    with pytest.raises(ValueError):
        PfRingCapture(sim, [], DEFAULT_COSTS)


# -- memory backend -------------------------------------------------------------------------

def test_memory_backend_stamps_and_exhausts(sim):
    backend = MemoryCapture(sim, synthetic_trace(3, 84), DEFAULT_COSTS)
    sim.run(until=1.0)
    frames = [backend.poll() for _ in range(3)]
    assert all(f.t_created == 1.0 for f in frames)
    assert backend.poll() is None
    assert backend.exhausted
    assert backend.read_count == 3


def test_memory_backend_discards_on_tx(sim):
    backend = MemoryCapture(sim, synthetic_trace(1, 84), DEFAULT_COSTS)
    assert backend.transmit(_frame())
    assert backend.discarded == 1


def test_memory_backend_pacing(sim):
    backend = MemoryCapture(sim, synthetic_trace(10, 84), DEFAULT_COSTS,
                            rate_fps=1000.0)
    first = backend.poll()
    assert first is not None
    assert backend.poll() is None  # gated until 1 ms passes
    assert backend.next_available_delay() == pytest.approx(1e-3)
    sim.run(until=1.5e-3)
    assert backend.poll() is not None


def test_memory_backend_rejects_bad_rate(sim):
    with pytest.raises(ValueError):
        MemoryCapture(sim, synthetic_trace(1), DEFAULT_COSTS, rate_fps=0.0)


def test_memory_backend_cost_scales_with_size(sim):
    backend = MemoryCapture(sim, synthetic_trace(1), DEFAULT_COSTS)
    assert backend.rx_cost(_frame(1538)) > backend.rx_cost(_frame(84))
