"""Tests for addresses, frames, links, switches, NICs, and the testbed."""

import pytest

from repro.net import (Frame, Link, Nic, Switch, Testbed, int_to_ip,
                       int_to_mac, ip_to_int, mac_to_int)
from repro.net.addresses import in_subnet, subnet_of
from repro.net.frame import MAX_FRAME_SIZE, MIN_FRAME_SIZE
from repro.net.link import GIGABIT
from repro.net.testbed import IFACE_RECEIVER_SIDE, IFACE_SENDER_SIDE


# -- addresses ---------------------------------------------------------------

def test_ip_round_trip():
    for text in ("0.0.0.0", "10.1.2.3", "255.255.255.255"):
        assert int_to_ip(ip_to_int(text)) == text


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1",
                                 "01.2.3.4", "a.b.c.d", ""])
def test_ip_rejects_malformed(bad):
    with pytest.raises(ValueError):
        ip_to_int(bad)


def test_mac_round_trip():
    assert int_to_mac(mac_to_int("02:00:00:aa:bb:cc")) == "02:00:00:aa:bb:cc"


def test_in_subnet():
    net = ip_to_int("10.1.0.0")
    assert in_subnet(ip_to_int("10.1.2.3"), net, 16)
    assert not in_subnet(ip_to_int("10.2.2.3"), net, 16)
    assert in_subnet(ip_to_int("1.2.3.4"), 0, 0)
    assert subnet_of(ip_to_int("10.1.2.3"), 24) == ip_to_int("10.1.2.0")


# -- frames ------------------------------------------------------------------------

def test_frame_size_bounds():
    Frame(MIN_FRAME_SIZE, 1, 2)
    Frame(MAX_FRAME_SIZE, 1, 2)
    with pytest.raises(ValueError):
        Frame(MIN_FRAME_SIZE - 1, 1, 2)
    with pytest.raises(ValueError):
        Frame(MAX_FRAME_SIZE + 1, 1, 2)


def test_frame_wire_time():
    f = Frame(1000, 1, 2)
    assert f.wire_time(GIGABIT) == pytest.approx(8e-6)
    with pytest.raises(ValueError):
        f.wire_time(0)


def test_frame_five_tuple_and_uid():
    a = Frame(84, 1, 2, proto=17, src_port=5, dst_port=6)
    b = Frame(84, 1, 2, proto=17, src_port=5, dst_port=6)
    assert a.five_tuple == b.five_tuple == (1, 2, 17, 5, 6)
    assert a.uid != b.uid


# -- links --------------------------------------------------------------------------

class _Sink:
    def __init__(self):
        self.frames = []

    def receive(self, frame):
        self.frames.append(frame)


def test_link_serialization_and_latency(sim):
    sink = _Sink()
    link = Link(sim, sink, bandwidth=GIGABIT, latency=5e-6)
    f = Frame(1000, 1, 2)
    assert link.send(f)
    sim.run()
    # 8 us serialization + 5 us latency.
    assert sim.now == pytest.approx(13e-6)
    assert sink.frames == [f]


def test_link_fifo_backlog(sim):
    sink = _Sink()
    link = Link(sim, sink, bandwidth=GIGABIT, latency=0.0)
    for _ in range(3):
        link.send(Frame(1000, 1, 2))
    sim.run()
    # Three frames serialize back to back: 24 us total.
    assert sim.now == pytest.approx(24e-6)
    assert len(sink.frames) == 3


def test_link_drop_tail(sim):
    sink = _Sink()
    link = Link(sim, sink, queue_frames=2, latency=0.0)
    sent = [link.send(Frame(1538, 1, 2)) for _ in range(4)]
    assert sent == [True, True, False, False]
    assert link.dropped == 2
    sim.run()
    assert len(sink.frames) == 2


def test_link_unconnected_raises(sim):
    link = Link(sim)
    with pytest.raises(RuntimeError):
        link.send(Frame(84, 1, 2))


# -- switch -------------------------------------------------------------------------

def test_switch_routes_by_subnet(sim):
    sw = Switch(sim)
    a, b = _Sink(), _Sink()
    sw.attach(0, Link(sim, a, latency=0.0))
    sw.attach(1, Link(sim, b, latency=0.0))
    sw.add_route(ip_to_int("10.1.0.0"), 16, 0)
    sw.add_route(0, 0, 1)
    sw.receive(Frame(84, 1, ip_to_int("10.1.9.9")))
    sw.receive(Frame(84, 1, ip_to_int("99.0.0.1")))
    sim.run()
    assert len(a.frames) == 1 and len(b.frames) == 1
    assert sw.forwarded == 2


def test_switch_longest_prefix_wins(sim):
    sw = Switch(sim)
    a, b = _Sink(), _Sink()
    sw.attach(0, Link(sim, a, latency=0.0))
    sw.attach(1, Link(sim, b, latency=0.0))
    sw.add_route(ip_to_int("10.0.0.0"), 8, 0)
    sw.add_route(ip_to_int("10.1.0.0"), 16, 1)
    assert sw.port_for(ip_to_int("10.1.2.3")) == 1
    assert sw.port_for(ip_to_int("10.9.2.3")) == 0


def test_switch_unroutable_counted(sim):
    sw = Switch(sim)
    sw.attach(0, Link(sim, _Sink(), latency=0.0))
    sw.add_route(ip_to_int("10.1.0.0"), 16, 0)
    sw.receive(Frame(84, 1, ip_to_int("99.9.9.9")))
    assert sw.unroutable == 1


# -- NIC ---------------------------------------------------------------------------

def test_nic_rx_ring_and_poll(sim):
    nic = Nic(sim, rx_ring_size=2)
    f1, f2, f3 = (Frame(84, 1, 2) for _ in range(3))
    nic.receive(f1)
    nic.receive(f2)
    nic.receive(f3)  # ring full -> dropped
    assert nic.rx_count == 2 and nic.rx_dropped == 1
    assert nic.poll() is f1
    assert nic.poll() is f2
    assert nic.poll() is None


def test_nic_notify_fires_once(sim):
    nic = Nic(sim)
    hits = []
    nic.notify = lambda: hits.append(sim.now)
    nic.receive(Frame(84, 1, 2))
    nic.receive(Frame(84, 1, 2))  # notify already consumed
    assert len(hits) == 1


def test_nic_transmit_requires_link(sim):
    nic = Nic(sim)
    with pytest.raises(RuntimeError):
        nic.transmit(Frame(84, 1, 2))


# -- testbed -----------------------------------------------------------------------

def test_testbed_end_to_end_paths(sim, testbed):
    got = []
    testbed.hosts["r2"].handler = lambda f: got.append(f)
    f = Frame(84, testbed.host_ip("s1"), testbed.host_ip("r2"),
              t_created=sim.now)
    f.out_iface = IFACE_RECEIVER_SIDE
    testbed.gw_nics[IFACE_RECEIVER_SIDE].transmit(f)
    sim.run(until=0.01)
    assert got == [f]


def test_testbed_sender_frames_reach_gateway(sim, testbed):
    testbed.hosts["s1"].send(Frame(84, testbed.host_ip("s1"),
                                   testbed.host_ip("r1")))
    sim.run(until=0.01)
    nic = testbed.gw_nics[IFACE_SENDER_SIDE]
    assert nic.rx_count == 1
    assert nic.poll() is not None


def test_testbed_iface_for_dst(testbed):
    assert testbed.iface_for_dst(testbed.host_ip("s1")) == IFACE_SENDER_SIDE
    assert testbed.iface_for_dst(testbed.host_ip("r1")) == IFACE_RECEIVER_SIDE


def test_testbed_rtt_in_paper_band(sim, testbed):
    """One-way host->host (via a zero-cost gateway hop) implies an RTT in
    the paper's 70-120 us band for small frames."""
    from repro.traffic import EchoResponder, Pinger
    from repro.baselines import KernelForwarder
    from repro.hardware import Machine, DEFAULT_COSTS

    machine = Machine(sim)
    KernelForwarder(sim, machine, testbed, DEFAULT_COSTS)
    EchoResponder(sim, testbed.hosts["r1"])
    pinger = Pinger(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                    count=20, frame_size=84, t_start=0.001)
    sim.run(until=0.2)
    assert pinger.lost == 0
    assert 60e-6 < pinger.mean_rtt() < 130e-6
