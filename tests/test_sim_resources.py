"""Tests for Store and Resource primitives."""

import pytest

from repro.sim import Simulator, Store
from repro.sim.resources import Resource


def test_store_fifo(sim):
    store = Store(sim)
    order = []

    def producer(sim, store):
        for i in range(4):
            yield store.put(i)
            yield sim.timeout(0.1)

    def consumer(sim, store):
        for _ in range(4):
            item = yield store.get()
            order.append(item)

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    assert order == [0, 1, 2, 3]


def test_store_capacity_blocks_putter(sim):
    store = Store(sim, capacity=1)
    events = []

    def producer(sim, store):
        yield store.put("a")
        events.append(("a-in", sim.now))
        yield store.put("b")
        events.append(("b-in", sim.now))

    def consumer(sim, store):
        yield sim.timeout(1.0)
        item = yield store.get()
        events.append((item, sim.now))

    sim.process(producer(sim, store))
    sim.process(consumer(sim, store))
    sim.run()
    # "b" cannot enter until "a" leaves at t=1.
    assert ("b-in", 1.0) in events


def test_store_try_put_drop_tail(sim):
    store = Store(sim, capacity=2)
    assert store.try_put(1) and store.try_put(2)
    assert not store.try_put(3)
    assert len(store) == 2
    assert store.try_get() == 1
    assert store.try_put(3)


def test_store_try_get_empty_returns_none(sim):
    store = Store(sim)
    assert store.try_get() is None


def test_store_invalid_capacity(sim):
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_getter_waits_for_item(sim):
    store = Store(sim)
    got = []

    def consumer(sim, store):
        item = yield store.get()
        got.append((item, sim.now))

    sim.process(consumer(sim, store))
    sim.call_in(2.0, lambda: store.try_put("late"))
    sim.run()
    assert got == [("late", 2.0)]


def test_resource_serializes(sim):
    res = Resource(sim, capacity=1)
    spans = []

    def worker(sim, res, name, hold):
        req = res.request()
        yield req
        start = sim.now
        yield sim.timeout(hold)
        req.release()
        spans.append((name, start, sim.now))

    sim.process(worker(sim, res, "a", 1.0))
    sim.process(worker(sim, res, "b", 1.0))
    sim.run()
    (n1, s1, e1), (n2, s2, e2) = spans
    assert e1 <= s2  # no overlap


def test_resource_fifo_fairness(sim):
    res = Resource(sim, capacity=1)
    order = []

    def worker(sim, res, name):
        req = res.request()
        yield req
        order.append(name)
        yield sim.timeout(0.1)
        req.release()

    for name in ("a", "b", "c"):
        sim.process(worker(sim, res, name))
    sim.run()
    assert order == ["a", "b", "c"]


def test_resource_capacity_two(sim):
    res = Resource(sim, capacity=2)
    concurrent = []

    def worker(sim, res):
        req = res.request()
        yield req
        concurrent.append(res.count)
        yield sim.timeout(1.0)
        req.release()

    for _ in range(3):
        sim.process(worker(sim, res))
    sim.run()
    assert max(concurrent) == 2


def test_resource_acquire_nowait_respects_waiters(sim):
    res = Resource(sim, capacity=1)
    token = res.acquire_nowait()
    assert token is not None
    # A blocked request queues...
    req = res.request()
    assert not req.triggered
    # ...so further fast acquisitions must refuse even after release
    # ordering: release hands over to the waiter first.
    assert res.acquire_nowait() is None
    res.release_nowait(token)
    sim.run()
    assert req.triggered
    assert res.acquire_nowait() is None  # waiter now holds it


def test_resource_invalid_capacity(sim):
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)
