"""Tests for the per-VR memory budget (the setrlimit extension)."""

import pytest

from repro.core import (FixedAllocation, Lvrm, LvrmConfig, MemoryBudget,
                        VriMemoryModel, VrSpec, make_socket_adapter)
from repro.core.allocation import DynamicFixedThresholds
from repro.errors import AllocationError, ConfigError
from repro.hardware import DEFAULT_COSTS, Machine
from repro.net import Testbed
from repro.routing.prefix import Prefix
from repro.traffic import UdpSender


def test_model_scales_with_inputs():
    model = VriMemoryModel()
    small = model.vri_bytes(queue_capacity=64, n_routes=2)
    big = model.vri_bytes(queue_capacity=1024, n_routes=2)
    assert big > small
    assert model.vri_bytes(64, 100) > model.vri_bytes(64, 2)
    with pytest.raises(ConfigError):
        model.vri_bytes(0, 1)


def test_budget_charge_and_refund():
    budget = MemoryBudget(limit_bytes=10_000_000)
    n = budget.charge_vri(1, queue_capacity=256, n_routes=2)
    assert budget.used == n
    assert budget.peak == n
    budget.charge_vri(2, queue_capacity=256, n_routes=2)
    assert budget.used == 2 * n
    assert budget.refund_vri(1) == n
    assert budget.used == n
    assert budget.peak == 2 * n  # peak sticks
    assert 0 < budget.utilization() < 1


def test_budget_rejects_overcommit():
    budget = MemoryBudget(limit_bytes=2_000_000)
    budget.charge_vri(1, queue_capacity=256, n_routes=2)
    with pytest.raises(AllocationError, match="budget exceeded"):
        budget.charge_vri(2, queue_capacity=256, n_routes=2)


def test_budget_double_charge_and_unknown_refund():
    budget = MemoryBudget(limit_bytes=10_000_000)
    budget.charge_vri(1, 64, 1)
    with pytest.raises(AllocationError):
        budget.charge_vri(1, 64, 1)
    with pytest.raises(AllocationError):
        budget.refund_vri(99)


def test_budget_validation():
    with pytest.raises(ConfigError):
        MemoryBudget(0)


def test_budget_caps_dynamic_allocation(sim, testbed):
    """Under load, allocation stops growing when memory runs out —
    the budget acts exactly like core exhaustion (hold, don't crash)."""
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(allocation_period=0.02,
                                  record_latency=False))
    # Room for exactly two VRIs.
    model = VriMemoryModel()
    per_vri = model.vri_bytes(512, 2)
    budget = MemoryBudget(limit_bytes=int(2.5 * per_vri), model=model)
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                       dummy_load=1 / 10_000.0),
                DynamicFixedThresholds(10_000.0),
                memory_budget=budget)
    lvrm.start()
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=60_000, frame_size=84, t_start=0.002)
    sim.run(until=0.3)
    # 60 Kfps over a 10 Kfps threshold wants 6 VRIs; memory allows 2.
    assert len(lvrm.all_vris()) == 2
    assert budget.available < per_vri


def test_budget_refund_on_shrink(sim, testbed):
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter, config=LvrmConfig())
    budget = MemoryBudget(limit_bytes=100_000_000)
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(3), memory_budget=budget)
    lvrm.start()
    sim.run(until=0.01)
    assert len(lvrm.all_vris()) == 3
    used_at_3 = budget.used
    monitor = lvrm._vri_monitors[0]
    monitor.destroy_vri()
    assert budget.used < used_at_3
