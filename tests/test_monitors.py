"""Unit tests for the VRI monitor and VR monitor layers."""

import pytest

from repro.core import FixedAllocation, make_balancer, VrSpec
from repro.core.allocation import DynamicFixedThresholds
from repro.core.vr_monitor import VrMonitor
from repro.core.vri_monitor import VriMonitor
from repro.errors import AllocationError
from repro.hardware import (AffinityMode, AffinityPolicy, DEFAULT_COSTS,
                            Machine)
from repro.net.addresses import ip_to_int
from repro.net.frame import Frame
from repro.routing.prefix import Prefix
from repro.sim.rng import RngRegistry


@pytest.fixture
def spec():
    return VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                  max_vris=4)


@pytest.fixture
def vri_monitor(sim, machine, spec):
    return VriMonitor(sim, spec, machine, DEFAULT_COSTS,
                      make_balancer("jsq"), lvrm_core_id=0,
                      queue_capacity=64, rng_registry=RngRegistry(),
                      on_output=lambda: None)


@pytest.fixture
def policy(machine):
    return AffinityPolicy(machine.topology, DEFAULT_COSTS, lvrm_core=0,
                          mode=AffinityMode.SIBLING_FIRST)


def _frame():
    return Frame(84, ip_to_int("10.1.1.2"), ip_to_int("10.2.1.2"))


# -- VriMonitor ----------------------------------------------------------------

def test_create_vri_binds_core_and_queues(sim, vri_monitor, policy):
    vri = vri_monitor.create_vri(policy.place(set()))
    assert vri.core.core_id in (1, 2, 3)  # sibling of LVRM core 0
    assert vri.channels.data_in.capacity == 64
    assert vri in vri_monitor.vris
    assert vri.alive


def test_create_vri_respects_max(sim, vri_monitor, policy):
    for _ in range(4):
        vri_monitor.create_vri(policy.place(vri_monitor.occupied_cores()))
    with pytest.raises(AllocationError):
        vri_monitor.create_vri(policy.place(vri_monitor.occupied_cores()))


def test_destroy_prefers_remote_socket_vri(sim, vri_monitor, policy):
    cores = []
    for _ in range(4):
        vri = vri_monitor.create_vri(
            policy.place(vri_monitor.occupied_cores()))
        cores.append(vri.core.core_id)
    # Cores 1,2,3 (siblings) then 4 (remote); remote goes first.
    victim = vri_monitor.destroy_vri()
    assert victim.core.core_id == 4
    assert not victim.alive
    assert len(vri_monitor.vris) == 3


def test_destroy_empty_raises(vri_monitor):
    with pytest.raises(AllocationError):
        vri_monitor.destroy_vri()


def test_destroy_counts_stranded_frames(sim, vri_monitor, policy):
    vri = vri_monitor.create_vri(policy.place(set()))
    # Stuff frames in without running the sim (VRI never wakes).
    for _ in range(5):
        vri.channels.data_in.try_push(_frame())
    vri_monitor.destroy_vri(vri)
    assert vri_monitor.dropped_on_destroy == 5


def test_dispatch_and_deliver(sim, vri_monitor, policy):
    vri = vri_monitor.create_vri(policy.place(set()))
    frame = _frame()
    vri_monitor.record_arrival(sim.now)
    picked = vri_monitor.pick(frame, sim.now)
    assert picked is vri
    assert vri_monitor.deliver(frame, vri, sim.now)
    assert vri_monitor.dispatched == 1
    assert vri.channels.data_in.data_count in (0, 1)  # VRI may wake


def test_deliver_queue_full_counted(sim, vri_monitor, policy):
    vri = vri_monitor.create_vri(policy.place(set()))
    # Saturate the data queue directly.
    while vri.channels.data_in.try_push(_frame()):
        pass
    assert not vri_monitor.deliver(_frame(), vri, sim.now)
    assert vri_monitor.dropped_queue_full >= 1


def test_pick_with_no_vris_raises(vri_monitor):
    with pytest.raises(AllocationError):
        vri_monitor.pick(_frame(), 0.0)


def test_service_rate_aggregates(sim, vri_monitor, policy):
    v1 = vri_monitor.create_vri(policy.place(set()))
    v2 = vri_monitor.create_vri(policy.place(vri_monitor.occupied_cores()))
    for _ in range(20):
        v1.lvrm_adapter.record_service(1e-3)
        v2.lvrm_adapter.record_service(2e-3)
    assert vri_monitor.service_rate() == pytest.approx(1500.0, rel=0.02)


# -- VrMonitor ---------------------------------------------------------------------

def _vr_monitor(sim, machine, policy, period=0.01):
    return VrMonitor(sim, machine, DEFAULT_COSTS, policy,
                     lvrm_core_id=0, period=period)


def test_vr_monitor_duplicate_vr_rejected(sim, machine, policy, vri_monitor):
    vm = _vr_monitor(sim, machine, policy)
    vm.add_vr(vri_monitor, FixedAllocation(1))
    with pytest.raises(AllocationError):
        vm.add_vr(vri_monitor, FixedAllocation(1))


def test_vr_monitor_start_vr_spawns_initial(sim, machine, policy, vri_monitor):
    vm = _vr_monitor(sim, machine, policy)
    vm.add_vr(vri_monitor, FixedAllocation(3))

    def driver():
        yield from vm.start_vr("vr1")

    sim.process(driver())
    sim.run(until=1.0)
    assert len(vri_monitor.vris) == 3
    assert vm.cores_of("vr1") == 3


def test_vr_monitor_period_gates_passes(sim, machine, policy, vri_monitor):
    vm = _vr_monitor(sim, machine, policy, period=0.5)
    vm.add_vr(vri_monitor, DynamicFixedThresholds(1000.0))
    assert vm.due(0.0)

    def driver():
        yield from vm.allocate_pass()

    sim.process(driver())
    sim.run(until=0.1)
    assert not vm.due(0.2)
    assert vm.due(0.6)
    assert vm.passes == 1


def test_vr_monitor_pass_charges_lvrm_core(sim, machine, policy, vri_monitor):
    vm = _vr_monitor(sim, machine, policy)
    vm.add_vr(vri_monitor, FixedAllocation(2))

    def driver():
        yield from vm.start_vr("vr1")
        yield from vm.allocate_pass()

    sim.process(driver())
    sim.run(until=1.0)
    core0 = machine.cores[0]
    # vfork costs are charged as system time on LVRM's core.
    assert core0.busy["sy"] >= 2 * DEFAULT_COSTS.vfork_cost * 0.99


def test_vr_monitor_alloc_latency_recorded(sim, machine, policy, vri_monitor):
    vm = _vr_monitor(sim, machine, policy, period=0.001)
    vm.add_vr(vri_monitor, DynamicFixedThresholds(100.0))
    # Report a high arrival rate so the allocator wants to grow.
    t = [0.0]

    def feed_arrivals():
        for _ in range(50):
            vri_monitor.record_arrival(sim.now)
            yield sim.timeout(1e-4)  # 10 kHz >> 100 fps threshold
        yield from vm.start_vr("vr1")
        yield from vm.allocate_pass()
        yield from vm.allocate_pass()

    sim.process(feed_arrivals())
    sim.run(until=1.0)
    assert len(vm.alloc_latency) >= 1
    # Reaction dominated by vfork: within the paper's ~900 us band.
    assert vm.alloc_latency.max() < 1.2e-3
