"""Tests for the ASCII chart renderer and result chart/JSON helpers."""

import pytest

from repro.experiments.common import ExperimentResult
from repro.metrics.plot import ascii_chart, ascii_steps


def test_chart_renders_marks_and_axes():
    out = ascii_chart({"a": ([0, 1, 2], [0.0, 5.0, 10.0])},
                      width=20, height=6, title="T", x_label="x",
                      y_label="y")
    assert "T" in out
    assert "*" in out
    assert "10" in out and "0" in out
    assert "*=a" in out
    lines = out.splitlines()
    # grid rows + axis + labels + title + legend
    assert len(lines) == 6 + 4


def test_chart_multiple_series_get_distinct_marks():
    out = ascii_chart({
        "up": ([0, 1], [0.0, 1.0]),
        "down": ([0, 1], [1.0, 0.0]),
    }, width=16, height=5)
    assert "*=up" in out and "o=down" in out
    assert "o" in out.splitlines()[0] or "o" in out


def test_chart_flat_series_does_not_divide_by_zero():
    out = ascii_chart({"flat": ([0, 1, 2], [5.0, 5.0, 5.0])},
                      width=12, height=4)
    assert "*" in out


def test_chart_validation():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"a": ([], [])})
    with pytest.raises(ValueError):
        ascii_chart({"a": ([1], [1.0])}, width=2, height=2)


def test_steps_holds_values_between_samples():
    out = ascii_steps([0.0, 1.0], [1.0, 3.0], width=20, height=5)
    # Both levels must appear (the hold is drawn, not just two points).
    star_cols = [line.count("*") for line in out.splitlines()]
    assert sum(star_cols) >= 15


def test_steps_validation():
    with pytest.raises(ValueError):
        ascii_steps([], [])
    with pytest.raises(ValueError):
        ascii_steps([1.0], [1.0, 2.0])


def test_result_chart_grouping():
    r = ExperimentResult("e", "t", columns=("x", "y", "who"))
    r.add(0, 1.0, "a")
    r.add(1, 2.0, "a")
    r.add(0, 3.0, "b")
    out = r.chart("x", "y", group_by="who", width=16, height=5)
    assert "*=a" in out and "o=b" in out
    out2 = r.chart("x", "y", width=16, height=5)
    assert "*=all" in out2


def test_result_to_dict_round_trips_via_json():
    import json

    r = ExperimentResult("e", "t", columns=("a",))
    r.add(1.5)
    r.notes.append("note")
    blob = json.dumps(r.to_dict())
    back = json.loads(blob)
    assert back["exp_id"] == "e"
    assert back["rows"] == [[1.5]]
    assert back["notes"] == ["note"]
