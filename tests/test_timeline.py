"""Tests for time-series recording."""

import numpy as np
import pytest

from repro.sim.timeline import RateCounter, StepSeries, Timeline


def test_timeline_basic_stats():
    tl = Timeline("t")
    for i in range(10):
        tl.record(i * 0.1, float(i))
    assert len(tl) == 10
    assert tl.mean() == pytest.approx(4.5)
    assert tl.min() == 0.0
    assert tl.max() == 9.0
    assert tl.percentile(50) == pytest.approx(4.5)


def test_timeline_empty_stats_are_nan():
    tl = Timeline()
    assert np.isnan(tl.mean())
    assert np.isnan(tl.max())


def test_timeline_as_arrays():
    tl = Timeline()
    tl.record(1.0, 2.0)
    times, values = tl.as_arrays()
    assert times.tolist() == [1.0]
    assert values.tolist() == [2.0]


def test_step_series_value_at():
    s = StepSeries()
    s.record(0.0, 1.0)
    s.record(5.0, 3.0)
    assert s.value_at(0.0) == 1.0
    assert s.value_at(4.999) == 1.0
    assert s.value_at(5.0) == 3.0
    assert s.value_at(100.0) == 3.0


def test_step_series_before_first_sample_raises():
    s = StepSeries()
    s.record(1.0, 1.0)
    with pytest.raises(ValueError):
        s.value_at(0.5)


def test_step_series_time_average():
    s = StepSeries()
    s.record(0.0, 2.0)
    s.record(1.0, 4.0)
    # [0,1) at 2, [1,2) at 4 -> average 3 over [0,2).
    assert s.time_average(0.0, 2.0) == pytest.approx(3.0)
    assert s.time_average(1.0, 2.0) == pytest.approx(4.0)


def test_step_series_time_average_invalid_window():
    s = StepSeries()
    s.record(0.0, 1.0)
    with pytest.raises(ValueError):
        s.time_average(1.0, 1.0)


def test_rate_counter_bins():
    rc = RateCounter(0.5)
    for t in (0.1, 0.2, 0.6, 1.4):
        rc.record(t)
    rates = rc.rates()
    assert rates.tolist() == [4.0, 2.0, 2.0]
    assert rc.total() == 4
    assert rc.bin_centers().tolist() == [0.25, 0.75, 1.25]


def test_rate_counter_before_t0_rejected():
    rc = RateCounter(1.0, t0=5.0)
    with pytest.raises(ValueError):
        rc.record(4.0)


def test_rate_counter_invalid_bin():
    with pytest.raises(ValueError):
        RateCounter(0.0)
