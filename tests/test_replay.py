"""The deterministic record/replay plane (``repro.replay``).

Covers the recorder's logical-clock stamping, the JSONL/Chrome-trace
round trip of the new replay event kinds (including binary payload
escaping), the forced-schedule replayer's bit-identical counter
verification, the offline happens-before race checker (clean traces
stay clean; the three seeded conflict classes are flagged), the
sequence-gap accounting satellites, the SLO watchdog's admin view and
breach auto-dump, and the end-to-end acceptance drill: a recorded
runtime kill fault replays through the DES twin with identical
counters and zero races.
"""

import json
import pathlib
import subprocess
import sys

import pytest

from repro.obs.trace import TRACER, PH_COUNTER, TraceEvent
from repro.replay import (EPOCH_PREFIXES, ReplayRecorder, SUMMARY_EVENT,
                          build_hb, check_races, load_trace, replay_events,
                          replay_trace, save_trace)

REPO = pathlib.Path(__file__).resolve().parent.parent


def _ev(name, track, seq, **args):
    """A hand-stamped trace event for synthetic traces."""
    e = TraceEvent(name, ts=float(seq), track=track, args=args)
    e.seq = seq
    return e


def _summary(per_vri=None, dispatched=0, drained=0, shed=0, reclaimed=0,
             failovers=0, restarts=0, degraded=0, faults=0,
             per_class=None, spans=0):
    return {
        "per_vri": per_vri or {},
        "totals": {"dispatched": dispatched, "drained": drained,
                   "shed": shed, "reclaimed": reclaimed},
        "supervisor": {"failovers": failovers, "restarts": restarts,
                       "degraded": degraded},
        "faults": faults,
        "per_class": per_class or {},
        "spans": spans,
    }


def _summary_ev(seq, counters):
    e = TraceEvent(SUMMARY_EVENT, ts=0.0, ph=PH_COUNTER, cat="replay",
                   track="replay", args=counters)
    e.seq = seq
    return e


# ---------------------------------------------------------------------------
# The recorder: total order, per-track clocks, epochs
# ---------------------------------------------------------------------------

def test_recorder_stamps_seq_clk_and_epoch():
    with ReplayRecorder() as rec:
        TRACER.instant("ring.push", ts=0.1, cat="replay", track="lvrm",
                       vri=1, n=4)
        TRACER.instant("ctrl.recv", ts=0.2, cat="replay", track="lvrm",
                       kind=5, src=1, dst=0)
        TRACER.instant("fault.inject", ts=0.3, cat="fault", track="lvrm",
                       kind="kill", vri=1)
        TRACER.instant("supervisor.failover", ts=0.4, cat="replay",
                       track="lvrm", vri=1)
        TRACER.instant("slo.breach", ts=0.5, cat="slo", track="slo",
                       rule="no-drops")
    events = rec.events
    # seq is a 1-based total order over the whole recording.
    assert [e.seq for e in events] == [1, 2, 3, 4, 5]
    # clk is per-track program order.
    assert [e.clk for e in events] == [1, 2, 3, 4, 1]
    # The epoch advances on fault injections and supervisor decisions.
    assert [e.epoch for e in events] == [0, 0, 1, 2, 2]


def test_recorder_epoch_prefixes_cover_cluster_decisions():
    rec = ReplayRecorder()
    for name in ("cluster.elect", "cluster.vip_move"):
        assert any(name.startswith(p) for p in EPOCH_PREFIXES)
    for name in ("ring.push", "ctrl.send", "cluster.replicate"):
        assert not any(name.startswith(p) for p in EPOCH_PREFIXES)
    del rec


def test_recorder_start_stop_restores_tracing_and_rejects_double_attach():
    assert not TRACER.enabled
    rec = ReplayRecorder().start()
    try:
        assert TRACER.enabled and TRACER.replay is rec
        with pytest.raises(RuntimeError):
            rec.start()
        with pytest.raises(RuntimeError):
            ReplayRecorder().start()  # one recording at a time
    finally:
        rec.stop()
    assert not TRACER.enabled and TRACER.replay is None
    rec.stop()  # idempotent


def test_recorder_finalize_appends_summary_and_state_reports_it():
    with ReplayRecorder() as rec:
        TRACER.instant("ring.push", ts=0.0, cat="replay", track="lvrm",
                       vri=0, n=1)
        assert rec.state()["recording"] and not rec.state()["finalized"]
        rec.finalize(_summary(dispatched=1))
    last = rec.events[-1]
    assert last.name == SUMMARY_EVENT and last.seq == 2
    assert last.args["totals"]["dispatched"] == 1
    state = rec.state()
    assert state == {"recording": False, "events": 2, "seq": 2,
                     "epoch": 0, "tracks": {"lvrm": 1, "replay": 1},
                     "finalized": True}


# ---------------------------------------------------------------------------
# Export round trip of the replay event kinds
# ---------------------------------------------------------------------------

def test_trace_roundtrip_preserves_stamps_and_binary_args(tmp_path):
    with ReplayRecorder() as rec:
        TRACER.instant("ctrl.send", ts=0.1, cat="replay", track="lvrm",
                       kind=7, src=0, dst=1, payload=b"\x00\xffraw\n")
        TRACER.instant("fault.inject", ts=0.2, cat="fault", track="lvrm",
                       kind="kill", vri=2)
        rec.finalize(_summary())
    path = tmp_path / "trace.jsonl"
    rec.save(str(path))
    back = load_trace(str(path))
    assert [e.to_dict() for e in back] == [e.to_dict() for e in rec.events]
    assert back[0].args["payload"] == b"\x00\xffraw\n"
    assert [e.seq for e in back] == [1, 2, 3]
    assert [e.epoch for e in back] == [0, 1, 1]
    # The JSONL itself stays pure ASCII-safe JSON, one event per line.
    for line in path.read_text().splitlines():
        json.loads(line)


def test_chrome_trace_surfaces_logical_clocks(tmp_path):
    from repro.obs.export import write_chrome_trace

    with ReplayRecorder() as rec:
        TRACER.instant("ring.pop", ts=0.1, cat="replay", track="lvrm",
                       vri=1, n=8)
    path = tmp_path / "trace.json"
    write_chrome_trace(str(path), rec.events)
    doc = json.loads(path.read_text())
    (pop,) = [e for e in doc["traceEvents"]
              if e.get("name") == "ring.pop"]
    assert pop["args"]["seq"] == 1 and pop["args"]["clk"] == 1


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st


@given(payloads=st.lists(st.binary(max_size=24), min_size=1, max_size=6),
       kinds=st.lists(st.sampled_from(
           ["ctrl.send", "ctrl.recv", "ring.push", "ring.pop",
            "fault.inject", "supervisor.failover", "arena.reclaim"]),
           min_size=1, max_size=6))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_replay_events_with_binary_payloads_round_trip(payloads, kinds):
    from repro.obs.export import events_jsonl, parse_events_jsonl

    rec = ReplayRecorder().start()
    try:
        for payload, kind in zip(payloads, kinds):
            TRACER.instant(kind, ts=0.0, cat="replay", track="lvrm",
                           vri=1, payload=payload)
    finally:
        rec.stop()
    back = parse_events_jsonl(events_jsonl(rec.events))
    assert [e.to_dict() for e in back] == [e.to_dict() for e in rec.events]
    for original, parsed in zip(rec.events, back):
        assert parsed.args["payload"] == original.args["payload"]
        assert isinstance(parsed.args["payload"], bytes)


# ---------------------------------------------------------------------------
# The replayer: forced schedule, bit-identical counters
# ---------------------------------------------------------------------------

def _synthetic_drill():
    """A tiny hand-written kill drill whose summary is known exactly."""
    events = [
        _ev("worker.spawn", "lvrm", 1, vri=0),
        _ev("worker.spawn", "lvrm", 2, vri=1),
        _ev("ring.push", "lvrm", 3, vri=0, n=3),
        _ev("ring.push", "lvrm", 4, vri=1, n=2),
        _ev("ring.pop", "lvrm", 5, vri=0, n=3),
        _ev("fault.inject", "lvrm", 6, kind="kill", vri=1),
        _ev("supervisor.failover", "lvrm", 7, vri=1, reason="crash"),
        _ev("arena.reclaim", "lvrm", 8, vri=1, n=2),
        _ev("supervisor.restart", "lvrm", 9, vri=1, attempt=1),
        _ev("frame.shed", "lvrm", 10, cls="bulk", n=4),
        _ev("span.close", "lvrm", 11, vri=0),
    ]
    counters = _summary(
        per_vri={"0": {"dispatched": 3, "drained": 3},
                 "1": {"dispatched": 2, "drained": 0}},
        dispatched=5, drained=3, shed=4, reclaimed=2,
        failovers=1, restarts=1, faults=1,
        per_class={"bulk": 4}, spans=1)
    events.append(_summary_ev(12, counters))
    return events


def test_replay_reproduces_the_recorded_summary_exactly():
    report = replay_events(_synthetic_drill())
    assert report["ok"], (report["mismatches"], report["anomalies"])
    assert report["mismatches"] == [] and report["anomalies"] == []
    assert report["replayed"] == report["recorded"]
    # The forced schedule really ran through the DES engine.
    assert report["sim_time"] > 0


def test_replay_is_deterministic():
    first = replay_events(_synthetic_drill())
    second = replay_events(_synthetic_drill())
    assert first == second


def test_replay_diffs_every_divergent_counter_path():
    events = _synthetic_drill()
    events[-1].args["totals"]["dispatched"] = 99  # corrupt the record
    events[-1].args["spans"] = 7
    report = replay_events(events)
    assert not report["ok"]
    assert any(m.startswith("totals.dispatched:") for m in
               report["mismatches"])
    assert any(m.startswith("spans:") for m in report["mismatches"])


def test_replay_flags_untraced_pops_as_anomalies():
    events = [
        _ev("ring.pop", "lvrm", 1, vri=0, n=5),  # pop with no push
        _summary_ev(2, _summary(drained=5,
                                per_vri={"0": {"dispatched": 0,
                                               "drained": 5}})),
    ]
    report = replay_events(events)
    assert not report["ok"]
    assert any("untraced" in a for a in report["anomalies"])


def test_replay_without_summary_is_a_mismatch():
    report = replay_events([_ev("ring.push", "lvrm", 1, vri=0, n=1)])
    assert not report["ok"]
    assert report["mismatches"] == ["trace has no replay.summary record"]


# ---------------------------------------------------------------------------
# The happens-before checker
# ---------------------------------------------------------------------------

def test_hb_clean_single_track_trace_has_no_races():
    report = check_races(_synthetic_drill())
    assert report["n_races"] == 0 and report["n_unexplained"] == 0
    assert report["seq_gaps"] == 0 and not report["truncated"]


def test_hb_flags_seeded_restart_vs_reclaim_race():
    """The acceptance regression: a restart concurrent with an
    in-flight descriptor reclaim on the same slot's rings."""
    events = [
        _ev("supervisor.restart", "lvrm", 1, vri=1, attempt=1),
        _ev("arena.reclaim", "reclaimer", 2, vri=1, n=4),
    ]
    report = check_races(events)
    assert report["n_races"] >= 1
    assert {r["rule"] for r in report["races"]} == {"restart-vs-reclaim"}
    (race,) = [r for r in report["races"] if r["resource"] == "ring:1"]
    assert {race["a"]["name"], race["b"]["name"]} == \
        {"supervisor.restart", "arena.reclaim"}


def test_hb_flags_seeded_free_vs_borrow_race():
    events = [
        _ev("frame.borrow", "vri1", 1, off=4096),
        _ev("arena.free", "lvrm", 2, off=4096),
    ]
    report = check_races(events)
    assert report["n_races"] == 1
    assert report["races"][0]["rule"] == "free-vs-borrow"
    assert report["races"][0]["resource"] == "chunk:4096"


def test_hb_flags_seeded_replicate_vs_vip_move_race():
    events = [
        _ev("cluster.replicate", "member-a", 1, member=1),
        _ev("cluster.vip_move", "director", 2, member=1),
    ]
    report = check_races(events)
    assert report["n_races"] == 1
    assert report["races"][0]["rule"] == "replicate-vs-vip-move"


def test_hb_ring_publish_edge_orders_cross_track_push_and_pop():
    """Push and pop both write the ring, but the SPSC publish edge
    orders them — cross-track pops of covered records are no race."""
    events = [
        _ev("ring.push", "lvrm", 1, vri=2, n=4),
        _ev("ring.pop", "drainer", 2, vri=2, n=4),
    ]
    assert check_races(events)["n_races"] == 0
    graph = build_hb(events)
    assert graph.happens_before(0, 1) and not graph.happens_before(1, 0)


def test_hb_fork_and_heartbeat_edges_order_worker_lanes():
    """spawn -> worker-lane borrow -> ctrl.recv from that worker ->
    monitor free: the fork and heartbeat edges chain it all, so the
    free/borrow pair is ordered.  Dropping the receipt makes it a race."""
    ordered = [
        _ev("worker.spawn", "lvrm", 1, vri=3),
        _ev("frame.borrow", "vri3", 2, off=128),
        _ev("ctrl.recv", "lvrm", 3, kind=5, src=3, dst=0),
        _ev("arena.free", "lvrm", 4, off=128),
    ]
    assert check_races(ordered)["n_races"] == 0
    racy = [ordered[0], ordered[1],
            _ev("arena.free", "lvrm", 3, off=128)]
    report = check_races(racy)
    assert report["n_races"] == 1
    assert report["races"][0]["rule"] == "free-vs-borrow"


def test_hb_message_edge_orders_send_before_recv():
    events = [
        _ev("ctrl.send", "lvrm", 1, kind=6, src=0, dst=1),
        _ev("ctrl.recv", "vri1", 2, kind=6, src=0, dst=1),
    ]
    graph = build_hb(events)
    assert graph.happens_before(0, 1)


def test_check_races_allow_explains_known_benign_rules():
    events = [
        _ev("supervisor.restart", "lvrm", 1, vri=1),
        _ev("arena.reclaim", "reclaimer", 2, vri=1, n=1),
    ]
    report = check_races(events, allow=("restart-vs-reclaim",))
    assert report["n_races"] >= 1 and report["n_unexplained"] == 0


def test_check_races_reports_sequence_gaps():
    events = [
        _ev("ring.push", "lvrm", 1, vri=0, n=1),
        _ev("ring.pop", "lvrm", 5, vri=0, n=1),  # seqs 2-4 lost
    ]
    assert check_races(events)["seq_gaps"] == 3


# ---------------------------------------------------------------------------
# Satellite: sequence-gap accounting in the assemblers
# ---------------------------------------------------------------------------

def test_stats_assembler_counts_abandoned_partials_as_gaps():
    from repro.ipc.messages import StatsAssembler, encode_stats_chunks

    asm = StatsAssembler()
    seen = []
    asm.gap_hook = seen.append
    big = {"k" + str(i): "v" * 40 for i in range(20)}
    chunks = encode_stats_chunks(big, gen=1, max_payload=64)
    assert len(chunks) > 1
    asm.feed(0, chunks[0])              # partial gen 1 ...
    next_chunks = encode_stats_chunks(big, gen=2, max_payload=64)
    for chunk in next_chunks:           # ... abandoned by gen 2
        asm.feed(0, chunk)
    assert asm.completed == 1
    assert asm.abandoned == 1 and asm.gaps == 1 and seen == [1]


def test_stats_assembler_counts_vanished_generations_as_gaps():
    from repro.ipc.messages import StatsAssembler, encode_stats_chunks

    asm = StatsAssembler()
    for chunk in encode_stats_chunks({"a": 1}, gen=4, max_payload=64):
        asm.feed(2, chunk)
    for chunk in encode_stats_chunks({"a": 2}, gen=7, max_payload=64):
        asm.feed(2, chunk)              # gens 5 and 6 never arrived
    assert asm.completed == 2 and asm.gaps == 2
    # Contiguous generations add nothing.
    for chunk in encode_stats_chunks({"a": 3}, gen=8, max_payload=64):
        asm.feed(2, chunk)
    assert asm.gaps == 2


def test_control_event_seq_stamp_rides_the_reserved_halfword():
    from repro.ipc.messages import (ControlEvent, KIND_HEARTBEAT,
                                    decode_event, encode_event)

    stamped = ControlEvent(KIND_HEARTBEAT, 1, 0, b"hb", seq=42)
    wire = encode_event(stamped)
    back = decode_event(wire)
    assert back.seq == 42 and back.payload == b"hb"
    # Unstamped events still decode as seq 0 and wire size is unchanged.
    legacy = ControlEvent(KIND_HEARTBEAT, 1, 0, b"hb")
    assert len(encode_event(legacy)) == len(wire)
    assert decode_event(encode_event(legacy)).seq == 0
    # seq does not participate in equality (it is transport metadata).
    assert back == legacy


# ---------------------------------------------------------------------------
# Satellite: /slo admin route + breach auto-dump
# ---------------------------------------------------------------------------

def _breaching_watchdog(tmp_path=None, **kwargs):
    from repro.obs.registry import Registry
    from repro.obs.slo import SloRule, SloWatchdog

    registry = Registry()
    registry.counter("vri_dropped_fault_total", "d", vri="1").inc(50)
    registry.counter("lvrm_dispatched_total", "d").inc(100)
    rule = SloRule("no-drops", "drop_rate", 1e-3)
    return SloWatchdog([rule], registry=registry,
                       dump_dir=str(tmp_path) if tmp_path else None,
                       **kwargs)


def test_slo_state_exposes_rule_states_and_edge_timestamps():
    dog = _breaching_watchdog()
    state = dog.state()
    assert state["rules"]["no-drops"]["state"] == "unmeasured"
    dog.evaluate(now=3.5)
    state = dog.state()
    rule = state["rules"]["no-drops"]
    assert rule["state"] == "breached"
    assert rule["last_breach_ts"] == 3.5 and rule["last_clear_ts"] is None
    assert rule["last_value"] == pytest.approx(0.5)
    assert rule["breach_sweeps"] == 1 and state["evaluations"] == 1


def test_slo_route_serves_watchdog_state_and_empty_when_unwired():
    from repro.obs.admin import AdminState

    dog = _breaching_watchdog()
    dog.evaluate(now=1.0)
    status, ctype, body = AdminState(slo_fn=dog.state).handle("/slo")
    assert status == 200 and "json" in ctype
    view = json.loads(body)
    assert view["rules"]["no-drops"]["state"] == "breached"
    status, _, body = AdminState().handle("/slo")
    assert status == 200 and json.loads(body) == {}
    # The index advertises both new routes.
    _, _, body = AdminState().handle("/")
    routes = json.loads(body)["routes"]
    assert "/slo" in routes and "/replay" in routes


def test_replay_route_serves_recorder_state(tmp_path):
    from repro.obs.admin import AdminState

    with ReplayRecorder() as rec:
        TRACER.instant("ring.push", ts=0.0, cat="replay", track="lvrm",
                       vri=0, n=2)
        status, _, body = AdminState(replay_fn=rec.state).handle("/replay")
        assert status == 200
        view = json.loads(body)
        assert view["recording"] and view["events"] == 1


def test_slo_breach_dumps_flight_recorder_once_per_cooldown(tmp_path):
    dog = _breaching_watchdog(tmp_path, dump_cooldown=5.0)
    dog.evaluate(now=1.0)           # ok -> breach edge: dump
    assert dog.dumps == 1
    (dump,) = list(tmp_path.glob("slo-breach-no-drops-*.txt"))
    assert "slo breach: no-drops" in dump.read_text()
    # Clear, then re-breach inside the cooldown: no second dump.
    dog.registry.counter("vri_dropped_fault_total", "d", vri="1")  # keep
    dog._breaching["no-drops"] = False          # simulate a clear edge
    dog.evaluate(now=2.0)                       # breach edge again
    assert dog.dumps == 1
    # Past the cooldown the next edge dumps again.
    dog._breaching["no-drops"] = False
    dog.evaluate(now=7.5)
    assert dog.dumps == 2
    assert len(list(tmp_path.glob("slo-breach-no-drops-*.txt"))) == 2


def test_slo_dump_write_failure_never_breaks_the_sweep(tmp_path):
    blocked = tmp_path / "not-a-dir.txt"
    blocked.write_text("occupied")
    dog = _breaching_watchdog(blocked)          # dump_dir is a file
    assert dog.evaluate(now=1.0)                # still reports the breach
    assert dog.dumps == 1                       # attempted, swallowed


# ---------------------------------------------------------------------------
# End to end: record a real kill drill, replay it, check races
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def recorded_drill(tmp_path_factory):
    from repro.faults import FaultSchedule, FaultSpec
    from repro.faults.scenario import run_runtime_scenario

    path = tmp_path_factory.mktemp("replay") / "drill.jsonl"
    sched = FaultSchedule((FaultSpec(t=1.0, kind="kill", vri=1),),
                          "kill VRI 1 at t=1s")
    report = run_runtime_scenario(sched, duration=2.5,
                                  record_trace=str(path))
    return str(path), report


@pytest.mark.timeout(120)
def test_recorded_runtime_kill_drill_replays_bit_identically(recorded_drill):
    path, report = recorded_drill
    assert report["resumed_ok"]
    assert report["trace"] == path and report["trace_events"] > 100
    replay = replay_trace(path)
    assert replay["ok"], (replay["mismatches"], replay["anomalies"])
    assert replay["mismatches"] == [] and replay["anomalies"] == []
    recorded = replay["recorded"]
    assert recorded["supervisor"]["failovers"] == 1
    assert recorded["supervisor"]["restarts"] == 1
    assert recorded["faults"] == 1
    assert recorded["totals"]["dispatched"] > 0
    # Replaying the same trace twice is itself deterministic.
    assert replay_trace(path) == replay


@pytest.mark.timeout(120)
def test_recorded_runtime_kill_drill_has_zero_hb_races(recorded_drill):
    path, _report = recorded_drill
    events = load_trace(path)
    report = check_races(events)
    assert report["n_races"] == 0, report["races"][:5]
    assert report["n_unexplained"] == 0
    assert report["seq_gaps"] == 0 and not report["truncated"]
    # The recorder saw the supervision epoch advance through the kill.
    assert max(e.epoch for e in events) >= 2


@pytest.mark.timeout(120)
def test_cli_replay_subcommand_verifies_a_recorded_drill(
        recorded_drill, tmp_path, capsys):
    from repro.experiments.cli import main

    path, _report = recorded_drill
    out_json = tmp_path / "replay.json"
    assert main(["replay", path, "--json", str(out_json)]) == 0
    out = capsys.readouterr().out
    assert "counters          MATCH" in out
    assert "hb races          0 (0 unexplained)" in out
    doc = json.loads(out_json.read_text())
    assert doc["replay"]["ok"] and doc["races"]["n_races"] == 0


def test_cli_replay_rejects_missing_and_empty_traces(tmp_path, capsys):
    from repro.experiments.cli import main

    assert main(["replay", str(tmp_path / "missing.jsonl")]) == 2
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    assert main(["replay", str(empty)]) == 2
    capsys.readouterr()


def test_cli_replay_fails_on_a_racy_trace(tmp_path, capsys):
    from repro.experiments.cli import main

    racy = tmp_path / "racy.jsonl"
    save_trace(str(racy), [
        _ev("supervisor.restart", "lvrm", 1, vri=1),
        _ev("arena.reclaim", "reclaimer", 2, vri=1, n=1),
        _summary_ev(3, _summary(restarts=1, reclaimed=1)),
    ])
    assert main(["replay", str(racy)]) == 1
    assert "restart-vs-reclaim" in capsys.readouterr().out
    # ... unless that classification is explicitly allowed.
    assert main(["replay", str(racy),
                 "--allow", "restart-vs-reclaim"]) == 0
    # --no-races overrides the allowance.
    assert main(["replay", str(racy), "--allow", "restart-vs-reclaim",
                 "--no-races"]) == 1
    capsys.readouterr()


def test_cli_faults_rejects_record_trace_on_des_backend(capsys):
    from repro.experiments.cli import main

    rc = main(["faults", "--fault-schedule",
               str(REPO / "examples/configs/faults_kill_vri1.json"),
               "--backend", "des", "--record-trace", "/tmp/x.jsonl"])
    assert rc == 2
    assert "requires --backend runtime" in capsys.readouterr().err


def test_check_races_tool_exit_codes(tmp_path):
    clean = tmp_path / "clean.jsonl"
    save_trace(str(clean), _synthetic_drill())
    racy = tmp_path / "racy.jsonl"
    save_trace(str(racy), [
        _ev("supervisor.restart", "lvrm", 1, vri=1),
        _ev("arena.reclaim", "reclaimer", 2, vri=1, n=1),
    ])
    tool = str(REPO / "tools" / "check_races.py")
    ok = subprocess.run([sys.executable, tool, str(clean)],
                       capture_output=True, text=True)
    assert ok.returncode == 0 and "CLEAN" in ok.stdout
    bad = subprocess.run([sys.executable, tool, str(racy)],
                        capture_output=True, text=True)
    assert bad.returncode == 1 and "restart-vs-reclaim" in bad.stdout
    allowed = subprocess.run(
        [sys.executable, tool, "--allow", "restart-vs-reclaim", str(racy)],
        capture_output=True, text=True)
    assert allowed.returncode == 0 and "EXPLAINED" in allowed.stdout
