"""Tests for the pcap writer/reader."""

import io
import struct

import pytest

from repro.net.addresses import ip_to_int
from repro.net.packet import build_udp_frame
from repro.traffic.pcap import PcapWriter, read_pcap, write_pcap


def _records(n=5):
    frame = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                            ip_to_int("10.2.1.2"), 1, 2, b"payload")
    return [(0.001 * i, frame) for i in range(n)]


def test_round_trip(tmp_path):
    path = str(tmp_path / "t.pcap")
    records = _records(5)
    assert write_pcap(path, records) == 5
    back = list(read_pcap(path))
    assert len(back) == 5
    for (t0, d0), (t1, d1) in zip(records, back):
        assert t1 == pytest.approx(t0, abs=1e-6)
        assert d1 == d0


def test_writer_counts_and_timestamps():
    buf = io.BytesIO()
    w = PcapWriter(buf)
    w.write(1.9999996, b"x")  # rounds to the next second
    assert w.count == 1
    buf.seek(0)
    (ts, data), = list(read_pcap(buf))
    assert ts == pytest.approx(2.0, abs=1e-6)


def test_reader_rejects_garbage(tmp_path):
    path = str(tmp_path / "bad.pcap")
    with open(path, "wb") as fh:
        fh.write(b"\x00" * 24)
    with pytest.raises(ValueError, match="magic"):
        list(read_pcap(path))


def test_reader_rejects_truncated(tmp_path):
    path = str(tmp_path / "trunc.pcap")
    write_pcap(path, _records(1))
    with open(path, "rb") as fh:
        blob = fh.read()
    with open(path, "wb") as fh:
        fh.write(blob[:-3])
    with pytest.raises(ValueError, match="truncated"):
        list(read_pcap(path))


def test_reader_handles_big_endian():
    # Hand-build a big-endian capture of one record.
    buf = io.BytesIO()
    buf.write(struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1))
    data = b"frame-bytes!"
    buf.write(struct.pack(">IIII", 3, 500000, len(data), len(data)))
    buf.write(data)
    buf.seek(0)
    (ts, out), = list(read_pcap(buf))
    assert ts == pytest.approx(3.5)
    assert out == data


def test_negative_timestamp_rejected():
    w = PcapWriter(io.BytesIO())
    with pytest.raises(ValueError):
        w.write(-1.0, b"x")
