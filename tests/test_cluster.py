"""Federation subsystem: placement, replication, director, scenarios."""

import json

import pytest

from repro.cluster import (ClusterDirector, DeltaSource, FederationConfig,
                           RendezvousPlacement, ReplicaState, decode_delta,
                           encode_delta, run_des_failover_scenario)
from repro.errors import ConfigError
from repro.faults.injector import FaultInjector
from repro.faults.schedule import FaultSchedule, FaultSpec
from repro.obs.admin import AdminState
from repro.obs.registry import Registry
from repro.routing.prefix import Prefix
from repro.routing.sync import RouteUpdate


@pytest.fixture(scope="module", autouse=True)
def _quarantine_flight_recorder():
    """Restore the process-global flight recorder after this module.

    Other suites (test_faults) assert on the *ordering* of events in
    the global RECORDER; the director tests here deliberately trip
    ``slo.breach`` notes that must not leak past this file.
    """
    from repro.obs.recorder import RECORDER
    saved_events = RECORDER.events()
    saved_count = RECORDER.recorded
    yield
    RECORDER.clear()
    for ev in saved_events:
        RECORDER.record(ev)
    RECORDER.recorded = saved_count


# -- placement ---------------------------------------------------------------

def test_placement_is_deterministic_and_total():
    members = ["m0", "m1", "m2"]
    keys = [f"vr{i}" for i in range(40)]
    a = RendezvousPlacement(members).placement_map(keys)
    b = RendezvousPlacement(members).placement_map(keys)
    assert a == b
    assert set(a) == set(keys)
    assert set(a.values()) <= set(members)
    # Not everything piles onto one member.
    assert len(set(a.values())) == len(members)


def test_placement_minimal_disruption_on_member_add():
    """HRW contract: adding a member only moves keys *to* it."""
    keys = [f"vr{i}" for i in range(60)]
    before = RendezvousPlacement(["m0", "m1"]).placement_map(keys)
    after = RendezvousPlacement(["m0", "m1", "m2"]).placement_map(keys)
    moved = {k for k in keys if before[k] != after[k]}
    assert moved  # the new member got something
    assert all(after[k] == "m2" for k in moved)


def test_placement_weights_shift_share():
    keys = [f"vr{i}" for i in range(200)]
    even = RendezvousPlacement(["m0", "m1"]).placement_map(keys)
    heavy = RendezvousPlacement(
        ["m0", "m1"], weights={"m0": 4.0, "m1": 1.0}).placement_map(keys)
    share = sum(1 for v in heavy.values() if v == "m0")
    assert share > sum(1 for v in even.values() if v == "m0")


def test_rebalance_levels_load_deterministically():
    placement = RendezvousPlacement(["m0", "m1"])
    loads = {f"vr{i}": float(1 + i % 5) for i in range(20)}
    a = placement.rebalance(loads)
    b = RendezvousPlacement(["m0", "m1"]).rebalance(loads)
    assert a == b
    per = {"m0": 0.0, "m1": 0.0}
    for key, member in a.items():
        per[member] += loads[key]
    gap = abs(per["m0"] - per["m1"])
    # No single-key move can narrow the gap further.
    assert gap <= max(loads.values())


def test_placement_validates_members_and_weights():
    with pytest.raises(ConfigError):
        RendezvousPlacement([])
    with pytest.raises(ConfigError):
        RendezvousPlacement(["m0", "m0"])
    with pytest.raises(ConfigError):
        RendezvousPlacement(["m0"], weights={"m0": 0.0})


# -- replication -------------------------------------------------------------

def _pins():
    return [((0x0A010102, 0x0A020102, 17, 1000, 2000), 0),
            ((0x0A010202, 0x0A020202, 17, 1001, 2001), 1)]


def _routes():
    return [RouteUpdate(Prefix.parse("10.60.0.0/16"), iface=1, metric=2),
            RouteUpdate(Prefix.parse("10.61.0.0/16"), iface=0, metric=2,
                        withdraw=True)]


def test_delta_codec_round_trips():
    payload = encode_delta(7, _pins(), _routes())
    seq, pins, routes = decode_delta(payload)
    assert seq == 7
    assert pins == _pins()
    assert routes == _routes()


def test_delta_codec_rejects_truncation():
    payload = encode_delta(1, _pins(), [])
    with pytest.raises(ValueError):
        decode_delta(payload[:5])


def test_delta_source_ships_only_changes():
    source = DeltaSource()
    first = source.delta({k: s for k, s in _pins()})
    assert first is not None
    # Unchanged pin view, no routes: nothing to ship.
    assert source.delta({k: s for k, s in _pins()}) is None
    moved = {k: s + 1 for k, s in _pins()}
    payload = source.delta(moved)
    _seq, pins, _ = decode_delta(payload)
    assert len(pins) == 2 and all(s in (1, 2) for _k, s in pins)


def test_replica_state_is_idempotent_under_redelivery():
    source = DeltaSource()
    replica = ReplicaState()
    source.note_routes(_routes())
    payload = source.delta({k: s for k, s in _pins()})
    assert replica.apply(payload) is not None
    # At-least-once delivery: a replay is stale, not a double-apply.
    assert replica.apply(payload) is None
    assert replica.stale == 1
    assert replica.pins == {k: s for k, s in _pins()}
    # The withdrawn prefix must not be in the net route set.
    nets = [u.prefix for u in replica.route_updates()]
    assert Prefix.parse("10.60.0.0/16") in nets
    assert Prefix.parse("10.61.0.0/16") not in nets


# -- director ----------------------------------------------------------------

class FakeMember:
    """Scriptable member implementing the director protocol."""

    def __init__(self, member_id, series_value=1.0):
        self.member_id = member_id
        self.role = "shard"
        self.alive = True
        self.hb_age = 0.0
        self.watermark = 0
        self.pending = 0
        self.epoch = 0
        self.series_value = series_value

    def instance_alive(self):
        return self.alive

    def heartbeat_age(self, now):
        return self.hb_age

    def progress_watermark(self):
        return self.watermark

    def backlog(self):
        return self.pending

    def death_epoch(self):
        return self.epoch

    def registry_snapshot(self):
        return {"v": 1, "metrics": [{
            "name": "lvrm_forwarded_total", "kind": "counter",
            "help": "t", "labels": {}, "value": self.series_value}]}


def _director(members, **kw):
    kw.setdefault("probe_period", 0.1)
    kw.setdefault("crash_timeout", 0.2)
    kw.setdefault("hang_timeout", 0.5)
    clock = kw.pop("clock", lambda: 10.0)
    return ClusterDirector(members, clock=clock, **kw)


def test_merge_adds_instance_label_so_series_never_collide():
    """Satellite fix: identically-named series from different members
    (and from a standby across its promotion) must stay distinct."""
    a, b = FakeMember("m0", 100.0), FakeMember("m1", 7.0)
    director = _director([a, b])
    director.probe(10.0)

    def by_instance():
        return {dict(g.labels)["instance"]: g.value
                for g in director.registry.find("lvrm_forwarded_total")}

    assert by_instance() == {"m0": 100.0, "m1": 7.0}
    # m1 promotes and its counter races past m0's frozen history:
    # both eras survive under their own instance label.
    b.series_value = 500.0
    director.probe(10.1)
    assert by_instance() == {"m0": 100.0, "m1": 500.0}


def test_death_epoch_deduplicates_supervised_deaths():
    """Satellite fix: a worker death the member's supervisor already
    debounced is counted once, and never re-counted from the corpse."""
    member = FakeMember("m0")
    director = _director([member])
    member.epoch = 2
    director.probe(10.0)
    director.probe(10.1)   # same epoch: no re-count
    (counter,) = director.registry.find("cluster_deaths_total",
                                        instance="m0")
    assert counter.value == 2
    assert director.failovers == []   # intra-instance, not a failover
    member.epoch = 3
    director.probe(10.2)
    (counter,) = director.registry.find("cluster_deaths_total",
                                        instance="m0")
    assert counter.value == 3


def test_director_detects_crash_and_measures_failover():
    member = FakeMember("m0")
    promoted = []

    def on_failover(m, reason):
        promoted.append((m.member_id, reason))
        return "m1"

    director = _director([member], on_failover=on_failover,
                         clock=lambda: 10.5)
    director.probe(10.0)
    member.alive = False
    member.hb_age = 0.05
    fired = director.probe(10.5)
    assert promoted == [("m0", "crash")]
    assert fired and fired[0]["promoted"] == "m1"
    # Blackout = promotion done (10.5) - estimated death (10.45).
    assert fired[0]["failover_seconds"] == pytest.approx(0.05)
    (gauge,) = director.registry.find("cluster_failover_seconds",
                                      pair="m0->m1")
    assert gauge.value == pytest.approx(0.05)
    # A dead member is never probed (or failed) again.
    assert director.probe(11.0) == []


def test_director_detects_hang_via_progress_watermark():
    member = FakeMember("m0")
    member.pending = 10   # backlog but no progress
    times = iter([10.0, 10.0, 11.0, 11.0])
    director = _director([member], clock=lambda: next(times),
                         hang_timeout=0.5)
    director.probe(10.0)
    fired = director.probe(11.0)
    assert fired and fired[0]["reason"] == "hang"
    # Death estimate is the last progress advance, not detection time.
    assert fired[0]["death_estimate"] == 10.0


def test_failover_time_slo_rule_watches_the_gauge():
    member = FakeMember("m0")
    director = _director(
        [member], on_failover=lambda m, r: "m1", clock=lambda: 10.5,
        slo_rules=[{"name": "fast-failover", "kind": "failover_time_ms",
                    "threshold": 10.0}])
    director.probe(10.0)
    assert director.view(10.0)["slo_breaching"] == []
    member.alive = False
    member.hb_age = 0.05   # 50ms blackout > 10ms threshold
    director.probe(10.5)
    assert "fast-failover" in director.view(10.5)["slo_breaching"]


def test_cluster_route_served_by_admin_state():
    reg = Registry()
    state = AdminState(reg, cluster_fn=lambda: {"members": [], "vip": {}})
    status, ctype, body = state.handle("/cluster")
    assert status == 200 and "json" in ctype
    assert json.loads(body) == {"members": [], "vip": {}}
    # Listed on the index, empty without a federation.
    assert "/cluster" in json.loads(state.handle("/")[2])["routes"]
    assert json.loads(AdminState(reg).handle("/cluster")[2]) == {}


# -- cluster faults ----------------------------------------------------------

def test_kill_instance_fault_round_trips_and_validates():
    spec = FaultSpec(t=1.0, kind="kill_instance", instance=0)
    again = FaultSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert again == spec
    assert not spec.runtime_ok   # not injectable per-monitor
    with pytest.raises(ConfigError):
        FaultSpec(t=1.0, kind="kill_instance")          # needs instance
    with pytest.raises(ConfigError):
        FaultSpec(t=1.0, kind="kill_instance", vri=0, instance=0)
    with pytest.raises(ConfigError):
        FaultSpec(t=1.0, kind="kill", vri=0, instance=0)  # wrong kind


def test_injector_refuses_cluster_faults():
    class StubLvrm:
        obs_labels = {"lvrm": "stub"}
        sim = None

    schedule = FaultSchedule(
        (FaultSpec(t=1.0, kind="kill_instance", instance=0),))
    injector = FaultInjector(StubLvrm(), schedule)
    with pytest.raises(ConfigError):
        injector.arm()


def test_federation_config_validates():
    with pytest.raises(ConfigError):
        FederationConfig.from_dict({"bogus": 1})
    with pytest.raises(ConfigError):
        FederationConfig.from_dict(
            {"faults": [{"t": 1.0, "kind": "kill", "vri": 0}]})
    with pytest.raises(ConfigError):
        FederationConfig.from_dict(
            {"duration": 2.0,
             "faults": [{"t": 5.0, "kind": "kill_instance",
                         "instance": 0}]})


# -- the DES scenario end to end ---------------------------------------------

@pytest.fixture(scope="module")
def failover_report():
    cfg = FederationConfig(
        duration=1.6, rate_fps=4000.0, n_flows=8, routes=6,
        faults=FaultSchedule((FaultSpec(t=0.703, kind="kill_instance",
                                        instance=0),)))
    return run_des_failover_scenario(cfg)


def test_des_failover_promotes_within_budget(failover_report):
    report = failover_report
    assert report["ok"]
    failover = report["failover"]
    assert failover["promoted"] == "m1"
    assert failover["failover_seconds"] <= failover["budget_seconds"]
    assert failover["lost_in_blackout"] > 0   # the blackout is real
    assert report["members"]["m1"]["role"] == "active"
    assert not report["members"]["m0"]["alive"]


def test_des_failover_state_survives_without_relearning(failover_report):
    report = failover_report
    promote = report["failover"]["promote"]
    assert promote["pins_installed"] > 0
    assert promote["replica_seq"] >= 1
    assert report["routes"]["present_on_standby_at_promote"] == 6
    assert report["routes"]["relearned_after_promotion"] == 0
    assert report["throughput"]["recovered_ratio"] >= 0.9
    # The coordination plane actually spoke the new message kinds.
    assert report["bus"]["elect"] == 1
    assert report["bus"]["vip_move"] == 1
    assert report["bus"]["replicate"] >= 1
