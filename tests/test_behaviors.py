"""Behavioral tests: control priority, failure injection, and other
cross-cutting guarantees the thesis states."""

import pytest

from repro.core import (FixedAllocation, Lvrm, LvrmConfig, VrSpec,
                        make_socket_adapter)
from repro.hardware import DEFAULT_COSTS, Machine
from repro.ipc.messages import ControlEvent, KIND_USER
from repro.net import Testbed
from repro.net.addresses import ip_to_int
from repro.net.frame import Frame
from repro.routing.prefix import Prefix
from repro.sim import Simulator
from repro.traffic import FrameSink, UdpSender
from repro.traffic.trace import synthetic_trace


def test_control_processed_before_queued_data(sim):
    """Thesis §2.1: "each VRI first processes any control event
    available in its incoming control queue, and then processes data
    frames available in its incoming data queue"."""
    machine = Machine(sim)
    adapter = make_socket_adapter("memory", sim, DEFAULT_COSTS,
                                  trace=synthetic_trace(0))
    lvrm = Lvrm(sim, machine, adapter)
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                       dummy_load=100e-6), FixedAllocation(1))
    lvrm.start()
    order = []

    def orchestrate():
        while not lvrm.all_vris():
            yield sim.timeout(1e-4)
        vri = lvrm.all_vris()[0]
        vri.control_handler = lambda ev, v: order.append("control")
        original = vri.router.process

        def tracking_process(frame):
            order.append("data")
            return original(frame)

        vri.router.process = tracking_process
        # While the VRI sleeps, enqueue data FIRST, then control, then
        # wake it.  Control must still win.
        for _ in range(3):
            vri.channels.data_in._items.append(
                Frame(84, ip_to_int("10.1.1.2"), ip_to_int("10.2.1.2")))
        vri.channels.ctrl_in._items.append(
            ControlEvent(KIND_USER, 0, vri.vri_id))
        # Trigger the wake via a proper push on the control queue.
        vri.channels.ctrl_in.try_push(
            ControlEvent(KIND_USER, 0, vri.vri_id))
        yield sim.timeout(0.01)

    sim.process(orchestrate())
    sim.run(until=0.1)
    assert order[:2] == ["control", "control"]
    assert order.count("data") == 3


def test_vri_killed_mid_stream_does_not_stall_the_vr(sim, testbed):
    """Failure injection: destroying a VRI while traffic flows must not
    wedge LVRM; the survivors absorb the load."""
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(record_latency=False))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(3))
    lvrm.start()
    sink = FrameSink(sim, testbed.hosts["r1"], record_latency=False)
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=100_000, t_start=0.005)
    sim.run(until=0.03)
    monitor = lvrm._vri_monitors[0]
    assert len(monitor.vris) == 3
    monitor.destroy_vri(monitor.vris[0])
    received_at_kill = sink.received
    sim.run(until=0.08)
    assert len(monitor.vris) == 2
    # Traffic keeps flowing at essentially the offered rate.
    delivered_after = sink.received - received_at_kill
    assert delivered_after > 0.9 * 100_000 * 0.05


def test_flow_pins_survive_vri_destruction(sim, testbed):
    """Flow-based balancing repins flows whose VRI died (the validity
    check of Figure 3.3) without dropping the whole flow."""
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(record_latency=False, balancer="rr",
                                  flow_based=True))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(2))
    lvrm.start()
    sink = FrameSink(sim, testbed.hosts["r1"], record_latency=False)
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=50_000, t_start=0.005, src_port=777)
    sim.run(until=0.03)
    monitor = lvrm._vri_monitors[0]
    # Kill whichever VRI carries the (single) flow.
    loaded = max(monitor.vris, key=lambda v: v.processed)
    monitor.destroy_vri(loaded)
    before = sink.received
    sim.run(until=0.08)
    assert sink.received - before > 0.9 * 50_000 * 0.05


def test_frames_from_one_flow_stay_ordered_under_flow_balancing(sim, testbed):
    """Flow pinning's purpose: no intra-flow reordering even with
    multiple VRIs and jittery service."""
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(record_latency=False, flow_based=True))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                       dummy_load=5e-6), FixedAllocation(4))
    lvrm.start()
    seen = []
    testbed.hosts["r1"].handler = lambda f: seen.append(f.payload)

    def send_numbered():
        yield sim.timeout(0.005)
        for i in range(500):
            frame = Frame(84, testbed.host_ip("s1"),
                          testbed.host_ip("r1"), src_port=5,
                          dst_port=6, t_created=sim.now, payload=i)
            testbed.hosts["s1"].send(frame)
            yield sim.timeout(8e-6)

    sim.process(send_numbered())
    sim.run(until=0.1)
    assert len(seen) == 500
    assert seen == sorted(seen)


def test_two_vrs_are_isolated(sim, testbed):
    """A saturated VR must not steal its neighbour's VRIs: frames are
    classified by source subnet and queues are per-VRI."""
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(record_latency=False, queue_capacity=64))
    lvrm.add_vr(VrSpec(name="heavy", subnets=(Prefix.parse("10.1.1.0/24"),),
                       dummy_load=50e-6), FixedAllocation(1))
    lvrm.add_vr(VrSpec(name="light", subnets=(Prefix.parse("10.1.2.0/24"),)),
                FixedAllocation(1))
    lvrm.start()
    sink1 = FrameSink(sim, testbed.hosts["r1"], record_latency=False)
    sink2 = FrameSink(sim, testbed.hosts["r2"], record_latency=False)
    # Overload "heavy" (capacity ~20 Kfps), keep "light" modest.
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=100_000, t_start=0.005)
    s2 = UdpSender(sim, testbed.hosts["s2"], testbed.host_ip("r2"),
                   rate_fps=30_000, t_start=0.005)
    sim.run(until=0.06)
    # heavy drops hard; light sails through untouched.
    heavy_mon, light_mon = lvrm._vri_monitors
    assert heavy_mon.dropped_queue_full > 0
    assert light_mon.dropped_queue_full == 0
    assert sink2.received > 0.95 * s2.sent
    assert sink1.received < 0.5 * 100_000 * 0.055
