"""Runtime backend: worker health, respawn, and service-rate reporting."""

import os
import time

import pytest

from repro.net.addresses import ip_to_int
from repro.net.packet import build_udp_frame
from repro.runtime import RuntimeLvrm


def _frame():
    return build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                           ip_to_int("10.2.1.2"), 1, 2, b"health")


@pytest.mark.timeout(90)
def test_dead_worker_detected_and_respawned():
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0) as lvrm:
        victim = lvrm.vris[0]
        victim.process.kill()
        victim.process.join(5.0)
        dead = lvrm.dead_workers()
        assert [v.vri_id for v in dead] == [victim.vri_id]
        assert lvrm.respawn_dead() == 1
        assert lvrm.respawned == 1
        assert not lvrm.dead_workers()
        # The replacement carries the same id on a fresh process...
        replacement = lvrm.vris[0]
        assert replacement.vri_id == victim.vri_id
        assert replacement.process.pid != victim.process.pid
        # ...and actually forwards.
        frame = _frame()
        for _ in range(10):
            while not lvrm.dispatch(frame):
                time.sleep(1e-4)
        out = lvrm.drain_until(10, timeout=20.0)
        assert len(out) == 10


@pytest.mark.timeout(90)
def test_respawn_noop_when_all_alive():
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0) as lvrm:
        assert lvrm.dead_workers() == []
        assert lvrm.respawn_dead() == 0


@pytest.mark.timeout(90)
def test_service_rate_reported_upstream():
    frame = _frame()
    with RuntimeLvrm(n_vris=1, worker_lifetime=60.0,
                     report_service_rate=True) as lvrm:
        # Push enough frames to cross the worker's report batch (64).
        sent = 0
        deadline = time.monotonic() + 30
        while sent < 200 and time.monotonic() < deadline:
            if lvrm.dispatch(frame):
                sent += 1
            else:
                lvrm.drain()
                time.sleep(1e-4)
        lvrm.drain_until(sent, timeout=20.0)
        deadline = time.monotonic() + 10
        while lvrm.vris[0].reported_rate == 0.0 \
                and time.monotonic() < deadline:
            lvrm.pump_control()
            time.sleep(1e-3)
        assert lvrm.vris[0].reported_rate > 0.0


def _shm_entries():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # non-Linux: nothing to assert against
        return None


@pytest.mark.timeout(90)
def test_stop_leaves_no_shm_segments():
    before = _shm_entries()
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0) as lvrm:
        during = _shm_entries()
        if during is not None:
            # 4 rings per worker, all visible while the monitor runs.
            assert len(during - before) == 8
        lvrm.dispatch(_frame())
        lvrm.drain()
    after = _shm_entries()
    if after is not None:
        assert after - before == set()


@pytest.mark.timeout(90)
def test_stop_leaves_no_shm_segments_arena_plane():
    """The arena data plane adds a 9th segment (the frame arena itself,
    shared by both workers); stop() must unlink it with the rings."""
    before = _shm_entries()
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0,
                     data_plane="arena") as lvrm:
        during = _shm_entries()
        if during is not None:
            assert len(during - before) == 9   # 4 rings x 2 + the arena
        lvrm.dispatch(_frame())
        lvrm.drain()
    after = _shm_entries()
    if after is not None:
        assert after - before == set()


class _FailingCtx:
    """A mp context whose Nth Process() construction fails.

    Models fork failure (EAGAIN) after some workers already came up —
    the constructor must then unlink the survivors' segments too, since
    the caller never receives a monitor to stop().
    """

    def __init__(self, real, fail_on):
        self._real = real
        self._fail_on = fail_on
        self._calls = 0

    def Process(self, *args, **kwargs):
        self._calls += 1
        if self._calls >= self._fail_on:
            raise OSError("fork: Resource temporarily unavailable")
        return self._real.Process(*args, **kwargs)


@pytest.mark.timeout(90)
def test_spawn_failure_leaves_no_shm_segments(monkeypatch):
    import repro.runtime.monitor as monitor_mod

    real_get_context = monitor_mod.mp.get_context
    monkeypatch.setattr(
        monitor_mod.mp, "get_context",
        lambda kind: _FailingCtx(real_get_context(kind), fail_on=2))
    before = _shm_entries()
    with pytest.raises(OSError):
        RuntimeLvrm(n_vris=3, worker_lifetime=60.0)
    after = _shm_entries()
    if after is not None:
        # Neither the failed slot's rings nor the already-spawned
        # worker's may survive the constructor.
        assert after - before == set()


@pytest.mark.timeout(90)
def test_spawn_failure_leaves_no_shm_segments_arena_plane(monkeypatch):
    """Spawn-failure unwind must also unlink the arena segment, which
    is created before any worker comes up."""
    import repro.runtime.monitor as monitor_mod

    real_get_context = monitor_mod.mp.get_context
    monkeypatch.setattr(
        monitor_mod.mp, "get_context",
        lambda kind: _FailingCtx(real_get_context(kind), fail_on=2))
    before = _shm_entries()
    with pytest.raises(OSError):
        RuntimeLvrm(n_vris=3, worker_lifetime=60.0, data_plane="arena")
    after = _shm_entries()
    if after is not None:
        assert after - before == set()


@pytest.mark.timeout(90)
def test_cluster_failover_replaces_killed_active_and_cleans_shm():
    """Runtime twin of the DES failover drill: SIGKILL the whole active,
    let the director promote the standby, and verify the corpse's
    segments left /dev/shm while the promoted member kept forwarding."""
    from repro.cluster.runtime import run_runtime_failover_scenario

    before = _shm_entries()
    report = run_runtime_failover_scenario(duration=2.5, kill_at=0.8,
                                           rate_fps=1000.0)
    assert report["ok"]
    assert report["failover"]["promoted"] == "m1"
    assert report["within_budget"]
    assert report["routes_on_standby"] == 12
    after = _shm_entries()
    if after is not None and before is not None:
        assert after - before == set()


@pytest.mark.timeout(90)
def test_cluster_director_dedupes_supervised_worker_death():
    """A worker death the member's own Supervisor already debounced must
    reach the cluster ledger exactly once (via the death epoch), and
    must never be escalated to an instance failover."""
    from repro.cluster.runtime import RuntimeFederation

    fed = RuntimeFederation(n_vris=2, supervised_active=True)
    try:
        victim = fed.active.lvrm.vris[0]
        victim.process.kill()
        victim.process.join(2.0)
        deadline = time.monotonic() + 20.0
        while (fed.active.supervisor.death_epoch == 0
               and time.monotonic() < deadline):
            fed.active.supervisor.poll()
            time.sleep(0.02)
        assert fed.active.supervisor.death_epoch == 1
        fed.director.probe()
        fed.director.probe()   # same epoch: still counted once
        (deaths,) = fed.director.registry.find("cluster_deaths_total",
                                               instance="m0")
        assert deaths.value == 1
        assert fed.director.failovers == []
        assert fed.vip == "m0"
    finally:
        fed.close()
