"""Tests for delayed ACKs and the report generator."""

import pytest

from repro.baselines import KernelForwarder
from repro.hardware import DEFAULT_COSTS, Machine
from repro.traffic.tcp import TcpConnection, TcpParams


@pytest.fixture
def gateway(sim, testbed):
    machine = Machine(sim)
    return KernelForwarder(sim, machine, testbed, DEFAULT_COSTS,
                           record_latency=False)


def test_delayed_ack_roughly_halves_ack_traffic(sim, testbed, gateway):
    import repro.sim as _s

    fast = TcpConnection(sim, testbed.hosts["s1"], testbed.hosts["r1"],
                         TcpParams(app_read_rate=20e6, delayed_ack=False))
    sim.run(until=0.4)
    acks_immediate = fast.receiver.acks_sent
    delivered_immediate = fast.receiver.delivered_segments
    fast.close()

    sim2 = _s.Simulator()
    from repro.net import Testbed
    tb2 = Testbed(sim2)
    KernelForwarder(sim2, Machine(sim2), tb2, DEFAULT_COSTS,
                    record_latency=False)
    slow = TcpConnection(sim2, tb2.hosts["s1"], tb2.hosts["r1"],
                         TcpParams(app_read_rate=20e6, delayed_ack=True))
    sim2.run(until=0.4)
    ratio_immediate = acks_immediate / max(delivered_immediate, 1)
    ratio_delayed = slow.receiver.acks_sent / max(
        slow.receiver.delivered_segments, 1)
    assert ratio_immediate > 0.9
    assert ratio_delayed < 0.75  # substantially fewer ACKs per segment


def test_delayed_ack_does_not_break_throughput(sim, testbed, gateway):
    conn = TcpConnection(sim, testbed.hosts["s1"], testbed.hosts["r1"],
                         TcpParams(delayed_ack=True))
    sim.run(until=0.3)
    assert conn.goodput_bps(0.3) > 500e6


def test_delayed_ack_completes_finite_transfer(sim, testbed, gateway):
    conn = TcpConnection(sim, testbed.hosts["s1"], testbed.hosts["r1"],
                         TcpParams(delayed_ack=True),
                         total_bytes=200_000)
    sim.run(until=3.0)
    assert conn.done.triggered


def test_delayed_ack_still_dupacks_on_loss(sim, testbed):
    """Out-of-order arrivals must ACK immediately even in delayed mode,
    or fast retransmit dies."""
    from repro.net.testbed import TestbedConfig
    from repro.sim import Simulator
    from repro.net import Testbed

    sim2 = Simulator()
    tb = Testbed(sim2, config=TestbedConfig(queue_frames=24))
    KernelForwarder(sim2, Machine(sim2), tb, DEFAULT_COSTS,
                    record_latency=False)
    conns = [TcpConnection(sim2, tb.hosts["s1"], tb.hosts["r1"],
                           TcpParams(delayed_ack=True)) for _ in range(4)]
    sim2.run(until=0.5)
    assert sum(c.sender.retransmits for c in conns) > 0
    assert sum(c.sender.timeouts for c in conns) < 20  # mostly fast retx
    assert all(c.goodput_bytes > 0 for c in conns)


def test_report_generator_with_fakes(tmp_path, monkeypatch):
    from repro.experiments import registry
    from repro.experiments.common import ExperimentResult
    from repro.experiments.report import generate_report

    ok = ExperimentResult("exp2c", "fake", columns=("t_rel", "cores"))
    ok.add(0.0, 1.0)
    ok.add(1.0, 3.0)

    def boom(profile):
        raise RuntimeError("nope")

    fakes = {
        "exp2c": ((lambda p: ok), "Fig 4.10", "fake staircase"),
        "exp1a": (boom, "Fig 4.2", "fake failure"),
    }
    monkeypatch.setattr(registry, "EXPERIMENTS", fakes)
    monkeypatch.setattr("repro.experiments.report.EXPERIMENTS", fakes)
    out = tmp_path / "report.md"
    failures = generate_report(str(out))
    assert failures == 1
    text = out.read_text()
    assert "# LVRM reproduction report" in text
    assert "fake staircase" in text
    assert "cores vs t_rel" in text  # the chart rendered
    assert "**FAILED**" in text
