"""Tests for the load balancers and the flow table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.balancing import (FlowBasedBalancer, JoinShortestQueue,
                                  RandomBalancer, RoundRobin, make_balancer)
from repro.core.flows import FlowTable
from repro.errors import ConfigError
from repro.hardware import DEFAULT_COSTS
from repro.net.frame import Frame


class FakeVri:
    def __init__(self, vri_id, load=0.0):
        self.vri_id = vri_id
        self.load = load

    def load_estimate(self):
        return self.load


def _frame(sport=1, dport=2, src=10, dst=20):
    return Frame(84, src, dst, proto=6, src_port=sport, dst_port=dport)


# -- JSQ ---------------------------------------------------------------------

def test_jsq_picks_lightest():
    vris = [FakeVri(1, 5.0), FakeVri(2, 1.0), FakeVri(3, 3.0)]
    assert JoinShortestQueue().pick(_frame(), vris, 0.0).vri_id == 2


def test_jsq_tie_break_is_first():
    vris = [FakeVri(1, 1.0), FakeVri(2, 1.0)]
    assert JoinShortestQueue().pick(_frame(), vris, 0.0).vri_id == 1


def test_jsq_cost_scales_with_vris():
    jsq = JoinShortestQueue()
    assert jsq.decision_cost(DEFAULT_COSTS, 6) > jsq.decision_cost(DEFAULT_COSTS, 1)


# -- round robin ----------------------------------------------------------------

def test_round_robin_cycles():
    rr = RoundRobin()
    vris = [FakeVri(i) for i in range(3)]
    picks = [rr.pick(_frame(), vris, 0.0).vri_id for _ in range(6)]
    assert picks == [0, 1, 2, 0, 1, 2]


def test_round_robin_adapts_to_vri_departure():
    rr = RoundRobin()
    vris = [FakeVri(i) for i in range(3)]
    rr.pick(_frame(), vris, 0.0)
    picks = [rr.pick(_frame(), vris[:2], 0.0).vri_id for _ in range(4)]
    assert set(picks) == {0, 1}


# -- random ------------------------------------------------------------------------

def test_random_uses_all_vris_roughly_evenly():
    rng = np.random.default_rng(42)
    rb = RandomBalancer(rng)
    vris = [FakeVri(i) for i in range(4)]
    counts = np.zeros(4)
    for _ in range(4000):
        counts[rb.pick(_frame(), vris, 0.0).vri_id] += 1
    assert counts.min() > 800  # ~1000 each


def test_empty_vri_list_rejected():
    for b in (JoinShortestQueue(), RoundRobin(), RandomBalancer()):
        with pytest.raises(ConfigError):
            b.pick(_frame(), [], 0.0)


# -- flow-based wrapper ----------------------------------------------------------------

def test_flow_based_pins_flows():
    fb = FlowBasedBalancer(RoundRobin())
    vris = [FakeVri(i) for i in range(3)]
    flow_a, flow_b = _frame(sport=1), _frame(sport=2)
    first_a = fb.pick(flow_a, vris, now=0.0).vri_id
    first_b = fb.pick(flow_b, vris, now=0.0).vri_id
    for t in (0.1, 0.2, 0.3):
        assert fb.pick(_frame(sport=1), vris, now=t).vri_id == first_a
        assert fb.pick(_frame(sport=2), vris, now=t).vri_id == first_b


def test_flow_based_repins_after_vri_destroyed():
    fb = FlowBasedBalancer(RoundRobin())
    vris = [FakeVri(0), FakeVri(1)]
    pinned = fb.pick(_frame(sport=7), vris, 0.0).vri_id
    fb.forget_vri(pinned)
    survivors = [v for v in vris if v.vri_id != pinned]
    repinned = fb.pick(_frame(sport=7), vris=survivors, now=0.1).vri_id
    assert repinned != pinned


def test_flow_based_survives_stale_pin_in_live_list():
    """A pinned id that no longer appears among the live VRIs must fall
    through to the inner scheme (Figure 3.3's validity check)."""
    fb = FlowBasedBalancer(RoundRobin())
    vris = [FakeVri(0), FakeVri(1)]
    fb.pick(_frame(sport=9), vris, 0.0)
    # Simulate destruction without notifying the balancer.
    live = [FakeVri(5)]
    assert fb.pick(_frame(sport=9), live, 0.1).vri_id == 5


def test_flow_based_expires_idle_flows():
    fb = FlowBasedBalancer(RoundRobin(), FlowTable(idle_timeout=1.0))
    vris = [FakeVri(0), FakeVri(1)]
    first = fb.pick(_frame(sport=3), vris, now=0.0).vri_id
    later = fb.pick(_frame(sport=3), vris, now=10.0).vri_id
    # Expired: inner RR moved on, so the pin changed.
    assert later != first


def test_flow_based_cost_exceeds_inner():
    fb = FlowBasedBalancer(JoinShortestQueue())
    assert fb.decision_cost(DEFAULT_COSTS, 4) > \
        JoinShortestQueue().decision_cost(DEFAULT_COSTS, 4)


def test_make_balancer_factory():
    assert make_balancer("jsq").name == "jsq"
    assert make_balancer("rr").name == "rr"
    assert make_balancer("random").name == "random"
    assert make_balancer("jsq", flow_based=True).name == "flow-jsq"
    with pytest.raises(ConfigError):
        make_balancer("magic")


# -- flow table ----------------------------------------------------------------------

def test_flow_table_hit_refreshes_timestamp():
    ft = FlowTable(idle_timeout=1.0)
    ft.insert("k", 1, now=0.0)
    assert ft.lookup("k", now=0.9) == 1
    # The hit at 0.9 refreshed the entry: alive at 1.8 too.
    assert ft.lookup("k", now=1.8) == 1
    assert ft.hits == 2


def test_flow_table_expiry_counts():
    ft = FlowTable(idle_timeout=1.0)
    ft.insert("k", 1, now=0.0)
    assert ft.lookup("k", now=5.0) is None
    assert ft.expired == 1 and ft.misses == 1


def test_flow_table_eviction_at_capacity():
    ft = FlowTable(max_entries=2, idle_timeout=100.0)
    ft.insert("a", 1, now=0.0)
    ft.insert("b", 2, now=1.0)
    ft.insert("c", 3, now=2.0)  # evicts "a" (stalest)
    assert len(ft) == 2
    assert ft.lookup("a", now=2.0) is None
    assert ft.lookup("c", now=2.0) == 3
    assert ft.evicted == 1


def test_flow_table_invalidate_vri():
    ft = FlowTable()
    ft.insert("a", 1, 0.0)
    ft.insert("b", 1, 0.0)
    ft.insert("c", 2, 0.0)
    assert ft.invalidate_vri(1) == 2
    assert len(ft) == 1


def test_flow_table_expire_idle_bulk():
    ft = FlowTable(idle_timeout=1.0)
    for i in range(5):
        ft.insert(i, i, now=0.0)
    ft.insert("fresh", 9, now=5.0)
    assert ft.expire_idle(now=5.0) == 5
    assert len(ft) == 1


@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 3)),
                min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_flow_table_pin_stability_property(events):
    """Property: within the idle timeout, a flow key always maps to the
    VRI it was first pinned to (no silent migration)."""
    ft = FlowTable(max_entries=1000, idle_timeout=1e9)
    pins = {}
    for t, (key, vri) in enumerate(events):
        found = ft.lookup(key, now=float(t))
        if found is None:
            ft.insert(key, vri, now=float(t))
            pins[key] = vri
        else:
            assert found == pins[key]
