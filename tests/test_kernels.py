"""Burst-kernel equivalence: numpy and cffi against the scalar oracle.

The property the whole subsystem stands on: for any burst — valid
frames, malformed frames, truncated frames, frames with IPv4 options,
routed and unrouted destinations, with and without mid-burst route-table
updates — every kernel must produce bitwise-identical routed interfaces,
drop decisions, and (with the TTL rewrite armed) byte-identical frame
payloads including the RFC 1624-updated header checksum.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KernelError
from repro.kernels import (IFACE_DROP, available_kernels, make_kernel,
                           resolve_kernel_kind)
from repro.kernels.scalar import ScalarKernel
from repro.kernels.vector import VectorKernel
from repro.net.checksum import (checksum, incremental_update,
                                incremental_update_batch)
from repro.net.frame import FrameView
from repro.net.packet import build_udp_frame
from repro.routing.prefix import Prefix
from repro.routing.table import NO_ROUTE, BruteForceTable, RouteTable

_MAC_A = 0x020000000001
_MAC_B = 0x020000000002


def _table(routes):
    t = RouteTable()
    for text, hop in routes:
        t.add(Prefix.parse(text), hop)
    return t


def _frame(dst_ip: int, src_ip: int = 0x0A010102, ttl: int = 64,
           payload: bytes = b"p" * 26) -> bytearray:
    raw = bytearray(build_udp_frame(_MAC_A, _MAC_B, src_ip, dst_ip,
                                    1234, 5678, payload))
    if ttl != 64:
        # Patch TTL and fix the header checksum the scalar way.
        old_word = (raw[22] << 8) | raw[23]
        new_word = (ttl << 8) | raw[23]
        old_csum = (raw[24] << 8) | raw[25]
        new_csum = incremental_update(old_csum, old_word, new_word)
        raw[22] = ttl
        raw[24], raw[25] = new_csum >> 8, new_csum & 0xFF
    return raw


def _options_frame(dst_ip: int) -> bytearray:
    """A valid frame whose IPv4 header carries options (IHL = 24)."""
    base = _frame(dst_ip)
    ihl_bytes = 24
    ip = bytearray(base[14:])
    ip[0] = 0x40 | (ihl_bytes // 4)
    # Splice 4 option bytes (NOP padding) after the 20-byte base header.
    ip = ip[:20] + b"\x01\x01\x01\x01" + ip[20:]
    total_len = len(ip)
    ip[2:4] = struct.pack("!H", total_len)
    ip[10:12] = b"\x00\x00"
    csum = checksum(bytes(ip[:ihl_bytes]))
    ip[10:12] = struct.pack("!H", csum)
    return bytearray(bytes(base[:14]) + bytes(ip))


def _corrupt(raw: bytearray, how: int) -> bytearray:
    raw = bytearray(raw)
    if how == 0:
        raw[14] = 0x60 | (raw[14] & 0xF)  # IPv6 version
    elif how == 1:
        raw[14] = 0x41  # IHL 4: below minimum
    elif how == 2:
        raw[24] ^= 0xFF  # break the header checksum
    elif how == 3:
        del raw[20:]  # truncate below 34 bytes
    else:
        raw[18] ^= 0x10  # flip a header bit without fixing the csum
    return raw


_ROUTES = [("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("10.1.2.0/24", 3),
           ("192.168.0.0/16", 4), ("172.16.0.0/12", 5)]

_dst_ips = st.one_of(
    st.integers(0x0A000000, 0x0AFFFFFF),       # inside 10/8
    st.integers(0xC0A80000, 0xC0A8FFFF),       # inside 192.168/16
    st.integers(0, 0xFFFFFFFF))                # anywhere (mostly unrouted)

_burst_entries = st.lists(
    st.tuples(_dst_ips,
              st.integers(0, 255),             # ttl
              st.integers(0, 9),               # 0-4 corrupt, 5-8 ok, 9 opts
              st.integers(20, 600)),           # payload size
    min_size=0, max_size=40)


def _build_burst(entries):
    """Arena-style flat buffer with frames at 2048-byte strides."""
    frames = []
    for dst, ttl, shape, psize in entries:
        ttl = max(ttl, 0)
        raw = (_options_frame(dst) if shape == 9
               else _frame(dst, ttl=ttl if ttl else 1,
                           payload=b"q" * psize))
        if shape <= 4:
            raw = _corrupt(raw, shape)
        frames.append(raw)
    buf = bytearray(2048 * max(1, len(frames)))
    offs, lens = [], []
    for i, raw in enumerate(frames):
        off = 2048 * i
        buf[off:off + len(raw)] = raw
        offs.append(off)
        lens.append(len(raw))
    return (buf, np.array(offs, dtype=np.uint64),
            np.array(lens, dtype=np.uint64), frames)


def _kernels(table, rewrite_ttl):
    return [make_kernel(kind, table, rewrite_ttl=rewrite_ttl)
            for kind in available_kernels()]


@settings(max_examples=60, deadline=None)
@given(_burst_entries, st.booleans())
def test_kernels_bitwise_identical(entries, rewrite):
    table = _table(_ROUTES)
    buf, offs, lens, frames = _build_burst(entries)
    results = []
    for kernel in _kernels(table, rewrite):
        b = bytearray(buf)
        ifaces = kernel.route_block(b, offs, lens)
        results.append((kernel.kind, ifaces.tolist(), bytes(b)))
    ref_kind, ref_ifaces, ref_bytes = results[0]
    assert ref_kind == "scalar"
    for kind, ifaces, payload in results[1:]:
        assert ifaces == ref_ifaces, f"{kind} routed differently"
        assert payload == ref_bytes, f"{kind} rewrote bytes differently"
    if not rewrite:
        assert ref_bytes == bytes(buf)  # echo plane: no mutation at all
    # Copy-plane parity rides the same burst.
    ref_frames = None
    for kernel in _kernels(table, rewrite):
        got = kernel.route_frames([bytes(f) for f in frames])
        if ref_frames is None:
            ref_frames = got
        else:
            assert got == ref_frames, f"{kernel.kind} copy-plane differs"


@settings(max_examples=60, deadline=None)
@given(_burst_entries, st.booleans())
def test_copy_plane_rewrite_matches_arena(entries, rewrite):
    """``route_frames_rewrite`` is the copy plane's forwarding mode:
    every kernel must agree on ifaces AND produce output frames
    byte-identical to what ``route_block`` rewrites in the arena
    buffer — without ever mutating the input frames."""
    table = _table(_ROUTES)
    buf, offs, lens, frames = _build_burst(entries)
    inputs = [bytes(f) for f in frames]
    ref = None
    for kernel in _kernels(table, rewrite):
        ifaces, outs = kernel.route_frames_rewrite(inputs)
        got = (ifaces, [bytes(o) for o in outs])
        if ref is None:
            ref = got
        else:
            assert got == ref, f"{kernel.kind} rewrite copy-plane differs"
    assert all(bytes(f) == orig for f, orig in zip(inputs, frames))
    # The arena oracle: route_block over the same burst must leave each
    # forwarded frame's bytes equal to the copy-plane output, and every
    # drop's bytes untouched (= the input passthrough).
    arena = bytearray(buf)
    block_ifaces = make_kernel("scalar", table,
                               rewrite_ttl=rewrite).route_block(
        arena, offs, lens)
    ifaces, outs = ref
    assert ifaces == [None if h == IFACE_DROP else h
                      for h in block_ifaces.tolist()]
    for i, (off, ln) in enumerate(zip(offs.tolist(), lens.tolist())):
        assert bytes(outs[i]) == bytes(arena[off:off + ln])
        if ifaces[i] is None:
            assert bytes(outs[i]) == inputs[i]


@settings(max_examples=40, deadline=None)
@given(_burst_entries, st.data())
def test_kernels_track_mid_burst_route_updates(entries, data):
    """A route change between bursts is visible to every kernel on the
    very next burst (the flattened table re-derives from the trie)."""
    table = _table(_ROUTES)
    buf, offs, lens, _frames = _build_burst(entries)
    kernels = _kernels(table, rewrite_ttl=False)
    first = [k.route_block(bytearray(buf), offs, lens).tolist()
             for k in kernels]
    assert all(r == first[0] for r in first)
    # Mutate the table mid-stream: add a more-specific route and maybe
    # remove one of the originals.
    table.add(Prefix.parse("10.1.2.128/25"), 7)
    if data.draw(st.booleans()):
        table.remove(Prefix.parse("10.1.0.0/16"))
    second = [k.route_block(bytearray(buf), offs, lens).tolist()
              for k in kernels]
    assert all(r == second[0] for r in second)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 0xFFFFFFFF), st.integers(0, 32)),
                min_size=1, max_size=25),
       st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=50))
def test_lookup_batch_matches_oracle(prefixes, ips):
    trie, oracle = RouteTable(), BruteForceTable()
    for hop, (net, length) in enumerate(prefixes):
        p = Prefix(net & (0xFFFFFFFF << (32 - length)) & 0xFFFFFFFF
                   if length else 0, length)
        trie.add(p, hop)
        oracle.add(p, hop)
    got = trie.lookup_batch(np.array(ips, dtype=np.uint64))
    want = [oracle.get(ip, NO_ROUTE) for ip in ips]
    assert got.tolist() == want


def test_lookup_batch_rejects_non_int_hops():
    t = RouteTable()
    t.add(Prefix.parse("10.0.0.0/8"), "eth0")
    assert not t.supports_batch()
    with pytest.raises(Exception):
        t.lookup_batch(np.array([0x0A000001], dtype=np.uint64))
    # The vector kernel degrades to scalar lookups and still agrees.
    buf, offs, lens, _ = _build_burst([(0x0A000001, 64, 5, 30)])
    scalar = ScalarKernel(t).route_frames([bytes(buf[:int(lens[0])])])
    vector = VectorKernel(t).route_frames([bytes(buf[:int(lens[0])])])
    assert scalar == vector == ["eth0"]


def test_cache_hit_miss_counters():
    t = _table(_ROUTES)
    assert (t.cache_hits, t.cache_misses) == (0, 0)
    t.get_cached(0x0A010203)
    t.get_cached(0x0A010203)
    t.get_cached(0x7F000001)   # miss result is cached too
    t.get_cached(0x7F000001)
    assert t.cache_hits == 2
    assert t.cache_misses == 2


def test_incremental_update_batch_matches_scalar():
    rng = np.random.default_rng(2011)
    old_c = rng.integers(0, 0x10000, 256)
    old_w = rng.integers(0, 0x10000, 256)
    new_w = rng.integers(0, 0x10000, 256)
    got = incremental_update_batch(old_c, old_w, new_w)
    want = [incremental_update(int(c), int(m), int(mp))
            for c, m, mp in zip(old_c, old_w, new_w)]
    assert got.tolist() == want


def test_rewrite_produces_valid_checksum_and_ttl():
    table = _table(_ROUTES)
    buf, offs, lens, _ = _build_burst([(0x0A010203, 64, 5, 40)])
    for kernel in _kernels(table, rewrite_ttl=True):
        b = bytearray(buf)
        ifaces = kernel.route_block(b, offs, lens)
        assert ifaces[0] != IFACE_DROP
        view = FrameView(bytes(b[:int(lens[0])]))
        assert view.ttl == 63              # decremented...
        assert view.dst_ip == 0x0A010203   # ...and the checksum still
        #                                    validates (parse would raise)


def test_ttl_expiry_drops_only_with_rewrite():
    table = _table(_ROUTES)
    buf, offs, lens, _ = _build_burst([(0x0A010203, 1, 5, 40)])
    for kernel in _kernels(table, rewrite_ttl=True):
        assert kernel.route_block(bytearray(buf), offs,
                                  lens).tolist() == [IFACE_DROP]
    for kernel in _kernels(table, rewrite_ttl=False):
        assert kernel.route_block(bytearray(buf), offs,
                                  lens).tolist() != [IFACE_DROP]


def test_cffi_degrades_to_numpy_without_compiler(monkeypatch):
    import repro.kernels.ringops as ringops
    monkeypatch.setattr(ringops, "_LOADED", None)
    monkeypatch.setenv("REPRO_KERNEL_NO_CC", "1")
    try:
        kernel = make_kernel("cffi", _table(_ROUTES))
        assert kernel.kind == "numpy"
        assert kernel.degraded_from == "cffi"
        assert "degraded" in kernel.describe()
    finally:
        monkeypatch.setattr(ringops, "_LOADED", None)


def test_kernel_kind_resolution(monkeypatch):
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    assert resolve_kernel_kind(None) == "scalar"
    assert resolve_kernel_kind("numpy") == "numpy"
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    assert resolve_kernel_kind(None) == "numpy"
    with pytest.raises(KernelError):
        resolve_kernel_kind("simd")
    with pytest.raises(KernelError):
        monkeypatch.setenv("REPRO_KERNEL", "simd")
        resolve_kernel_kind(None)


def test_des_kernel_variant_prices_service():
    from repro.hardware import DEFAULT_COSTS
    numpy_costs = DEFAULT_COSTS.kernel_variant("numpy")
    cffi_costs = DEFAULT_COSTS.kernel_variant("cffi")
    assert numpy_costs.cpp_vr_cost < DEFAULT_COSTS.cpp_vr_cost
    assert cffi_costs.cpp_vr_cost < numpy_costs.cpp_vr_cost
    assert DEFAULT_COSTS.kernel_variant("scalar") is DEFAULT_COSTS
    with pytest.raises(ValueError):
        DEFAULT_COSTS.kernel_variant("simd")


# ---------------------------------------------------------------------------
# Worker-side backpressure: the serve loop must never outrun its output
# ring.  The worker is data_out's only producer, so clamping each pop
# burst to the provable free space makes the echo push infallible — a
# worker that runs several bursts during one monitor timeslice (easy on
# a single-core host with the fast kernels) otherwise overflows the ring
# and the excess frames silently vanish.
# ---------------------------------------------------------------------------

class _Counter:
    def __init__(self):
        self.n = 0

    def inc(self, k=1):
        self.n += k


def _mini_api(cap=16, slot=2048):
    from repro.ipc import make_ring, ring_bytes_for
    from repro.runtime.api import VriSideApi

    api = VriSideApi.__new__(VriSideApi)
    api.vri_id = 0
    api.data_in = make_ring(
        "lamport", bytearray(ring_bytes_for("lamport", cap, slot)),
        cap, slot)
    api.data_out = make_ring(
        "lamport", bytearray(ring_bytes_for("lamport", cap, slot)),
        cap, slot)
    api.arena = None
    api._estimator = None
    api._last_from = None
    api.frames_in = api.frames_out = 0
    return api


def test_serve_copy_respects_output_backpressure():
    from repro.core.vr import DEFAULT_MAP_LINES
    from repro.routing.mapfile import parse_map_lines
    from repro.runtime import worker as worker_mod

    cap = 16
    api = _mini_api(cap=cap)
    routes, _arp = parse_map_lines(DEFAULT_MAP_LINES)
    kernel = make_kernel("scalar", routes)
    frame = bytes(build_udp_frame(_MAC_A, _MAC_B, 0x0A010102, 0x0A020103,
                                  1234, 5678, b"q" * 64))
    for _ in range(10):
        assert api.data_in.try_push(frame)
    # Leave only three provable output slots.
    for _ in range(cap - 3):
        assert api.data_out.try_push(b"backlog")

    c_frames, c_fwd, c_miss = _Counter(), _Counter(), _Counter()
    got = worker_mod._serve_copy(api, kernel, 10, c_frames, c_fwd, c_miss,
                                 probe_frames=False)
    assert got == 3          # clamped to the provable headroom...
    assert c_fwd.n == 3      # ...so nothing pushed was lost
    assert len(api.data_out) == cap

    # With the output ring solid-full the worker must idle, not pop.
    assert worker_mod._serve_copy(api, kernel, 10, c_frames, c_fwd, c_miss,
                                  probe_frames=False) == 0

    # Once the monitor drains, every remaining frame comes through.
    delivered = len([r for r in api.data_out.try_pop_many()
                     if r != b"backlog"])
    while len(api.data_in):
        worker_mod._serve_copy(api, kernel, 10, c_frames, c_fwd, c_miss,
                               probe_frames=False)
        delivered += len(api.data_out.try_pop_many())
    assert delivered == 10
    assert c_miss.n == 0


def test_out_headroom_is_conservative_on_all_ring_kinds():
    from repro.ipc import RING_KINDS, make_ring, ring_bytes_for
    from repro.runtime.worker import _out_headroom

    for kind in RING_KINDS:
        cap = 8
        ring = make_ring(kind, bytearray(ring_bytes_for(kind, cap, 256)),
                         cap, 256)
        assert _out_headroom(ring) == cap
        for i in range(cap):
            assert ring.try_push(b"r")
        flush = getattr(ring, "flush", None)
        if flush is not None:
            flush()
        assert _out_headroom(ring) == 0
        assert len(ring.try_pop_many()) == cap
        assert _out_headroom(ring) == cap
