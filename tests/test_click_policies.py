"""Tests for the Click policy elements (Classifier matching, IPFilter)
and for hosting a policy-bearing Click VR on LVRM — the paper's "each
virtual router ... independently configured with its own set of routing
policies"."""

import pytest

from repro.core import FixedAllocation, Lvrm, VrSpec, VrType, make_socket_adapter
from repro.core.click import parse_click_config
from repro.errors import ConfigError
from repro.hardware import DEFAULT_COSTS, Machine
from repro.net.addresses import ip_to_int
from repro.net.frame import Frame, PROTO_ICMP, PROTO_TCP, PROTO_UDP
from repro.routing.prefix import Prefix
from repro.sim import Simulator
from repro.traffic.trace import synthetic_trace


def _frame(src="10.1.1.2", dst="10.2.1.2", proto=PROTO_UDP):
    return Frame(84, ip_to_int(src), ip_to_int(dst), proto=proto)


# -- Classifier protocol matching ------------------------------------------------

def test_classifier_proto_match():
    cfg = parse_click_config("Classifier(udp) -> ToDevice(1);")
    assert cfg.run(_frame(proto=PROTO_UDP)) is not None
    assert cfg.run(_frame(proto=PROTO_TCP)) is None
    assert cfg.run(_frame(proto=PROTO_ICMP)) is None


def test_classifier_byte_pattern_passes_through():
    cfg = parse_click_config("Classifier(12/0800) -> ToDevice(1);")
    assert cfg.run(_frame(proto=PROTO_TCP)) is not None


def test_classifier_rejects_unknown_proto():
    with pytest.raises(ConfigError):
        parse_click_config("Classifier(quic) -> Discard;")


# -- IPFilter ACLs -------------------------------------------------------------------

def test_ipfilter_first_match_wins():
    cfg = parse_click_config(
        "f :: IPFilter(deny 10.1.9.0/24, allow 10.1.0.0/16, deny all);"
        "f -> ToDevice(1);")
    assert cfg.run(_frame(src="10.1.9.5")) is None        # denied /24
    assert cfg.run(_frame(src="10.1.2.5")) is not None    # allowed /16
    assert cfg.run(_frame(src="99.9.9.9")) is None        # deny all
    assert cfg.elements["f"].dropped == 2


def test_ipfilter_default_allows():
    cfg = parse_click_config("IPFilter(deny 10.1.9.0/24) -> ToDevice(1);")
    assert cfg.run(_frame(src="8.8.8.8")) is not None


def test_ipfilter_empty_is_allow_all():
    cfg = parse_click_config("IPFilter -> ToDevice(1);")
    assert cfg.run(_frame()) is not None


@pytest.mark.parametrize("bad", [
    "IPFilter(block 10.0.0.0/8);",
    "IPFilter(deny);",
    "IPFilter(deny 10.0.0.0/8 extra);",
])
def test_ipfilter_rejects_malformed(bad):
    with pytest.raises(ConfigError):
        parse_click_config(bad)


# -- a policy VR hosted end to end --------------------------------------------------------

FIREWALL_CONFIG = """
// Department firewall VR: drop a quarantined /24, forward the rest.
src :: FromDevice(eth0);
acl :: IPFilter(deny 10.1.1.64/26, allow all);
rt  :: StaticIPLookup(10.2.0.0/16 1, 10.1.0.0/16 0);
src -> acl -> CheckIPHeader -> rt -> DecIPTTL -> ToDevice(routed);
"""


def test_firewall_click_vr_on_lvrm(sim):
    machine = Machine(sim)
    # Half the trace from the quarantined range, half from a clean host.
    trace = (list(synthetic_trace(300, 84, src_ip="10.1.1.70"))
             + list(synthetic_trace(300, 84, src_ip="10.1.1.2")))
    # Paced below the Click pipeline's ~0.2 Mfps so nothing is shed for
    # queue-full reasons and the ACL is the only drop source.
    adapter = make_socket_adapter("memory", sim, DEFAULT_COSTS,
                                  trace=iter(trace),
                                  trace_rate_fps=100_000.0)
    lvrm = Lvrm(sim, machine, adapter)
    lvrm.add_vr(VrSpec(name="fw", subnets=(Prefix.parse("10.1.0.0/16"),),
                       vr_type=VrType.CLICK,
                       click_config=FIREWALL_CONFIG),
                FixedAllocation(1))
    lvrm.start()
    sim.run(until=10.0)
    stats = lvrm.stats
    vri = lvrm.all_vris()[0]
    assert stats.forwarded == 300                 # clean half only
    assert vri.dropped_no_route == 300            # ACL-dropped half
    assert vri.router.dropped == 300
