"""Tests for the IPC substrate: real SPSC ring (incl. properties and a
true cross-process exchange), shared segments, sim queues, and control
event codecs."""

import multiprocessing as mp

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, QueueEmptyError, QueueFullError
from repro.ipc import (ControlEvent, SharedSegment, SimIpcQueue, SpscRing,
                       decode_event, encode_event)
from repro.ipc.ring import ring_bytes_needed


def _ring(capacity=8, slot=64):
    buf = bytearray(ring_bytes_needed(capacity, slot))
    return SpscRing(buf, capacity, slot)


# -- ring geometry ---------------------------------------------------------------

def test_ring_capacity_must_be_power_of_two():
    with pytest.raises(ConfigError):
        ring_bytes_needed(6, 64)
    with pytest.raises(ConfigError):
        ring_bytes_needed(0, 64)


def test_ring_rejects_short_buffer():
    with pytest.raises(ConfigError):
        SpscRing(bytearray(10), 8, 64)


def test_ring_rejects_oversize_record():
    ring = _ring(slot=32)
    with pytest.raises(ConfigError):
        ring.push(b"x" * 100)


# -- ring semantics -----------------------------------------------------------------

def test_ring_fifo_and_boundaries():
    ring = _ring(capacity=4)
    for i in range(4):
        ring.push(f"m{i}".encode())
    assert ring.is_full
    with pytest.raises(QueueFullError):
        ring.push(b"overflow")
    assert [ring.pop() for _ in range(4)] == [b"m0", b"m1", b"m2", b"m3"]
    assert ring.is_empty
    with pytest.raises(QueueEmptyError):
        ring.pop()


def test_ring_wraparound():
    ring = _ring(capacity=4)
    for round_no in range(10):
        ring.push(f"r{round_no}".encode())
        assert ring.pop() == f"r{round_no}".encode()
    assert len(ring) == 0


def test_ring_empty_records_allowed():
    ring = _ring()
    ring.push(b"")
    assert ring.pop() == b""


def test_ring_attach_reads_geometry():
    buf = bytearray(ring_bytes_needed(16, 128))
    ring = SpscRing(buf, 16, 128)
    ring.push(b"hello")
    attached = SpscRing.attach(buf)
    assert attached.capacity == 16
    assert attached.pop() == b"hello"


def test_ring_attach_rejects_garbage():
    with pytest.raises(ConfigError):
        SpscRing.attach(bytearray(4096))


@given(st.lists(st.tuples(st.booleans(), st.binary(max_size=28)),
                max_size=120))
@settings(max_examples=120, deadline=None)
def test_ring_matches_deque_model(ops):
    """Property: under any push/pop sequence the ring behaves as a
    bounded FIFO (compared against a plain list model)."""
    from collections import deque
    ring = _ring(capacity=8, slot=32)
    model = deque()
    for is_push, payload in ops:
        if is_push:
            ok = ring.try_push(payload)
            assert ok == (len(model) < 8)
            if ok:
                model.append(payload)
        else:
            got = ring.try_pop()
            expected = model.popleft() if model else None
            assert got == expected
        assert len(ring) == len(model)


def _producer_proc(name, n):
    seg = SharedSegment.attach(name)
    ring = SpscRing.attach(seg.buf)
    sent = 0
    while sent < n:
        if ring.try_push(sent.to_bytes(4, "little")):
            sent += 1
    ring.close()
    seg.close()


def test_ring_cross_process_order_preserved():
    """The real thing: a child process produces through shared memory."""
    n = 2000
    seg = SharedSegment.create(ring_bytes_needed(64, 32))
    ring = SpscRing(seg.buf, 64, 32)
    ctx = mp.get_context("fork")
    child = ctx.Process(target=_producer_proc, args=(seg.name, n))
    child.start()
    received = []
    import time
    deadline = time.monotonic() + 30
    while len(received) < n and time.monotonic() < deadline:
        record = ring.try_pop()
        if record is not None:
            received.append(int.from_bytes(record, "little"))
    child.join(5)
    assert received == list(range(n))
    ring.close()
    seg.close()


# -- shared segments ---------------------------------------------------------------

def test_shared_segment_create_attach_cleanup():
    seg = SharedSegment.create(4096)
    seg.buf[0] = 0x5A
    attached = SharedSegment.attach(seg.name)
    assert attached.buf[0] == 0x5A
    attached.close()
    seg.close()
    from repro.errors import RuntimeBackendError
    with pytest.raises(RuntimeBackendError):
        SharedSegment.attach(seg.name)


def test_shared_segment_requires_size_on_create():
    from repro.errors import RuntimeBackendError
    with pytest.raises(RuntimeBackendError):
        SharedSegment.create(0)


def test_shared_segment_context_manager():
    with SharedSegment.create(1024) as seg:
        name = seg.name
    from repro.errors import RuntimeBackendError
    with pytest.raises(RuntimeBackendError):
        SharedSegment.attach(name)


# -- sim queue ------------------------------------------------------------------------

def test_sim_queue_fifo_and_drop_tail(sim):
    q = SimIpcQueue(sim, capacity=2)
    assert q.try_push("a") and q.try_push("b")
    assert not q.try_push("c")
    assert q.dropped == 1
    assert q.try_pop() == "a"
    assert q.data_count == 1


def test_sim_queue_wake_on_push(sim):
    q = SimIpcQueue(sim, capacity=4)
    woken = []
    q.set_wake(lambda: woken.append(sim.now))
    assert woken == []
    q.try_push("x")
    assert len(woken) == 1
    q.try_push("y")  # one-shot: no second wake
    assert len(woken) == 1


def test_sim_queue_wake_immediate_if_nonempty(sim):
    q = SimIpcQueue(sim, capacity=4)
    q.try_push("x")
    woken = []
    q.set_wake(lambda: woken.append(1))
    assert woken == [1]


def test_sim_queue_clear_wake(sim):
    q = SimIpcQueue(sim, capacity=4)
    woken = []
    q.set_wake(lambda: woken.append(1))
    q.clear_wake()
    q.try_push("x")
    assert woken == []


# -- control events ---------------------------------------------------------------------

def test_control_event_round_trip():
    ev = ControlEvent(kind=0x123, src_vri=1, dst_vri=2, payload=b"sync")
    assert decode_event(encode_event(ev)) == ev


def test_control_event_size_accounting():
    ev = ControlEvent(1, 0, 0, b"x" * 10)
    assert ev.size == len(encode_event(ev))


def test_control_event_rejects_bad_fields():
    with pytest.raises(ValueError):
        encode_event(ControlEvent(-1, 0, 0))
    with pytest.raises(ValueError):
        encode_event(ControlEvent(1, 70000, 0))


def test_control_event_truncated_rejected():
    data = encode_event(ControlEvent(1, 2, 3, b"payload"))
    with pytest.raises(ValueError):
        decode_event(data[:-3])
