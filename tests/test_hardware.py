"""Tests for CPU topology, cores, cost model, and affinity policies."""

import dataclasses

import pytest

from repro.errors import AllocationError, TopologyError
from repro.hardware import (AffinityMode, AffinityPolicy, CostModel,
                            CpuTopology, DEFAULT_COSTS, Machine)


# -- topology -----------------------------------------------------------------

def test_default_topology_is_two_quad_sockets():
    topo = CpuTopology()
    assert topo.n_cores == 8
    assert topo.socket_of(0) == 0
    assert topo.socket_of(4) == 1
    assert topo.siblings(0) == [1, 2, 3]
    assert topo.non_siblings(0) == [4, 5, 6, 7]
    assert topo.same_socket(1, 3)
    assert not topo.same_socket(3, 4)


def test_allocation_order_prefers_siblings():
    topo = CpuTopology()
    order = topo.allocation_order(0)
    assert order[:3] == (1, 2, 3)
    assert set(order[3:7]) == {4, 5, 6, 7}
    assert order[-1] == 0  # LVRM's own core only as last resort


def test_topology_validation():
    topo = CpuTopology()
    with pytest.raises(TopologyError):
        topo.socket_of(8)
    with pytest.raises(TopologyError):
        topo.cores_of_socket(2)
    with pytest.raises(TopologyError):
        CpuTopology(n_sockets=0)


# -- cost model ----------------------------------------------------------------

def test_default_costs_validate():
    DEFAULT_COSTS.validate()


def test_costs_replace_and_validate_rejects_negative():
    model = DEFAULT_COSTS.replace(ipc_op=1e-9)
    assert model.ipc_op == 1e-9
    bad = DEFAULT_COSTS.replace(ipc_op=-1.0)
    with pytest.raises(ValueError):
        bad.validate()


def test_ipc_cost_helpers():
    c = DEFAULT_COSTS
    base = c.ipc_data_cost(84, cross_socket=False)
    cross = c.ipc_data_cost(84, cross_socket=True)
    assert cross == pytest.approx(base + c.ipc_cross_socket)
    assert c.ipc_data_cost(1538, False) > base


def test_calibration_anchor_lvrm_only_pipeline():
    """DESIGN.md anchor: LVRM stage ~= 230-280 ns + ~0.5 ns/B."""
    c = DEFAULT_COSTS
    stage84 = (c.memory_rx + c.memory_rx_per_byte * 84 + c.classify_cost
               + c.balance_fixed + c.balance_jsq_per_vri
               + 2 * c.ipc_data_cost(84, False) + c.discard_tx)
    assert 1 / stage84 > 2.5e6  # > 2.5 Mfps at 84 B


# -- machine / cores ----------------------------------------------------------------

def test_core_executes_and_accounts(sim, machine):
    core = machine.core(1)

    def job(sim):
        yield from core.execute(1e-3, owner="a", time_class="us")
        return sim.now

    p = sim.process(job(sim))
    sim.run()
    assert p.value == pytest.approx(1e-3)
    assert core.busy["us"] == pytest.approx(1e-3)


def test_core_context_switch_charged_on_owner_change(sim, machine):
    core = machine.core(2)

    def seq(sim):
        yield from core.execute(1e-4, owner="a")
        yield from core.execute(1e-4, owner="b")
        yield from core.execute(1e-4, owner="b")

    sim.process(seq(sim))
    sim.run()
    assert core.context_switches == 1
    expected = 3e-4 + DEFAULT_COSTS.context_switch
    assert core.busy["us"] == pytest.approx(expected)


def test_core_serializes_two_processes(sim, machine):
    core = machine.core(3)
    ends = []

    def job(sim, name):
        yield from core.execute(1e-3, owner=name)
        ends.append((name, sim.now))

    sim.process(job(sim, "a"))
    sim.process(job(sim, "b"))
    sim.run()
    # Total must be at least 2 ms plus one context switch.
    assert ends[-1][1] >= 2e-3 + DEFAULT_COSTS.context_switch


def test_core_rejects_bad_args(sim, machine):
    core = machine.core(0)
    with pytest.raises(ValueError):
        list(core.execute(-1.0))
    with pytest.raises(ValueError):
        list(core.execute(1.0, time_class="nope"))


def test_machine_cross_socket(sim, machine):
    assert machine.cross_socket(0, 4)
    assert not machine.cross_socket(0, 3)


def test_machine_cpu_usage(sim, machine):
    machine.core(0).charge(0.5, "si")
    usage = machine.cpu_usage(window=1.0)
    assert usage[0]["si"] == pytest.approx(0.5)
    assert usage[1]["si"] == 0.0


# -- affinity -----------------------------------------------------------------------

def _policy(mode):
    return AffinityPolicy(CpuTopology(), DEFAULT_COSTS, lvrm_core=0,
                          mode=mode)


def test_sibling_placement():
    p = _policy(AffinityMode.SIBLING).place(set())
    assert p.core_id in (1, 2, 3)
    assert p.per_frame_penalty == 0.0 and not p.shared_core


def test_sibling_exhaustion_raises():
    with pytest.raises(AllocationError):
        _policy(AffinityMode.SIBLING).place({1, 2, 3})


def test_non_sibling_placement():
    p = _policy(AffinityMode.NON_SIBLING).place(set())
    assert p.core_id in (4, 5, 6, 7)


def test_same_placement_shares_lvrm_core():
    p = _policy(AffinityMode.SAME).place(set())
    assert p.core_id == 0
    assert p.shared_core


def test_default_placement_is_kernel_managed():
    p = _policy(AffinityMode.DEFAULT).place(set())
    assert p.kernel_managed
    assert p.per_frame_penalty == DEFAULT_COSTS.kernel_sched_penalty


def test_sibling_first_falls_back_then_doubles_up():
    policy = _policy(AffinityMode.SIBLING_FIRST)
    # Fill siblings, expect remote next.
    p = policy.place({1, 2, 3})
    assert p.core_id in (4, 5, 6, 7)
    # Everything taken: double up on the lowest occupied core.
    p = policy.place({1, 2, 3, 4, 5, 6, 7})
    assert p.core_id == 1
    assert p.shared_core
