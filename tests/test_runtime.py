"""Tests for the real-OS-process runtime backend.

These spawn genuine child processes connected through shared-memory
SPSC rings — slower than the DES tests, so counts stay modest.
"""

import time

import pytest

from repro.errors import RuntimeBackendError
from repro.ipc.messages import ControlEvent, KIND_PING
from repro.net.addresses import ip_to_int
from repro.net.packet import build_udp_frame
from repro.runtime import RuntimeLvrm


def _frame(dst="10.2.1.2", payload=b"data"):
    return build_udp_frame(0x020000000001, 0x020000000002,
                           ip_to_int("10.1.1.2"), ip_to_int(dst),
                           10000, 20000, payload)


@pytest.mark.timeout(60)
def test_single_worker_forwards_intact():
    frame = _frame(payload=b"integrity" * 20)
    with RuntimeLvrm(n_vris=1, worker_lifetime=40.0) as lvrm:
        for _ in range(50):
            while not lvrm.dispatch(frame):
                time.sleep(1e-4)
        out = lvrm.drain_until(50, timeout=20.0)
    assert len(out) == 50
    assert all(iface == 1 for _v, iface, _f in out)
    assert all(f == frame for _v, _i, f in out)


@pytest.mark.timeout(60)
def test_round_robin_uses_both_workers():
    frame = _frame()
    with RuntimeLvrm(n_vris=2, balancer="rr", worker_lifetime=40.0) as lvrm:
        for _ in range(40):
            while not lvrm.dispatch(frame):
                time.sleep(1e-4)
        out = lvrm.drain_until(40, timeout=20.0)
    assert len(out) == 40
    assert {v for v, _i, _f in out} == {1, 2}


@pytest.mark.timeout(60)
def test_reverse_direction_routes_to_iface0():
    reverse = build_udp_frame(0x02, 0x03, ip_to_int("10.2.1.2"),
                              ip_to_int("10.1.1.2"), 1, 2, b"ack")
    with RuntimeLvrm(n_vris=1, worker_lifetime=40.0) as lvrm:
        while not lvrm.dispatch(reverse):
            time.sleep(1e-4)
        out = lvrm.drain_until(1, timeout=20.0)
    assert out and out[0][1] == 0


@pytest.mark.timeout(60)
def test_unroutable_frame_dropped():
    stray = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                            ip_to_int("192.168.0.1"), 1, 2, b"x")
    good = _frame()
    with RuntimeLvrm(n_vris=1, worker_lifetime=40.0) as lvrm:
        lvrm.dispatch(stray)
        lvrm.dispatch(good)
        out = lvrm.drain_until(1, timeout=20.0)
        # Only the routable frame comes back.
        time.sleep(0.05)
        out.extend(lvrm.drain())
    assert len(out) == 1
    assert out[0][2] == good


@pytest.mark.timeout(60)
def test_control_ping_bounces_between_workers():
    with RuntimeLvrm(n_vris=2, worker_lifetime=40.0) as lvrm:
        # Ask worker 2 to ping "back to" worker 1.
        lvrm.send_control(ControlEvent(KIND_PING, 1, 2, b"marco"))
        deadline = time.monotonic() + 20
        relayed = []
        while time.monotonic() < deadline:
            relayed.extend(lvrm.pump_control())
            if any(ev.kind == KIND_PING and ev.dst_vri == 1
                   for ev in relayed):
                break
            time.sleep(1e-3)
        assert any(ev.kind == KIND_PING and ev.payload == b"marco"
                   and ev.dst_vri == 1 for ev in relayed)


@pytest.mark.timeout(60)
def test_stop_terminates_workers():
    lvrm = RuntimeLvrm(n_vris=2, worker_lifetime=40.0)
    procs = [v.process for v in lvrm.vris]
    lvrm.stop()
    assert all(not p.is_alive() for p in procs)
    with pytest.raises(RuntimeBackendError):
        lvrm.dispatch(_frame())


def test_validation():
    with pytest.raises(RuntimeBackendError):
        RuntimeLvrm(n_vris=0)
    with pytest.raises(RuntimeBackendError):
        RuntimeLvrm(n_vris=1, balancer="wat")
