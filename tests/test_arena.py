"""Frame arena: refcounted alloc/free properties — in-process, under
hypothesis-driven op interleavings, and across a real process boundary —
plus descriptor-ring ≡ legacy-ring equivalence under random batch
interleavings (the zero-copy twin of ``tests/test_ring_batches.py``).
"""

import multiprocessing as mp
import random
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ArenaError, ConfigError
from repro.ipc import (DESC_SLOT, RING_KINDS, FrameArena, SharedSegment,
                       arena_bytes_needed, make_ring, ring_bytes_for)
from repro.ipc.desc import pack_desc_block

CLASSES = (64, 256)
CHUNKS = 8


def _arena(chunks=CHUNKS, n_reclaim=1):
    buf = bytearray(arena_bytes_needed(CLASSES, chunks, n_reclaim))
    return FrameArena(buf, CLASSES, chunks_per_class=chunks,
                      n_reclaim=n_reclaim)


# -- basic semantics ---------------------------------------------------------

def test_alloc_takes_initial_reference_and_free_reclaims():
    arena = _arena()
    prod = arena.producer()
    off, ci = prod.alloc(48)
    assert ci == 0
    assert arena.refcount(off) == 1
    assert arena.inuse_chunks() == 1
    arena.free(off)
    assert arena.refcount(off) == 0
    assert arena.inuse_chunks() == 0
    # The reclaim ring hands the chunk back once the producer refills.
    for _ in range(CHUNKS):
        assert prod.alloc(48) is not None
    arena.close()


def test_double_free_raises():
    arena = _arena()
    prod = arena.producer()
    off, _ = prod.alloc(10)
    arena.free(off)
    with pytest.raises(ArenaError):
        arena.free(off)
    arena.close()


def test_incref_pins_past_first_free():
    arena = _arena()
    prod = arena.producer()
    off, _ = prod.alloc(10)
    assert arena.incref(off) == 2
    arena.free(off)
    assert arena.refcount(off) == 1    # still pinned
    arena.free(off)
    assert arena.refcount(off) == 0
    with pytest.raises(ArenaError):
        arena.incref(off)              # can't pin a dead chunk
    arena.close()


def test_write_roundtrips_payload():
    arena = _arena()
    prod = arena.producer()
    payload = bytes(range(64)) * 3
    off, length = prod.write(payload)
    assert bytes(arena.view(off, length)) == payload
    arena.free(off)
    arena.close()


def test_exhaustion_returns_none_and_counts_failures():
    arena = _arena()
    prod = arena.producer()
    # 2 classes x CHUNKS chunks: alloc(300) only fits nothing (largest
    # class is 256), alloc(100) falls through to class 1 when 0 is dry.
    with pytest.raises(ArenaError):
        arena.class_for(300)
    offs = [prod.alloc(200)[0] for _ in range(CHUNKS)]
    assert prod.alloc(200) is None
    assert prod.alloc_failures == 1
    for off in offs:
        arena.free(off)
    arena.close()


def test_block_write_read_free_roundtrip():
    arena = _arena(chunks=16)
    prod = arena.producer()
    payloads = [bytes([i]) * 48 for i in range(12)]
    block = prod.write_block(payloads, stamp=7)
    assert block.shape == (12, 3)
    assert [int(s) for s in block[:, 2]] == [7] * 12
    assert arena.read_block(block) == payloads
    prod.free_local_many(block[:, 0])
    assert arena.inuse_chunks() == 0
    arena.close()


def test_free_local_many_rejects_foreign_and_double_offsets():
    arena = _arena()
    prod = arena.producer()
    offs, _lens = prod.write_many([b"x" * 32, b"y" * 32])
    with pytest.raises(ArenaError):
        prod.free_local_many([offs[0], offs[0]])   # intra-batch dup
    # The dup raise is not atomic (first occurrence was freed); only
    # the second frame is still live.
    prod.free_local_many([offs[1]])
    with pytest.raises(ArenaError):
        prod.free_local_many([offs[1]])            # already free
    assert arena.inuse_chunks() == 0
    arena.close()


# -- property: random alloc/free/incref interleavings ------------------------

@given(st.lists(st.tuples(st.integers(0, 2), st.integers(0, 2 ** 20)),
                max_size=200))
@settings(max_examples=60, deadline=None)
def test_refcounts_track_model_under_interleaving(ops):
    """No double-free, no leak: after any op sequence every refcount
    matches a dict model, and releasing the survivors returns the arena
    to zero chunks in use."""
    arena = _arena()
    prod = arena.producer()
    live = {}                      # offset -> model refcount
    for op, arg in ops:
        if op == 0:                # alloc
            got = prod.alloc((arg % 256) + 1)
            if got is not None:
                off, _ci = got
                assert off not in live, "free list handed out a live chunk"
                assert arena.refcount(off) == 1
                live[off] = 1
        elif op == 1 and live:     # consumer-side free of one reference
            off = sorted(live)[arg % len(live)]
            arena.free(off)
            live[off] -= 1
            if not live[off]:
                del live[off]
        elif op == 2 and live:     # pin
            off = sorted(live)[arg % len(live)]
            arena.incref(off)
            live[off] += 1
        assert arena.inuse_chunks() == len(live)
    for off, rc in live.items():
        assert arena.refcount(off) == rc
    for off, rc in list(live.items()):
        for _ in range(rc):
            arena.free(off)
    assert arena.inuse_chunks() == 0
    assert arena.inuse_bytes() == 0
    # Every chunk must be allocatable again: nothing leaked.
    assert sum(1 for _ in range(2 * CHUNKS) if prod.alloc(1)) == 2 * CHUNKS
    arena.close()


# -- property: the consumer side lives in another process --------------------

def _consumer_proc(seg_name, descs, actions):
    """Attach to the arena, verify payloads, then free/pin per action."""
    seg = SharedSegment.attach(seg_name)
    arena = FrameArena.attach(seg.buf, size_classes=CLASSES)
    try:
        for (off, length, seq), action in zip(descs, actions):
            if bytes(arena.view(off, length)) != bytes([seq]) * length:
                raise AssertionError(f"payload {seq} corrupted")
            if action == "free":
                arena.free(off)
            elif action == "pin":           # keep one extra reference
                arena.incref(off)
                arena.free(off)
            else:                           # pin_then_free: net zero
                arena.incref(off)
                arena.free(off)
                arena.free(off)
    finally:
        arena.close()
        seg.close()


@given(st.lists(st.sampled_from(["free", "pin", "pin_then_free"]),
                min_size=1, max_size=2 * CHUNKS))
@settings(max_examples=8, deadline=None)
def test_cross_process_free_and_pin(actions):
    """A real child process attaches, frees and pins chunks; the owner
    sees exact refcounts, reclaims everything, and ends at zero."""
    seg = SharedSegment.create(arena_bytes_needed(CLASSES, CHUNKS))
    arena = FrameArena(seg.buf, CLASSES, chunks_per_class=CHUNKS)
    prod = arena.producer()
    try:
        descs = []
        for seq in range(len(actions)):
            length = 32 if seq % 2 else 200
            off, _ = prod.write(bytes([seq]) * length)
            descs.append((off, length, seq))
        child = mp.get_context("fork").Process(
            target=_consumer_proc, args=(seg.name, descs, actions))
        child.start()
        child.join(30)
        assert child.exitcode == 0
        for (off, _length, _seq), action in zip(descs, actions):
            want = 1 if action == "pin" else 0
            assert arena.refcount(off) == want, action
        # Drop the child's surviving pins; the arena must drain to zero
        # and every chunk must be allocatable again.
        for (off, _l, _s), action in zip(descs, actions):
            if action == "pin":
                arena.free(off)
        assert arena.inuse_chunks() == 0
        assert sum(1 for _ in range(2 * CHUNKS) if prod.alloc(1)) \
            == 2 * CHUNKS
    finally:
        arena.close()
        seg.close()


# -- descriptor rings ≡ legacy rings -----------------------------------------

CAPACITY = 16
SLOT = 64


def _flush(ring):
    flush = getattr(ring, "flush", None)
    if flush is not None:
        flush()


def _release(ring):
    release = getattr(ring, "release", None)
    if release is not None:
        release()


@pytest.mark.parametrize("kind", RING_KINDS)
@pytest.mark.parametrize("seed", [2011, 424242])
def test_desc_ring_equivalent_to_legacy_ring(kind, seed):
    """Same kind, same capacity, same op sequence: a descriptor ring over
    an arena accepts exactly the records a legacy copy ring accepts and
    yields the same payloads in the same order."""
    rng = random.Random(seed)
    legacy = make_ring(kind, bytearray(ring_bytes_for(kind, CAPACITY, SLOT)),
                       CAPACITY, SLOT)
    desc = make_ring(kind, bytearray(ring_bytes_for(kind, CAPACITY,
                                                    DESC_SLOT)),
                     CAPACITY, DESC_SLOT)
    arena = _arena(chunks=4 * CAPACITY)
    prod = arena.producer()
    next_id = 0
    in_flight = []                  # payloads pushed and not yet popped

    def _payloads(n):
        nonlocal next_id
        out = [f"rec-{next_id + i:06d}".encode() for i in range(n)]
        next_id += n
        return out

    for _step in range(600):
        op = rng.randrange(4)
        if op == 0:                 # batched push
            recs = _payloads(rng.randrange(1, CAPACITY + 4))
            pushed_legacy = legacy.try_push_many(recs)
            block = prod.write_block(recs)
            pushed_desc = desc.try_push_desc_block(block)
            assert pushed_desc == pushed_legacy
            if pushed_desc < len(block):
                # The ring never saw these descriptors; their chunks
                # must go straight home (the monitor does the same).
                prod.free_local_many(block[pushed_desc:, 0])
            in_flight.extend(recs[:pushed_legacy])
        elif op == 1:               # batched pop with a limit
            _flush(legacy)
            _flush(desc)
            limit = rng.choice([None, rng.randrange(1, CAPACITY + 4)])
            got_legacy = legacy.try_pop_many(limit)
            block = desc.try_pop_desc_block(limit)
            got_desc = [] if block is None else arena.read_block(block)
            assert got_desc == got_legacy
            want = len(in_flight) if limit is None else min(limit,
                                                            len(in_flight))
            assert len(got_desc) == want
            del in_flight[:want]
            if block is not None:
                prod.free_local_many(block[:, 0])
            _release(legacy)
            _release(desc)
        elif op == 2:               # fill to the brim
            recs = _payloads(CAPACITY)
            pushed_legacy = legacy.try_push_many(recs)
            block = prod.write_block(recs)
            pushed_desc = desc.try_push_desc_block(block)
            assert pushed_desc == pushed_legacy
            if pushed_desc < len(block):
                prod.free_local_many(block[pushed_desc:, 0])
            in_flight.extend(recs[:pushed_legacy])
        else:                       # drain everything
            _flush(legacy)
            _flush(desc)
            got_legacy = legacy.try_pop_many()
            block = desc.try_pop_desc_block()
            got_desc = [] if block is None else arena.read_block(block)
            assert got_desc == got_legacy == in_flight
            in_flight.clear()
            if block is not None:
                prod.free_local_many(block[:, 0])
            _release(legacy)
            _release(desc)
    # Drain the survivors and check the arena leaked nothing.
    _flush(legacy)
    _flush(desc)
    block = desc.try_pop_desc_block()
    got_desc = [] if block is None else arena.read_block(block)
    assert got_desc == legacy.try_pop_many() == in_flight
    if block is not None:
        prod.free_local_many(block[:, 0])
    assert arena.inuse_chunks() == 0
    legacy.close()
    desc.close()
    arena.close()


@pytest.mark.parametrize("kind", RING_KINDS)
def test_desc_block_carries_iface_flags_and_stamp(kind):
    """Word 1's iface/flags halves and word 2's stamp survive the ring
    untouched — the worker's echo path depends on it."""
    desc = make_ring(kind, bytearray(ring_bytes_for(kind, CAPACITY,
                                                    DESC_SLOT)),
                     CAPACITY, DESC_SLOT)
    block = pack_desc_block([128, 256], [60, 61], iface=3, flags=1,
                            stamp=123456)
    assert desc.try_push_desc_block(block) == 2
    _flush(desc)
    got = desc.try_pop_desc_block()
    assert got is not None and np.array_equal(got, block)
    assert [int(w) & 0xFFFFFFFF for w in got[:, 1]] == [60, 61]
    assert [(int(w) >> 32) & 0xFFFF for w in got[:, 1]] == [3, 3]
    assert [(int(w) >> 48) for w in got[:, 1]] == [1, 1]
    assert [int(s) for s in got[:, 2]] == [123456, 123456]
    desc.close()


def test_desc_api_requires_desc_sized_slots():
    ring = make_ring("lamport", bytearray(ring_bytes_for("lamport", 8, 16)),
                     8, 16)
    with pytest.raises(ConfigError):
        ring.try_push_desc_block(pack_desc_block([0], [1]))
    ring.close()
