"""Sharded dispatch plane: splitter codecs, shared verdict, sharded ≡
single-dispatcher equivalence, kill-a-shard conservation, the DES twin's
bit-reproducibility, and /dev/shm cleanliness for shard segments."""

import itertools
import os
import struct
import time
from collections import Counter, defaultdict

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dispatch.splitter import (hash_frame, hash_frames, pack_burst,
                                     pack_egress, shard_of_hash,
                                     unpack_burst, unpack_egress)
from repro.errors import ConfigError
from repro.net.addresses import ip_to_int
from repro.net.packet import build_udp_frame
from repro.obs.registry import default_registry
from repro.overload import SharedVerdict, verdict_bytes_needed
from repro.runtime import RuntimeLvrm

# ---------------------------------------------------------------------------
# traffic helpers
# ---------------------------------------------------------------------------

N_FLOWS = 8
_SEQ = itertools.count()
_TAG = struct.Struct("<II")  # (flow, seq) in the payload head


def _flow_frame(flow: int, seq: int) -> bytes:
    """A routable frame whose 5-tuple is determined by ``flow`` (so the
    splitter steers every frame of a flow to the same shard) and whose
    payload carries ``(flow, seq)`` for order/identity checks."""
    bases = (ip_to_int("10.1.1.0"), ip_to_int("10.2.1.0"))
    return build_udp_frame(0x020000000001, 0x020000000002,
                           ip_to_int("10.9.0.1") + flow,
                           bases[flow % 2] + 1 + flow,
                           10000 + flow, 20000,
                           _TAG.pack(flow, seq) + b"q" * 24)


def _burst(flows) -> list:
    return [_flow_frame(flow, next(_SEQ)) for flow in flows]


def _tag(frame: bytes):
    return _TAG.unpack_from(frame, 42)


# ---------------------------------------------------------------------------
# splitter: flow hash
# ---------------------------------------------------------------------------

def test_hash_scalar_and_vector_agree_uniform():
    frames = _burst([i % N_FLOWS for i in range(64)])
    batch = hash_frames(frames)
    assert batch.dtype == np.uint64
    assert batch.tolist() == [hash_frame(f) for f in frames]


def test_hash_scalar_and_vector_agree_mixed_lengths():
    frames = [_flow_frame(f, f) + b"\x00" * f for f in range(6)]
    assert hash_frames(frames).tolist() == [hash_frame(f) for f in frames]


def test_hash_is_a_flow_hash():
    # Same 5-tuple, different payloads -> same hash; different ports ->
    # (overwhelmingly) different hash.
    a = _flow_frame(3, 1)
    b = _flow_frame(3, 999)
    c = _flow_frame(4, 1)
    assert hash_frame(a) == hash_frame(b)
    assert hash_frame(a) != hash_frame(c)


def test_short_frames_hash_deterministically():
    runt = b"\x01\x02\x03"
    assert hash_frame(runt) == hash_frame(runt)
    assert hash_frames([runt, runt]).tolist() == [hash_frame(runt)] * 2


def test_steer_table_covers_all_shards():
    steer = np.arange(256, dtype=np.intp) % 3
    frames = _burst([i % N_FLOWS for i in range(64)])
    sids = shard_of_hash(hash_frames(frames), steer)
    assert set(np.unique(sids).tolist()) <= {0, 1, 2}


# ---------------------------------------------------------------------------
# splitter: jumbo codecs
# ---------------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(st.lists(st.binary(min_size=0, max_size=60), max_size=30))
def test_pack_unpack_burst_roundtrip(frames):
    records = pack_burst(frames, max_bytes=256)
    assert sum(n for _rec, n in records) == len(frames)
    out = [f for rec, _n in records for f in unpack_burst(rec)]
    assert out == frames
    for rec, _n in records:
        assert len(rec) <= 256


@settings(max_examples=50, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF),
                          st.binary(min_size=0, max_size=60)), max_size=30))
def test_pack_unpack_egress_roundtrip(outs):
    records = pack_egress(outs, max_bytes=256)
    got = [item for rec in records for item in unpack_egress(rec)]
    assert got == outs
    for rec in records:
        assert len(rec) <= 256


def test_pack_burst_oversized_frame_is_config_error():
    with pytest.raises(ValueError):
        pack_burst([b"x" * 300], max_bytes=256)


# ---------------------------------------------------------------------------
# shared verdict
# ---------------------------------------------------------------------------

def test_shared_verdict_element_min_and_reset():
    buf = bytearray(verdict_bytes_needed(3, 2))
    verdict = SharedVerdict(buf, 3, 2)
    assert verdict.rates() == [1.0, 1.0]          # born fully open
    verdict.publish(0, [1 << 16, 1 << 15])        # shard 0 halves class 1
    verdict.publish(2, [1 << 14, 1 << 16])        # shard 2 quarters class 0
    assert verdict.effective() == [1 << 14, 1 << 15]
    assert verdict.rates() == [0.25, 0.5]
    # A second attacher sees the same table through shared memory.
    peer = SharedVerdict.attach(buf)
    assert peer.effective() == [1 << 14, 1 << 15]
    # The dispatch plane reopens a crashed shard's row pre-respawn.
    verdict.reset(2)
    assert verdict.rates() == [1.0, 0.5]
    peer.close()
    verdict.close()


def test_shared_verdict_geometry_checks():
    buf = bytearray(verdict_bytes_needed(2, 3))
    verdict = SharedVerdict(buf, 2, 3)
    with pytest.raises(ConfigError):
        SharedVerdict(buf, 4, 3, create=False)
    with pytest.raises(ConfigError):
        verdict.publish(0, [1, 2])                # wrong class count
    with pytest.raises(ConfigError):
        SharedVerdict.attach(bytearray(64))       # no magic
    verdict.close()


# ---------------------------------------------------------------------------
# sharded ≡ single-dispatcher equivalence (hypothesis, real processes)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def sharded_lvrm():
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0, data_plane="arena",
                     wait_strategy="yield", dispatch_shards=2) as lvrm:
        yield lvrm


@pytest.fixture(scope="module")
def single_lvrm():
    # dispatch_shards pinned to 1: this fixture is the inline-dispatch
    # reference, and must stay inline even when parity CI exports
    # REPRO_DISPATCH_SHARDS=2.
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0, data_plane="arena",
                     wait_strategy="yield", dispatch_shards=1) as lvrm:
        yield lvrm


def test_shards_clamped_to_vri_count():
    """More shards than VRIs would leave shards owning an empty VRI
    subset that black-holes every flow steered to them; the monitor
    clamps instead and leaves a flight-recorder note."""
    with RuntimeLvrm(n_vris=1, worker_lifetime=60.0, data_plane="arena",
                     wait_strategy="yield", dispatch_shards=4) as lvrm:
        assert lvrm.dispatch_shards == 1
        assert lvrm._plane is None
        notes = [e for e in lvrm.recorder.events()
                 if e.name == "monitor.shards_clamped"]
        assert notes and notes[0].args["requested"] == 4
        assert notes[0].args["effective"] == 1


@pytest.mark.timeout(180)
@settings(max_examples=10, deadline=None)
@given(st.lists(st.integers(0, N_FLOWS - 1), min_size=1, max_size=64))
def test_sharded_output_matches_single_dispatcher(sharded_lvrm, single_lvrm,
                                                  flows):
    """Any interleaving of flows produces the same output multiset from
    the 2-shard plane as from the inline dispatcher, and the sharded
    plane preserves per-flow FIFO (the RSS-hash contract: one flow, one
    shard, one ordered path)."""
    frames = _burst(flows)
    results = {}
    for name, lvrm in (("sharded", sharded_lvrm), ("single", single_lvrm)):
        sent = lvrm.dispatch_many(list(frames))
        assert sent == len(frames)
        outs = lvrm.drain_until(len(frames), timeout=20.0)
        assert len(outs) == len(frames)
        results[name] = [bytes(f) for _vri, _iface, f in outs]
    want = Counter(bytes(f) for f in frames)
    assert Counter(results["sharded"]) == want
    assert Counter(results["single"]) == want
    # Per-flow FIFO on the sharded path: seqs were assigned in dispatch
    # order, so each flow's drained seqs must be strictly increasing.
    per_flow = defaultdict(list)
    for frame in results["sharded"]:
        flow, seq = _tag(frame)
        per_flow[flow].append(seq)
    for flow, seqs in per_flow.items():
        assert seqs == sorted(seqs), f"flow {flow} reordered: {seqs}"


# ---------------------------------------------------------------------------
# kill-a-shard: conservation + forwarding resumes
# ---------------------------------------------------------------------------

def _fold_by_class(name: str, obs_id: str):
    out = {}
    for inst in default_registry().find(name, rt=obs_id):
        cls = dict(inst.labels).get("cls", "all")
        out[cls] = out.get(cls, 0.0) + inst.value
    return out


@pytest.mark.timeout(180)
def test_kill_a_shard_conserves_counters_and_recovers():
    """The ISSUE 10 acceptance drill: kill a dispatcher shard mid-stream
    under priority-shed overload, let the crash sweep respawn it, and
    the delta-folded counters still reconcile offered == admitted + shed
    per class — frames lost to the kill vanish from all three series
    coherently because they ride the same unshipped snapshot."""
    drained_after_kill = 0
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0, data_plane="arena",
                     wait_strategy="yield", dispatch_shards=2,
                     overload_policy="priority-shed",
                     stats_interval=0.05) as lvrm:
        obs_id = lvrm.obs_id
        plane = lvrm._plane
        frames = _burst([i % N_FLOWS for i in range(128)])
        deadline = time.monotonic() + 0.5
        while time.monotonic() < deadline:
            lvrm.dispatch_many(list(frames))
            lvrm.drain()
            lvrm.pump_control()
        plane.shards[0].process.kill()
        plane.shards[0].process.join(5.0)
        assert plane.dead_shards() == [0]
        assert plane.poll() == 1                  # the crash sweep
        assert plane.restarts == 1
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            lvrm.dispatch_many(list(frames))
            drained_after_kill += len(lvrm.drain())
            lvrm.pump_control()
        # Let in-flight work finish so the final fold is quiescent.
        settle = time.monotonic() + 1.0
        while time.monotonic() < settle:
            drained_after_kill += len(lvrm.drain())
            lvrm.pump_control()
            time.sleep(0.01)
    assert drained_after_kill > 0                 # forwarding resumed
    offered = _fold_by_class("dispatch_offered_total", obs_id)
    admitted = _fold_by_class("overload_admitted_total", obs_id)
    shed = _fold_by_class("overload_shed_total", obs_id)
    assert offered and sum(offered.values()) > 0
    for cls in offered:
        assert offered[cls] == admitted.get(cls, 0.0) + shed.get(cls, 0.0), (
            f"class {cls}: offered {offered[cls]} != admitted "
            f"{admitted.get(cls, 0.0)} + shed {shed.get(cls, 0.0)}")


@pytest.mark.timeout(180)
def test_worker_failover_under_sharding():
    """Killing a *worker* (not a shard) while sharded: the shard must
    hold that VRI's traffic through the detach/attach window instead of
    crashing, and forwarding resumes once the replacement attaches."""
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0, data_plane="arena",
                     wait_strategy="yield", dispatch_shards=2) as lvrm:
        victim = lvrm.vris[0]
        victim.process.kill()
        victim.process.join(5.0)
        assert [v.vri_id for v in lvrm.dead_workers()] == [victim.vri_id]
        assert lvrm.respawn_dead() == 1
        frames = _burst([i % N_FLOWS for i in range(32)])
        sent = lvrm.dispatch_many(frames)
        assert sent == len(frames)
        outs = lvrm.drain_until(len(frames), timeout=20.0)
        assert len(outs) == len(frames)
        # No shard died in the process (regression check: the failover
        # window used to crash the owning shard on dispatch).
        assert lvrm._plane.dead_shards() == []
        assert lvrm._plane.restarts == 0


# ---------------------------------------------------------------------------
# DES twin
# ---------------------------------------------------------------------------

def test_des_sharded_scenario_is_bit_reproducible(monkeypatch):
    """The dispatch_variant(shards) twin stays inside the determinism
    contract: two sharded DES runs with the same seed agree bit-for-bit
    on the full report."""
    from repro.faults import FaultSchedule, FaultSpec
    from repro.faults.scenario import run_des_scenario

    sched = FaultSchedule((FaultSpec(t=0.5, kind="kill", vri=1),))
    a = run_des_scenario(sched, duration=1.5, dispatch_shards=2)
    b = run_des_scenario(sched, duration=1.5, dispatch_shards=2)
    assert a == b
    assert a["dispatch_shards"] == 2
    assert a["sent"] > 0
    # The single-dispatcher twin still reports its own shape.  Clear
    # the fleet-wide override first: parity CI exports
    # REPRO_DISPATCH_SHARDS=2, which would otherwise reshape this
    # default-shards run.
    monkeypatch.delenv("REPRO_DISPATCH_SHARDS", raising=False)
    c = run_des_scenario(sched, duration=1.5)
    assert c["dispatch_shards"] == 1


# ---------------------------------------------------------------------------
# /dev/shm cleanliness
# ---------------------------------------------------------------------------

def _shm_entries():
    try:
        return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
    except FileNotFoundError:  # non-Linux: nothing to assert against
        return None


@pytest.mark.timeout(180)
def test_sharded_stop_leaves_no_shm_segments():
    """2 workers x 4 rings + the arena + 2 shards x 4 rings = 17
    segments while running; a shard respawn reuses its rings (no new
    segments); stop() unlinks every one."""
    before = _shm_entries()
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0, data_plane="arena",
                     wait_strategy="yield", dispatch_shards=2) as lvrm:
        during = _shm_entries()
        if during is not None:
            assert len(during - before) == 17
        plane = lvrm._plane
        plane.shards[1].process.kill()
        plane.shards[1].process.join(5.0)
        plane.poll()
        if during is not None:
            assert _shm_entries() == during       # respawn reused rings
        frames = _burst([i % N_FLOWS for i in range(16)])
        lvrm.dispatch_many(frames)
        lvrm.drain_until(len(frames), timeout=20.0)
    after = _shm_entries()
    if after is not None:
        assert after - before == set()
