"""Sanity for the FULL profile and profile invariants (no heavy runs)."""

import dataclasses

import pytest

from repro.experiments import BENCH, FULL, QUICK
from repro.experiments.common import Profile


def test_full_profile_mirrors_paper_parameters():
    # Chapter 4: seven frame sizes, 5 s ramp steps, 1 s allocation
    # period, 100 FTP flow pairs, 448 Kfps ceiling implied elsewhere.
    assert FULL.frame_sizes == (84, 128, 256, 512, 1024, 1280, 1538)
    assert FULL.ramp_step == 5.0
    assert FULL.allocation_period == 1.0
    assert FULL.ftp_sessions == 100
    assert FULL.exp4_flows[-1] == 100
    assert FULL.rate_scale == 1.0


def test_profiles_preserve_step_to_period_ratio():
    for profile in (QUICK, BENCH, FULL):
        assert profile.ramp_step / profile.allocation_period == \
            pytest.approx(5.0)


def test_profiles_ordered_by_scale():
    assert QUICK.window < BENCH.window <= FULL.window
    assert QUICK.trace_frames < BENCH.trace_frames < FULL.trace_frames
    assert QUICK.ftp_sessions <= BENCH.ftp_sessions <= FULL.ftp_sessions


def test_profile_validation():
    with pytest.raises(Exception):
        dataclasses.replace(QUICK, probes=1)
    with pytest.raises(Exception):
        dataclasses.replace(QUICK, warmup=-1.0)


def test_app_read_total_implies_700mbps_plateau():
    # 92 MB/s * 8 = 736 Mbit/s: the Figure 4.22 plateau's ceiling.
    for profile in (QUICK, BENCH, FULL):
        assert 700e6 < profile.app_read_total * 8 < 800e6
