"""Integration tests: every experiment reproduces the paper's *shape*.

Each test runs the real experiment harness under a miniature profile and
asserts the qualitative claims of Chapter 4 (orderings, staircases,
bounds) rather than absolute numbers — the substitution contract of
DESIGN.md.
"""

import dataclasses

import numpy as np
import pytest

from repro.experiments import QUICK, run_experiment
from repro.experiments.common import get_profile
from repro.experiments.exp1_overhead import exp1a_cpu, exp1c, exp1d, exp1e
from repro.experiments.exp2_core_alloc import (exp2a, exp2b, exp2c,
                                               exp2c_reaction, exp2e)
from repro.experiments.exp3_load_balance import exp3a, exp3b, run_ftp_scenario
from repro.errors import ConfigError

#: Sub-QUICK profile for the search-heavy tests.
TESTP = dataclasses.replace(
    QUICK, name="test", frame_sizes=(84, 1538), probes=5,
    window=0.015, warmup=0.005, ping_count=30, trace_frames=8000,
    ctrl_events=25, ramp_step=0.22, allocation_period=0.045,
    rate_scale=0.15, ftp_sessions=8, ftp_window=0.2, ftp_warmup=0.15,
    exp4_flows=(10,), exp4_window=0.2)


def test_profile_selection(monkeypatch):
    assert get_profile("quick").name == "quick"
    monkeypatch.setenv("REPRO_PROFILE", "bench")
    assert get_profile().name == "bench"
    with pytest.raises(ConfigError):
        get_profile("nope")


def test_registry_rejects_unknown():
    with pytest.raises(ConfigError):
        run_experiment("exp99", QUICK)


# -- Experiment 1 ------------------------------------------------------------------

def test_exp1c_lvrm_only_throughput_shape():
    r = exp1c(TESTP)
    cpp84 = r.value("mfps", vr_type="cpp", frame_size=84)
    cpp1538 = r.value("mfps", vr_type="cpp", frame_size=1538)
    click84 = r.value("mfps", vr_type="click", frame_size=84)
    # Anchors: multi-Mfps at 84 B, ~1 Mfps (=> ~11 Gbps) at 1538 B.
    assert cpp84 > 2.0
    assert 0.7 < cpp1538 < 1.2
    assert r.value("gbps", vr_type="cpp", frame_size=1538) > 9.0
    # Click VR trails C++ VR decisively.
    assert click84 < cpp84 / 3


def test_exp1d_lvrm_only_latency_shape():
    r = exp1d(TESTP)
    for size in TESTP.frame_sizes:
        cpp = r.value("latency_us", vr_type="cpp", frame_size=size)
        click = r.value("latency_us", vr_type="click", frame_size=size)
        assert cpp < 15.0          # the paper's "within 15 us"
        assert click < 40.0        # and Click's 25-35 us band
        assert click > cpp


def test_exp1e_control_latency_shape():
    r = exp1e(TESTP)
    for size in (64, 256, 512, 1024):
        no_load = r.value("latency_us", load="no-load", event_bytes=size)
        full = r.value("latency_us", load="full-load", event_bytes=size)
        assert no_load < 15.0
        assert full < 25.0
        assert full >= no_load * 0.95  # full load never cheaper (noise-tolerant)


def test_exp1a_mechanism_ordering_at_84b():
    r = run_experiment("exp1a", TESTP)
    fps = {m: r.value("kfps", mechanism=m, frame_size=84)
           for m in ("native", "lvrm-cpp-pfring", "lvrm-cpp-raw",
                     "lvrm-click-pfring", "vmware", "qemu-kvm")}
    # PF_RING LVRM ~= native (within 5%).
    assert fps["lvrm-cpp-pfring"] > 0.95 * fps["native"]
    # Raw socket is the paper's ~-1/3 at minimum frames.
    assert fps["lvrm-cpp-raw"] < 0.8 * fps["lvrm-cpp-pfring"]
    # Click < C++; hypervisors worst; KVM pathological.
    assert fps["lvrm-click-pfring"] < fps["lvrm-cpp-raw"]
    assert fps["vmware"] < fps["lvrm-click-pfring"]
    assert fps["qemu-kvm"] < fps["vmware"] / 3


def test_exp1a_large_frames_converge_to_link_rate():
    r = run_experiment("exp1a", TESTP)
    for m in ("native", "lvrm-cpp-pfring", "lvrm-cpp-raw"):
        mbps = r.value("mbps", mechanism=m, frame_size=1538)
        assert mbps > 900.0  # all land near the 1G wire


def test_exp1a_cpu_breakdown():
    r = exp1a_cpu(TESTP)
    native = r.by(mechanism="native")[0]
    raw = r.by(mechanism="lvrm-cpp-raw")[0]
    pfring = r.by(mechanism="lvrm-cpp-pfring")[0]
    cols = r.columns
    us, sy, si = cols.index("us"), cols.index("sy"), cols.index("si")
    # Native: softirq only, mostly idle.
    assert native[si] > 0 and native[us] == 0 and native[sy] == 0
    # Raw socket: system time dominates; PF_RING: user time dominates.
    assert raw[sy] > raw[us]
    assert pfring[us] > 0.9 and pfring[sy] == 0


def test_exp1b_rtt_ordering():
    r = run_experiment("exp1b", TESTP)
    native = r.value("rtt_us", mechanism="native", frame_size=84)
    pfring = r.value("rtt_us", mechanism="lvrm-cpp-pfring", frame_size=84)
    vmware = r.value("rtt_us", mechanism="vmware", frame_size=84)
    kvm = r.value("rtt_us", mechanism="qemu-kvm", frame_size=84)
    # The paper's band: LVRM ~= native, both ~70-120 us.
    assert 60 < native < 130
    assert pfring < native * 1.25
    assert vmware > 2.5 * native
    assert kvm > vmware


# -- Experiment 2 -----------------------------------------------------------------

def test_exp2a_affinity_ordering():
    r = exp2a(TESTP)
    cpp = {row[1]: row[2] for row in r.by(vr_type="cpp")}
    assert cpp["sibling"] >= cpp["non-sibling"] > cpp["default"] > cpp["same"]
    click = {row[1]: row[2] for row in r.by(vr_type="click")}
    # Click is bottlenecked by its own pipeline: sibling ~= non-sibling.
    assert click["non-sibling"] > 0.9 * click["sibling"]
    assert click["same"] < 0.7 * click["sibling"]


def test_exp2b_scales_then_drops_past_cores():
    r = exp2b(TESTP)
    cpp = {row[1]: row[2] for row in r.by(vr_type="cpp")}
    # Linear-ish region: within 7% of ideal 60c up to 6 cores.
    for c in range(1, 7):
        assert cpp[c] == pytest.approx(min(60.0 * c, 360.0), rel=0.08)
    # Past the 7 free cores, contention bites.
    assert cpp[8] < cpp[7]


def test_exp2c_staircase_tracks_ramp():
    r = exp2c(TESTP)
    rows = [(t, rate, cores) for t, rate, cores in r.rows]
    by_rate = {}
    for _t, rate, cores in rows:
        by_rate.setdefault(rate, []).append(cores)
    # Monotone in offered rate: more load, at least as many cores.
    rates = sorted(set(r for _t, r, _c in rows))
    means = [np.mean(by_rate[rate]) for rate in rates]
    assert all(b >= a - 0.51 for a, b in zip(means, means[1:]))
    # Peak rate (360 Kfps paper scale) drives near the 7-core budget.
    peak_cores = max(c for _t, r, c in rows)
    assert peak_cores >= 6
    # Low rate allocates little.
    low = min(c for t, r, c in rows if r == rates[1])
    assert low <= 3


def test_exp2c_reaction_times_within_paper_bounds():
    r = exp2c_reaction(TESTP)
    alloc = r.by(kind="allocate")[0]
    dealloc = r.by(kind="deallocate")[0]
    cols = r.columns
    mean_us, max_us = cols.index("mean_us"), cols.index("max_us")
    # Paper: allocations within 900 us, deallocations within 700 us,
    # allocations costlier (vfork vs kill).
    assert alloc[max_us] < 1000.0
    assert dealloc[max_us] < 800.0
    assert alloc[mean_us] > dealloc[mean_us]


def test_exp2e_cores_track_service_ratio():
    r = exp2e(TESTP)
    vr1 = r.value("cores", vr="vr1")
    vr2 = r.value("cores", vr="vr2")
    # VR1's VRIs are twice as slow: about twice the cores.
    assert vr1 > vr2
    assert 1.4 < vr1 / vr2 < 3.0


# -- Experiment 3 ------------------------------------------------------------------

def test_exp3a_schemes_all_near_ideal_jsq_best():
    r = exp3a(TESTP)
    cpp = {row[1]: row[2] for row in r.by(vr_type="cpp")}
    ideal = r.by(vr_type="cpp")[0][3]
    for scheme, kfps in cpp.items():
        assert kfps > 0.93 * ideal
    assert cpp["jsq"] >= cpp["random"] - 0.02 * ideal
    assert cpp["jsq"] >= cpp["rr"] - 0.02 * ideal


def test_exp3b_two_vrs_fair():
    r = exp3b(TESTP)
    for row in r.rows:
        _vr, _scheme, t_kfps, ideal = row
        assert t_kfps > 0.9 * ideal


def test_exp3c_ftp_scenario_properties():
    from repro.metrics import jain_index, max_min_fairness
    from repro.experiments.exp2_core_alloc import DUMMY_LOAD_1_60MS
    results = {}
    for label, mech, scheme, flow in (
            ("native", "native", "jsq", False),
            ("frame-jsq", "lvrm", "jsq", False),
            ("flow-jsq", "lvrm", "jsq", True)):
        goodputs, _s, _sim = run_ftp_scenario(
            TESTP, mech, scheme, flow, TESTP.ftp_sessions,
            dummy_load=DUMMY_LOAD_1_60MS)
        results[label] = goodputs
    for label, g in results.items():
        agg = g.sum()
        # Aggregate sits below the link, in the read-limited regime.
        assert 0.4e9 < agg < 1.0e9, label
        assert max_min_fairness(g) > 0.5, label
        assert jain_index(g) > 0.85, label
    # LVRM tracks native closely.
    assert results["frame-jsq"].sum() > 0.85 * results["native"].sum()
    assert results["flow-jsq"].sum() > 0.85 * results["native"].sum()


# -- Experiment 4 -----------------------------------------------------------------

def test_exp4_scalability_properties():
    from repro.metrics import jain_index, max_min_fairness
    for mech, scheme, flow in (("native", "jsq", False),
                               ("lvrm", "jsq", False)):
        goodputs, _s, _sim = run_ftp_scenario(
            TESTP, mech, scheme, flow, n_sessions=10,
            read_rate_spread=0.15)
        # Near-homogeneous GETs: very high fairness (paper: >0.8/>0.99).
        assert max_min_fairness(goodputs) > 0.75
        assert jain_index(goodputs) > 0.97
        assert goodputs.sum() > 0.5e9
