"""Tests for the lvrm-exp CLI and the package quickstart."""

import dataclasses

import pytest

from repro import quickstart
from repro.experiments import EXPERIMENTS, QUICK
from repro.experiments.cli import main
from repro.experiments.common import ExperimentResult


def test_cli_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for exp_id in EXPERIMENTS:
        assert exp_id in out
    assert "Fig 4.2" in out


def test_cli_run_single(monkeypatch, capsys):
    called = {}

    def fake(profile):
        called["profile"] = profile
        r = ExperimentResult("exp1c", "fake", columns=("a", "b"))
        r.add(1, 2.0)
        return r

    monkeypatch.setitem(EXPERIMENTS, "exp1c", (fake, "Fig 4.5", "fake"))
    assert main(["run", "exp1c", "--profile", "quick"]) == 0
    out = capsys.readouterr().out
    assert "exp1c" in out and "profile=quick" in out
    assert called["profile"].name == "quick"


def test_cli_run_unknown_experiment(capsys):
    assert main(["run", "exp999"]) == 1
    assert "failed" in capsys.readouterr().err


def test_cli_run_all_keeps_going_after_failure(monkeypatch, capsys):
    def boom(profile):
        raise RuntimeError("kaput")

    ok_result = ExperimentResult("x", "ok", columns=("v",))
    ok_result.add(1)
    fakes = {exp_id: ((lambda p, r=ok_result: r), fig, desc)
             for exp_id, (_f, fig, desc) in EXPERIMENTS.items()}
    fakes["exp1a"] = (boom, "Fig 4.2", "boom")
    monkeypatch.setattr("repro.experiments.cli.EXPERIMENTS", fakes)
    monkeypatch.setattr("repro.experiments.registry.EXPERIMENTS", fakes)
    assert main(["run", "all", "--profile", "quick"]) == 1
    captured = capsys.readouterr()
    assert "kaput" in captured.err
    assert captured.out.count("== x: ok ==") == len(fakes) - 1


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_quickstart_smoke():
    stats = quickstart(n_frames=1500)
    assert stats.forwarded == 1500


def test_experiment_result_helpers():
    r = ExperimentResult("id", "title", columns=("a", "b"))
    r.add("x", 1.0)
    r.add("y", 2.0)
    assert r.column("b") == [1.0, 2.0]
    assert r.value("b", a="x") == 1.0
    with pytest.raises(ValueError):
        r.value("b", a="zzz")
    with pytest.raises(ValueError):
        r.add("only-one-cell")
    rendered = r.render()
    assert "title" in rendered and "x" in rendered


def test_profiles_are_scaled_consistently():
    # QUICK must preserve the paper's step/period ratio of 5:1.
    assert QUICK.ramp_step / QUICK.allocation_period == pytest.approx(5.0)
    with pytest.raises(Exception):
        dataclasses.replace(QUICK, window=-1.0)


def test_cli_faults_overload_opts_threading(monkeypatch, capsys, tmp_path):
    """--overload-opts accepts inline JSON or @FILE (unwrapping a
    top-level "overload" key and adopting its pinned policy), and the
    parsed dict reaches run_des_scenario."""
    seen = {}

    def fake_des(schedule, **kw):
        seen.update(kw)
        return {"flows_ok": True, "forwarded": 1, "flows_total": 0,
                "lost_flows": [], "faults": {"injected": 0},
                "supervisor": {"failovers": 0, "restarts": 0,
                               "degraded": 0}}

    monkeypatch.setattr("repro.faults.scenario.run_des_scenario", fake_des)
    cfg = tmp_path / "overload.json"
    cfg.write_text('{"overload": {"policy": "tail-drop", "band_lo": 0.1,'
                   ' "band_hi": 0.4}}')
    assert main(["faults",
                 "--fault-schedule", "examples/configs/faults_kill_vri1.json",
                 "--backend", "des", "--overload-x", "4",
                 "--overload-opts", f"@{cfg}"]) == 0
    assert seen["overload_policy"] == "tail-drop"  # adopted from the file
    assert seen["overload_x"] == 4.0
    assert seen["overload_opts"] == {"policy": "tail-drop",
                                     "band_lo": 0.1, "band_hi": 0.4}
    assert "scenario          OK" in capsys.readouterr().out

    seen.clear()
    assert main(["faults",
                 "--fault-schedule", "examples/configs/faults_kill_vri1.json",
                 "--backend", "des", "--overload-policy", "priority-shed",
                 "--overload-opts", '{"floor": 0.1}']) == 0
    assert seen["overload_policy"] == "priority-shed"
    assert seen["overload_opts"] == {"floor": 0.1}
    capsys.readouterr()


def test_cli_faults_overload_opts_rejects_bad_json(capsys):
    assert main(["faults",
                 "--fault-schedule", "examples/configs/faults_kill_vri1.json",
                 "--backend", "des",
                 "--overload-opts", "{not json"]) == 2
    assert "bad --overload-opts" in capsys.readouterr().err
