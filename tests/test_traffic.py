"""Tests for UDP senders, ramps, sinks, ping, and traces."""

import pytest

from repro.net.frame import PROTO_ICMP
from repro.net.testbed import IFACE_SENDER_SIDE
from repro.traffic import (Coordinator, EchoResponder, FrameSink, Pinger,
                           RampSender, UdpSender, step_ramp)
from repro.traffic.trace import flow_mix_trace, synthetic_trace


# -- UDP CBR ---------------------------------------------------------------------

def test_udp_sender_rate(sim, testbed):
    sender = UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                       rate_fps=10_000, t_start=0.0, t_stop=0.1)
    sim.run(until=0.2)
    assert sender.sent == pytest.approx(1000, abs=2)


def test_udp_sender_capped_by_host_cpu(sim, testbed):
    # 1 Mfps requested, but the host can only generate ~227 Kfps.
    sender = UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                       rate_fps=1_000_000, t_start=0.0, t_stop=0.05)
    sim.run(until=0.1)
    per_frame = testbed.hosts["s1"].costs.sender_per_frame
    assert sender.sent == pytest.approx(0.05 / per_frame, rel=0.01)


def test_udp_sender_stop(sim, testbed):
    sender = UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                       rate_fps=10_000)
    sim.call_in(0.01, sender.stop)
    sim.run(until=0.1)
    assert sender.sent == pytest.approx(100, abs=2)


def test_udp_sender_rejects_bad_rate(sim, testbed):
    with pytest.raises(ValueError):
        UdpSender(sim, testbed.hosts["s1"], 1, rate_fps=0)


def test_coordinator_simultaneous_start(sim, testbed):
    coord = Coordinator(sim, start_at=0.01)
    s1 = coord.register(testbed.hosts["s1"], testbed.host_ip("r1"), 1000)
    s2 = coord.register(testbed.hosts["s2"], testbed.host_ip("r2"), 1000)
    sim.run(until=0.009)
    assert coord.total_sent() == 0
    sim.run(until=0.05)
    assert s1.sent > 0 and s2.sent > 0
    coord.stop_all()
    total = coord.total_sent()
    sim.run(until=0.1)
    assert coord.total_sent() == total


# -- ramps -----------------------------------------------------------------------

def test_step_ramp_shape():
    sched = step_ramp(peak_fps=300.0, step_fps=100.0, step_duration=1.0)
    rates = [r for _t, r in sched]
    assert rates == [100.0, 200.0, 300.0, 200.0, 100.0, 0.0]
    times = [t for t, _r in sched]
    assert times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]


def test_step_ramp_validation():
    with pytest.raises(ValueError):
        step_ramp(10.0, 20.0, 1.0)
    with pytest.raises(ValueError):
        step_ramp(10.0, 10.0, 0.0)


def test_ramp_sender_follows_schedule(sim, testbed):
    sched = [(0.0, 1000.0), (0.05, 5000.0), (0.1, 0.0)]
    sender = RampSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                        sched)
    sim.run(until=0.2)
    # 0.05 s at 1 kfps + 0.05 s at 5 kfps = 50 + 250 = ~300 frames.
    assert sender.sent == pytest.approx(300, abs=5)
    assert sender.rate_at(0.07) == 5000.0
    assert sender.rate_at(0.2) == 0.0


def test_ramp_sender_rejects_unordered_schedule(sim, testbed):
    with pytest.raises(ValueError):
        RampSender(sim, testbed.hosts["s1"], 1,
                   [(1.0, 10.0), (0.5, 20.0)])


# -- sinks --------------------------------------------------------------------------

def test_frame_sink_counts_by_flow(sim, testbed):
    sink = FrameSink(sim, testbed.hosts["r1"], rate_bin=0.01)
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=5_000, t_start=0.0, t_stop=0.05, src_port=111)
    # Frames travel via the wire path: through switch A they would need
    # the gateway; inject directly onto switch B's side instead.
    sim.run(until=0.001)
    # simpler: hand frames straight to the host
    from repro.net.frame import Frame
    for i in range(10):
        testbed.hosts["r1"].receive(
            Frame(84, testbed.host_ip("s1"), testbed.host_ip("r1"),
                  src_port=7, dst_port=8, t_created=sim.now))
    sim.run(until=0.01)
    assert sink.received == 10
    key = (testbed.host_ip("s1"), testbed.host_ip("r1"), 17, 7, 8)
    assert sink.by_flow[key] == 10
    assert sink.rates is not None and sink.rates.total() == 10
    assert sink.mean_latency() >= 0


# -- ping ----------------------------------------------------------------------------

def test_pinger_requires_responder_else_losses(sim, testbed):
    pinger = Pinger(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                    count=3, timeout=0.005)
    sim.run(until=1.0)
    assert pinger.lost == 3
    assert len(pinger.rtts) == 0


def test_pinger_direct_echo(sim, testbed):
    # Wire the two hosts through the switches without a gateway by
    # echoing at switch level is not possible; test the responder logic
    # by delivering requests straight to the receiver host.
    EchoResponder(sim, testbed.hosts["r1"])
    from repro.net.frame import Frame
    req = Frame(84, testbed.host_ip("s1"), testbed.host_ip("r1"),
                proto=PROTO_ICMP, payload=0)
    testbed.hosts["r1"].receive(req)
    sim.run(until=0.01)
    # The reply went out towards switch B and was routed... to the
    # gateway port (no direct path): it must at least have left r1.
    assert testbed.hosts["r1"].tx_count == 1


def test_pinger_validation(sim, testbed):
    with pytest.raises(ValueError):
        Pinger(sim, testbed.hosts["s1"], 1, count=0)


# -- traces -------------------------------------------------------------------------

def test_synthetic_trace_properties():
    frames = list(synthetic_trace(100, 256))
    assert len(frames) == 100
    assert all(f.size == 256 for f in frames)
    assert len({f.five_tuple for f in frames}) == 1


def test_flow_mix_trace_distinct_flows():
    frames = list(flow_mix_trace(500, n_flows=10, seed=1))
    flows = {f.five_tuple for f in frames}
    assert len(flows) == 10


def test_flow_mix_trace_deterministic():
    a = [f.five_tuple for f in flow_mix_trace(50, 5, seed=9)]
    b = [f.five_tuple for f in flow_mix_trace(50, 5, seed=9)]
    assert a == b


def test_flow_mix_trace_sizes():
    frames = list(flow_mix_trace(200, 3, sizes=(84, 1538), seed=2))
    sizes = {f.size for f in frames}
    assert sizes == {84, 1538}


def test_trace_validation():
    with pytest.raises(ValueError):
        list(synthetic_trace(-1))
    with pytest.raises(ValueError):
        list(flow_mix_trace(10, 0))
