"""Batched ring I/O ≡ scalar ring I/O, for all three queue kinds.

The batched entry points (``try_push_many`` / ``try_pop_many``) must be
observationally identical to loops over ``try_push`` / ``try_pop``: same
records out, same order, same backpressure at the full/empty boundaries,
across wrap-around.  A seeded random interleaving drives both a ring and
a plain-list model through mixed scalar/batched operations and checks
every return value against the model.
"""

import random

import pytest

from repro.errors import ConfigError
from repro.ipc import RING_KINDS, attach_ring, make_ring, ring_bytes_for

CAPACITY = 16
SLOT = 64


def _make(kind, capacity=CAPACITY, slot=SLOT):
    buf = bytearray(ring_bytes_for(kind, capacity, slot))
    return make_ring(kind, buf, capacity, slot)


def _flush(ring):
    flush = getattr(ring, "flush", None)
    if flush is not None:
        flush()


def _release(ring):
    # MCRingBuffer consumers hand slots back lazily (once per batch);
    # releasing eagerly here keeps producer-side capacity deterministic
    # so the model can assert exact push counts.
    release = getattr(ring, "release", None)
    if release is not None:
        release()


def _record(i):
    return f"rec-{i:06d}".encode()


# -- basic batched semantics -------------------------------------------------

@pytest.mark.parametrize("kind", RING_KINDS)
def test_push_many_then_pop_many_round_trip(kind):
    ring = _make(kind)
    records = [_record(i) for i in range(10)]
    assert ring.try_push_many(records) == 10
    _flush(ring)
    assert ring.try_pop_many() == records
    assert ring.try_pop_many() == []


@pytest.mark.parametrize("kind", RING_KINDS)
def test_push_many_stops_at_full(kind):
    ring = _make(kind)
    records = [_record(i) for i in range(CAPACITY + 7)]
    assert ring.try_push_many(records) == CAPACITY
    _flush(ring)
    assert ring.try_push_many([b"extra"]) == 0
    assert ring.try_pop_many() == records[:CAPACITY]


@pytest.mark.parametrize("kind", RING_KINDS)
def test_pop_many_respects_max_records(kind):
    ring = _make(kind)
    records = [_record(i) for i in range(12)]
    ring.try_push_many(records)
    _flush(ring)
    assert ring.try_pop_many(5) == records[:5]
    assert ring.try_pop_many(100) == records[5:]


@pytest.mark.parametrize("kind", RING_KINDS)
def test_batched_wraparound(kind):
    """Runs that straddle the top of the slot array stay in order."""
    ring = _make(kind)
    # Advance the cursors near the end of the array first.
    for lap in range(CAPACITY - 3):
        assert ring.try_push(_record(lap))
        _flush(ring)
        assert ring.try_pop() == _record(lap)
    _release(ring)
    records = [_record(100 + i) for i in range(CAPACITY)]
    assert ring.try_push_many(records) == CAPACITY
    _flush(ring)
    assert ring.try_pop_many() == records


@pytest.mark.parametrize("kind", RING_KINDS)
def test_push_many_oversize_record_raises(kind):
    ring = _make(kind)
    with pytest.raises(ConfigError):
        ring.try_push_many([b"ok", b"x" * (SLOT * 2)])


@pytest.mark.parametrize("kind", RING_KINDS)
def test_batched_and_scalar_interoperate_across_attach(kind):
    """A scalar consumer attached to the same buffer sees batched pushes."""
    buf = bytearray(ring_bytes_for(kind, CAPACITY, SLOT))
    producer = make_ring(kind, buf, CAPACITY, SLOT)
    consumer = attach_ring(kind, buf)
    records = [_record(i) for i in range(6)]
    assert producer.try_push_many(records) == 6
    _flush(producer)
    popped = [consumer.try_pop() for _ in range(6)]
    assert popped == records
    assert consumer.try_pop() is None


# -- property: random interleaving vs a list model ---------------------------

@pytest.mark.parametrize("kind", RING_KINDS)
@pytest.mark.parametrize("seed", [2011, 424242])
def test_random_interleaving_matches_model(kind, seed):
    rng = random.Random(seed)
    ring = _make(kind)
    model = []          # records pushed (visible or not) and not yet popped
    next_id = 0

    for _step in range(3000):
        op = rng.randrange(6)
        if op == 0:  # scalar push
            rec = _record(next_id)
            ok = ring.try_push(rec)
            if ok:
                model.append(rec)
                next_id += 1
            else:
                assert len(model) == CAPACITY
        elif op == 1:  # batched push
            n = rng.randrange(1, CAPACITY + 4)
            recs = [_record(next_id + i) for i in range(n)]
            pushed = ring.try_push_many(recs)
            assert pushed == min(n, CAPACITY - len(model))
            model.extend(recs[:pushed])
            next_id += pushed
        elif op == 2:  # scalar pop
            _flush(ring)
            rec = ring.try_pop()
            if rec is None:
                assert not model
            else:
                assert rec == model.pop(0)
            _release(ring)
        elif op == 3:  # batched pop
            _flush(ring)
            limit = rng.choice([None, rng.randrange(1, CAPACITY + 4)])
            got = ring.try_pop_many(limit)
            want_n = len(model) if limit is None else min(limit, len(model))
            assert got == model[:want_n]
            del model[:want_n]
            _release(ring)
        elif op == 4:  # drain everything (hits the empty boundary)
            _flush(ring)
            got = ring.try_pop_many()
            assert got == model
            model.clear()
            assert ring.try_pop() is None
            _release(ring)
        else:  # fill to the brim (hits the full boundary)
            n = CAPACITY - len(model)
            recs = [_record(next_id + i) for i in range(n)]
            assert ring.try_push_many(recs) == n
            model.extend(recs)
            next_id += n
            assert not ring.try_push(b"overflow")
            assert ring.try_push_many([b"overflow"]) == 0
    # Whatever survives the walk drains in order.
    _flush(ring)
    assert ring.try_pop_many() == model


# -- hwm: the consumer side must see occupancy too ---------------------------

@pytest.mark.parametrize("kind", RING_KINDS)
def test_consumer_side_hwm_counts_backlog(kind):
    """A consumer that attaches late still observes the standing backlog
    (pops sample occupancy *before* releasing the slot)."""
    buf = bytearray(ring_bytes_for(kind, CAPACITY, SLOT))
    producer = make_ring(kind, buf, CAPACITY, SLOT)
    consumer = attach_ring(kind, buf)
    for i in range(12):
        assert producer.try_push(_record(i))
    _flush(producer)
    if kind == "fastforward":
        # FastForward's scalar pop amortizes the O(capacity) flag scan;
        # the batched pop samples every time.
        consumer.try_pop_many()
    else:
        for _ in range(12):
            assert consumer.try_pop() is not None
    assert consumer.hwm >= 12
