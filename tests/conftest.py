"""Shared fixtures for the test suite."""

import pytest

from repro.experiments.common import QUICK
from repro.hardware import DEFAULT_COSTS, Machine
from repro.net import Testbed
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def machine(sim):
    return Machine(sim)


@pytest.fixture
def testbed(sim):
    return Testbed(sim)


@pytest.fixture
def costs():
    return DEFAULT_COSTS


@pytest.fixture
def quick():
    return QUICK
