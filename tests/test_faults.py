"""repro.faults: schedules, the DES injector, and the fault scenarios."""

import pytest

from repro.core import FixedAllocation
from repro.core.lvrm import LvrmConfig
from repro.errors import ConfigError
from repro.experiments.common import build_lvrm_gateway
from repro.faults import FaultInjector, FaultSchedule, FaultSpec
from repro.faults.scenario import run_des_scenario
from repro.ipc.sim_queue import Corrupted, SimIpcQueue
from repro.traffic import FrameSink, UdpSender


# ---------------------------------------------------------------------------
# Schedule parsing and validation
# ---------------------------------------------------------------------------

def test_schedule_roundtrip():
    sched = FaultSchedule((
        FaultSpec(t=2.0, kind="kill", vri=1),
        FaultSpec(t=1.0, kind="slow", vri=0, factor=3.0),
        FaultSpec(t=3.0, kind="delay_ctrl", delay=0.01, count=2),
    ), "mixed")
    again = FaultSchedule.from_json(sched.to_json())
    assert again == sched
    # Sorted by time regardless of construction order.
    assert [f.t for f in again] == [1.0, 2.0, 3.0]


def test_schedule_rejects_unknown_kind():
    with pytest.raises(ConfigError, match="unknown fault kind"):
        FaultSpec(t=0.0, kind="meteor", vri=0)
    with pytest.raises(ConfigError, match="unknown fault kind"):
        FaultSchedule.from_json('{"faults": [{"t": 1, "kind": "meteor"}]}')


def test_schedule_rejects_bad_params():
    with pytest.raises(ConfigError):
        FaultSpec(t=-1.0, kind="kill", vri=0)
    with pytest.raises(ConfigError):
        FaultSpec(t=0.0, kind="kill")                 # no target
    with pytest.raises(ConfigError):
        FaultSpec(t=0.0, kind="delay_ctrl", vri=1)    # targets the monitor
    with pytest.raises(ConfigError):
        FaultSpec(t=0.0, kind="drop_slot", vri=0, count=0)
    with pytest.raises(ConfigError, match="does not accept"):
        FaultSchedule.from_json(
            '{"faults": [{"t": 1, "kind": "kill", "vri": 0, "factor": 2}]}')


def test_schedule_runtime_subset():
    sched = FaultSchedule((
        FaultSpec(t=1.0, kind="kill", vri=0),
        FaultSpec(t=2.0, kind="corrupt_slot", vri=0),
        FaultSpec(t=3.0, kind="hang", vri=1),
    ))
    assert [f.kind for f in sched.runtime_subset] == ["kill", "hang"]


# ---------------------------------------------------------------------------
# Queue-level slot faults
# ---------------------------------------------------------------------------

def test_sim_queue_drop_and_corrupt(sim):
    q = SimIpcQueue(sim, 8)
    q.inject_drop(1)
    assert q.try_push("a")          # producer believes it succeeded
    assert q.try_pop() is None      # ...but the record vanished
    assert q.fault_dropped == 1
    q.inject_corrupt(1)
    assert q.try_push("b")
    item = q.try_pop()
    assert isinstance(item, Corrupted) and item.item == "b"
    assert q.fault_corrupted == 1
    with pytest.raises(ValueError):
        q.inject_drop(0)


# ---------------------------------------------------------------------------
# The injector against a live gateway
# ---------------------------------------------------------------------------

def _gateway(sim, testbed, n_vris=3, **cfg_kw):
    # Pin the scalar-priced cost model: these tests assert timing-derived
    # counts (e.g. how far a 2000x-slowed VRI falls behind), so a forced
    # REPRO_KERNEL repricing VR service would shift the thresholds.
    cfg_kw.setdefault("kernel", "scalar")
    cfg = LvrmConfig(record_latency=False, balancer="jsq", flow_based=True,
                     supervise=True, **cfg_kw)
    _machine, lvrm = build_lvrm_gateway(
        sim, testbed, config=cfg,
        allocator_factory=lambda: FixedAllocation(n_vris))
    return lvrm


def test_injector_kill_is_failed_over(sim, testbed):
    lvrm = _gateway(sim, testbed)
    sink = FrameSink(sim, testbed.hosts["r1"], record_latency=False)
    senders = [UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                         10_000, src_port=10_000 + i, phase=i * 1e-6)
               for i in range(6)]
    sched = FaultSchedule((FaultSpec(t=0.5, kind="kill", vri=1),))
    injector = FaultInjector(lvrm, sched).arm()
    sim.run(until=1.5)
    assert injector.injected == 1 and injector.skipped == 0
    assert lvrm.stats.failovers.value == 1
    assert lvrm.stats.restarts.value == 1
    assert len(lvrm.all_vris()) == 3          # replacement landed
    assert sink.received > 0
    monitor = lvrm._vri_monitors[0]
    assert monitor.failures == 1
    del senders


def test_injector_slow_inflates_service(sim, testbed):
    lvrm = _gateway(sim, testbed, n_vris=1)
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"), 50_000)
    sched = FaultSchedule((FaultSpec(t=0.2, kind="slow", vri=0,
                                     factor=2000.0),))
    FaultInjector(lvrm, sched).arm()
    sim.run(until=0.2)
    before = lvrm.all_vris()[0].processed
    sim.run(until=0.4)
    after = lvrm.all_vris()[0].processed
    # 2000x slower service (~160 us/frame) can no longer keep up with
    # 50 kfps: the second window completes far fewer frames.
    assert (after - before) < before / 4
    assert lvrm.all_vris()[0].slow_factor == 2000.0


def test_injector_corrupt_slots_are_discarded(sim, testbed):
    lvrm = _gateway(sim, testbed, n_vris=1)
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"), 20_000)
    sched = FaultSchedule((FaultSpec(t=0.2, kind="corrupt_slot", vri=0,
                                     count=5),))
    FaultInjector(lvrm, sched).arm()
    sim.run(until=0.6)
    vri = lvrm.all_vris()[0]
    assert vri.dropped_corrupt == 5
    assert vri.alive


def test_injector_skips_missing_target(sim, testbed):
    lvrm = _gateway(sim, testbed, n_vris=1)
    sched = FaultSchedule((FaultSpec(t=0.1, kind="kill", vri=7),))
    injector = FaultInjector(lvrm, sched).arm()
    sim.run(until=0.2)
    assert injector.injected == 0 and injector.skipped == 1
    assert len(lvrm.all_vris()) == 1


def test_injector_refuses_double_arm(sim, testbed):
    lvrm = _gateway(sim, testbed, n_vris=1)
    injector = FaultInjector(lvrm, FaultSchedule())
    injector.arm()
    with pytest.raises(RuntimeError):
        injector.arm()


# ---------------------------------------------------------------------------
# The acceptance scenario: kill 1 of 3 mid-run, zero lost flows
# ---------------------------------------------------------------------------

def test_des_scenario_kill_one_of_three_loses_no_flows():
    sched = FaultSchedule((FaultSpec(t=2.0, kind="kill", vri=1),),
                          "kill VRI 1 at t=2s")
    report = run_des_scenario(sched, duration=4.0)
    assert report["faults"]["injected"] == 1
    assert report["supervisor"]["failovers"] == 1
    assert report["supervisor"]["restarts"] == 1
    assert report["flows_total"] == 8
    assert report["flows_ok"], report["lost_flows"]
    # Frames in flight may drop; flows may not.
    assert report["received"] > 0.9 * report["sent"]


def test_des_scenario_kill_breaches_the_drop_slo_and_dumps_postmortem(tmp_path):
    """The kill is *observable*: ~one supervision period of frames
    strands in the corpse's ring, so the no-drops SLO breaches (counter
    plus ``slo.breach`` flight-recorder note) and the failover leaves a
    post-mortem dump — while every flow still survives."""
    from repro.obs.recorder import RECORDER

    sched = FaultSchedule((FaultSpec(t=2.0, kind="kill", vri=1),),
                          "kill VRI 1 at t=2s")
    report = run_des_scenario(sched, duration=4.0,
                              postmortem_dir=str(tmp_path))
    slo = report["slo"]
    assert slo["breaches"]["no-drops"] > 0
    assert "no-drops" in slo["breaching"]
    # Heartbeats recovered after the restart: only the cumulative
    # drop-rate budget stays blown.
    assert slo["breaches"].get("fresh-heartbeats", 0) == 0
    edges = [e for e in RECORDER.events()
             if getattr(e, "name", "") == "slo.breach"]
    assert edges and edges[0].args["rule"] == "no-drops"
    assert edges[0].args["dropped"] > 0
    dumps = list(tmp_path.glob("postmortem-lvrm*-vri*-crash-1.txt"))
    assert len(dumps) == 1
    text = dumps[0].read_text()
    assert "flight recorder dump" in text and "supervisor.failover" in text
    # The breach is telemetry, not packet loss beyond the fault model's:
    # the flow-survival acceptance still holds.
    assert report["flows_ok"], report["lost_flows"]
    assert report["received"] > 0.9 * report["sent"]


def test_des_scenario_without_faults_breaches_nothing():
    report = run_des_scenario(FaultSchedule(), duration=2.0)
    assert report["slo"]["breaching"] == []
    assert all(n == 0 for n in report["slo"]["breaches"].values())
