"""Tests for prefixes, LPM tables (incl. property vs oracle), ARP, map files."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RoutingError
from repro.net.addresses import ip_to_int
from repro.routing import (ArpTable, BruteForceTable, Prefix, RouteTable,
                           dump_map_file, load_map_file, parse_map_lines)


# -- prefix -------------------------------------------------------------------

def test_prefix_parse_and_str():
    p = Prefix.parse("10.1.0.0/16")
    assert str(p) == "10.1.0.0/16"
    assert Prefix.parse("1.2.3.4").length == 32


def test_prefix_canonicalizes_host_bits():
    p = Prefix.parse("10.1.2.3/16")
    assert p.network == ip_to_int("10.1.0.0")


def test_prefix_contains_and_overlaps():
    p = Prefix.parse("10.1.0.0/16")
    assert p.contains(ip_to_int("10.1.255.255"))
    assert not p.contains(ip_to_int("10.2.0.0"))
    assert p.overlaps(Prefix.parse("10.1.2.0/24"))
    assert not p.overlaps(Prefix.parse("10.2.0.0/16"))


@pytest.mark.parametrize("bad", ["10.1.0.0/33", "10.1.0.0/x", "300.0.0.0/8"])
def test_prefix_rejects_bad(bad):
    with pytest.raises(RoutingError):
        Prefix.parse(bad)


# -- route table -------------------------------------------------------------------

def test_lpm_longest_wins():
    t = RouteTable()
    t.add(Prefix.parse("10.0.0.0/8"), "coarse")
    t.add(Prefix.parse("10.1.0.0/16"), "mid")
    t.add(Prefix.parse("10.1.2.0/24"), "fine")
    assert t.lookup(ip_to_int("10.1.2.3")) == "fine"
    assert t.lookup(ip_to_int("10.1.9.9")) == "mid"
    assert t.lookup(ip_to_int("10.9.9.9")) == "coarse"


def test_lpm_miss_raises_and_get_defaults():
    t = RouteTable()
    t.add(Prefix.parse("10.0.0.0/8"), 1)
    with pytest.raises(RoutingError):
        t.lookup(ip_to_int("11.0.0.1"))
    assert t.get(ip_to_int("11.0.0.1"), "dflt") == "dflt"


def test_default_route():
    t = RouteTable()
    t.add(Prefix.parse("0.0.0.0/0"), "default")
    assert t.lookup(0) == "default"
    assert t.lookup(0xFFFFFFFF) == "default"


def test_remove_and_prune():
    t = RouteTable()
    t.add(Prefix.parse("10.1.0.0/16"), 1)
    t.add(Prefix.parse("10.1.2.0/24"), 2)
    t.remove(Prefix.parse("10.1.2.0/24"))
    assert t.lookup(ip_to_int("10.1.2.3")) == 1
    assert len(t) == 1
    with pytest.raises(RoutingError):
        t.remove(Prefix.parse("10.1.2.0/24"))


def test_replace_route():
    t = RouteTable()
    p = Prefix.parse("10.1.0.0/16")
    t.add(p, 1)
    t.add(p, 2)
    assert t.lookup(ip_to_int("10.1.0.1")) == 2
    assert len(t) == 1


_prefixes = st.tuples(st.integers(0, 0xFFFFFFFF), st.integers(0, 32))
_ips = st.integers(0, 0xFFFFFFFF)


@given(st.lists(_prefixes, min_size=1, max_size=30), st.lists(_ips, max_size=30))
@settings(max_examples=120, deadline=None)
def test_trie_matches_brute_force_oracle(prefix_specs, probes):
    trie, oracle = RouteTable(), BruteForceTable()
    for i, (net, plen) in enumerate(prefix_specs):
        p = Prefix(net, plen)
        trie.add(p, i)
        oracle.add(p, i)
    for ip in probes:
        assert trie.get(ip, "miss") == oracle.get(ip, "miss")


@given(st.lists(_prefixes, min_size=2, max_size=20), st.data())
@settings(max_examples=80, deadline=None)
def test_trie_matches_oracle_after_removals(prefix_specs, data):
    trie, oracle = RouteTable(), BruteForceTable()
    prefixes = []
    for i, (net, plen) in enumerate(prefix_specs):
        p = Prefix(net, plen)
        trie.add(p, i)
        oracle.add(p, i)
        prefixes.append(p)
    unique = list(dict.fromkeys(prefixes))
    to_remove = data.draw(st.lists(st.sampled_from(unique), max_size=5,
                                   unique=True))
    for p in to_remove:
        trie.remove(p)
        oracle.remove(p)
    for ip in data.draw(st.lists(_ips, max_size=20)):
        assert trie.get(ip, "miss") == oracle.get(ip, "miss")


# -- ARP ----------------------------------------------------------------------------

def test_arp_static_never_expires():
    arp = ArpTable(timeout=1.0)
    arp.add_static(1, 0xAA)
    assert arp.resolve(1, now=1e9) == 0xAA


def test_arp_dynamic_expires():
    arp = ArpTable(timeout=1.0)
    arp.learn(1, 0xBB, now=0.0)
    assert arp.resolve(1, now=0.5) == 0xBB
    assert arp.resolve(1, now=2.0) is None
    assert arp.misses == 1


def test_arp_static_wins_over_learn():
    arp = ArpTable()
    arp.add_static(1, 0xAA)
    arp.learn(1, 0xBB, now=0.0)
    assert arp.resolve(1, now=0.0) == 0xAA


def test_arp_expire_bulk():
    arp = ArpTable(timeout=1.0)
    for ip in range(5):
        arp.learn(ip, ip, now=0.0)
    arp.add_static(99, 99)
    assert arp.expire(now=10.0) == 5
    assert len(arp) == 1


# -- map files -------------------------------------------------------------------------

MAP_TEXT = """\
# campus VR routes
route 10.2.1.0/24 iface 1
route 10.2.0.0/16 iface 1   # receiver side
route 10.1.0.0/16 iface 0
arp 10.2.1.2 02:00:00:00:02:01
"""


def test_map_file_parses_routes_and_arp():
    routes, arp = parse_map_lines(MAP_TEXT.splitlines())
    assert len(routes) == 3
    assert routes.lookup(ip_to_int("10.2.1.9")) == 1
    assert arp.resolve(ip_to_int("10.2.1.2"), now=0.0) == 0x020000000201


def test_map_file_round_trip():
    routes, _ = parse_map_lines(MAP_TEXT.splitlines())
    text = dump_map_file(routes, [(ip_to_int("10.2.1.2"), 0x02)])
    routes2, arp2 = parse_map_lines(text.splitlines())
    assert sorted(routes2) == sorted(routes)
    assert arp2.resolve(ip_to_int("10.2.1.2"), 0.0) == 0x02


def test_map_file_from_stream():
    routes, _ = load_map_file(io.StringIO(MAP_TEXT))
    assert len(routes) == 3


@pytest.mark.parametrize("line", [
    "route 10.1.0.0/16", "route 10.1.0.0/16 port 1",
    "route 10.1.0.0/16 iface x", "arp 10.1.1.1", "frobnicate x y",
    "arp banana 02:00:00:00:00:01",
])
def test_map_file_rejects_malformed(line):
    with pytest.raises(RoutingError):
        parse_map_lines([line])
