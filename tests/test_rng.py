"""Tests for the seeded RNG registry."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry


def test_same_name_same_stream_object():
    reg = RngRegistry(1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_are_deterministic_across_registries():
    a = RngRegistry(7).stream("x").random(5)
    b = RngRegistry(7).stream("x").random(5)
    assert np.array_equal(a, b)


def test_different_names_differ():
    reg = RngRegistry(7)
    a = reg.stream("x").random(5)
    b = reg.stream("y").random(5)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(1).stream("x").random(5)
    b = RngRegistry(2).stream("x").random(5)
    assert not np.array_equal(a, b)


def test_adding_streams_does_not_perturb_existing():
    reg1 = RngRegistry(3)
    _ = reg1.stream("later")  # created first here
    x1 = reg1.stream("x").random(3)
    reg2 = RngRegistry(3)
    x2 = reg2.stream("x").random(3)
    assert np.array_equal(x1, x2)


def test_fork_is_independent():
    reg = RngRegistry(5)
    forked = reg.fork(1)
    assert not np.array_equal(reg.stream("x").random(4),
                              forked.stream("x").random(4))


def test_contains():
    reg = RngRegistry()
    assert "x" not in reg
    reg.stream("x")
    assert "x" in reg


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngRegistry(-1)
