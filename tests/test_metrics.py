"""Tests for fairness indexes, summaries, and the achievable search."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (achievable_throughput, jain_index,
                           max_min_fairness, summarize)

_rates = st.lists(st.floats(0.0, 1e9), min_size=1, max_size=40)


# -- Jain ---------------------------------------------------------------------

def test_jain_equal_allocation_is_one():
    assert jain_index([5, 5, 5, 5]) == pytest.approx(1.0)


def test_jain_single_hog_is_one_over_n():
    assert jain_index([10, 0, 0, 0]) == pytest.approx(0.25)


@given(_rates)
@settings(max_examples=150, deadline=None)
def test_jain_bounds_property(rates):
    j = jain_index(rates)
    assert 1.0 / len(rates) - 1e-9 <= j <= 1.0 + 1e-9


@given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=40),
       st.floats(0.1, 1000.0))
@settings(max_examples=80, deadline=None)
def test_jain_scale_invariant(rates, k):
    assert jain_index(rates) == pytest.approx(
        jain_index([r * k for r in rates]), rel=1e-6)


def test_jain_empty_rejected():
    with pytest.raises(ValueError):
        jain_index([])
    with pytest.raises(ValueError):
        jain_index([-1.0])


# -- max-min ---------------------------------------------------------------------

def test_max_min_equal_is_one():
    assert max_min_fairness([3, 3, 3]) == pytest.approx(1.0)


def test_max_min_starved_flow_is_zero():
    assert max_min_fairness([1, 1, 0]) == 0.0


@given(_rates)
@settings(max_examples=150, deadline=None)
def test_max_min_bounds_property(rates):
    m = max_min_fairness(rates)
    assert 0.0 <= m <= 1.0 + 1e-9


@given(_rates)
@settings(max_examples=80, deadline=None)
def test_max_min_never_exceeds_jain_style_perfection(rates):
    # max-min == 1 iff all values equal (when non-degenerate).
    m = max_min_fairness(rates)
    if m == pytest.approx(1.0) and sum(rates) > 0:
        assert max(rates) == pytest.approx(min(rates), rel=1e-6)


# -- summaries --------------------------------------------------------------------

def test_summarize():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.n == 4
    assert s.mean == pytest.approx(2.5)
    assert s.minimum == 1.0 and s.maximum == 4.0
    assert s.p50 == pytest.approx(2.5)
    assert "mean" in str(s)


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_summarize_single_sample_has_zero_std():
    assert summarize([5.0]).std == 0.0


# -- achievable-throughput search -----------------------------------------------------

def _capacity_trial(capacity):
    """A synthetic DUT: delivers min(offered, capacity)."""
    def trial(offered):
        return offered, min(offered, capacity)
    return trial


def test_search_finds_capacity():
    result = achievable_throughput(_capacity_trial(300e3), lo=10e3,
                                   hi=1e6, rel_tol=0.02, max_probes=20)
    # The criterion allows 2% loss, so the answer can sit slightly
    # above the hard capacity knee.
    assert result.achievable_fps == pytest.approx(300e3, rel=0.05)


def test_search_hi_achievable_short_circuits():
    result = achievable_throughput(_capacity_trial(1e9), lo=1e3, hi=500e3)
    assert result.achievable_fps == 500e3
    assert len(result.probes) == 2


def test_search_lo_unachievable_reports_delivery():
    result = achievable_throughput(_capacity_trial(5e3), lo=100e3, hi=1e6)
    assert result.achievable_fps == pytest.approx(5e3)


def test_search_validates_bounds():
    with pytest.raises(ValueError):
        achievable_throughput(_capacity_trial(1), lo=10, hi=5)
    with pytest.raises(ValueError):
        achievable_throughput(_capacity_trial(1), lo=1, hi=2, rel_tol=2.0)


def test_search_probe_records():
    result = achievable_throughput(_capacity_trial(300e3), lo=10e3, hi=1e6)
    assert all(len(p) == 3 for p in result.probes)
    offered = [p[0] for p in result.probes]
    assert offered[0] == 10e3 and offered[1] == 1e6
