"""Hosting heterogeneity: different VR implementations side by side,
different allocators per VR, and the exp2d integration shape."""

import pytest

from repro.core import (DynamicFixedThresholds, FixedAllocation, Lvrm,
                        LvrmConfig, VrSpec, VrType, make_socket_adapter)
from repro.experiments.exp2_core_alloc import exp2d
from repro.hardware import DEFAULT_COSTS, Machine
from repro.net import Testbed
from repro.routing.prefix import Prefix
from repro.sim import Simulator
from repro.traffic import FrameSink, UdpSender

from tests.test_experiments import TESTP


def test_cpp_and_click_vrs_coexist(sim, testbed):
    """One LVRM hosting a C++ VR and a Click VR simultaneously — the
    thesis' "different implementations of virtual routers" claim."""
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(record_latency=False))
    lvrm.add_vr(VrSpec(name="fast", subnets=(Prefix.parse("10.1.1.0/24"),),
                       vr_type=VrType.CPP), FixedAllocation(1))
    lvrm.add_vr(VrSpec(name="modular",
                       subnets=(Prefix.parse("10.1.2.0/24"),),
                       vr_type=VrType.CLICK), FixedAllocation(1))
    lvrm.start()
    sinks = [FrameSink(sim, testbed.hosts[h], record_latency=False)
             for h in ("r1", "r2")]
    s1 = UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                   rate_fps=40_000, t_start=0.005, t_stop=0.055)
    s2 = UdpSender(sim, testbed.hosts["s2"], testbed.host_ip("r2"),
                   rate_fps=40_000, t_start=0.005, t_stop=0.055)
    sim.run(until=0.08)
    # Both VRs forward their own subnet's traffic fully (40 Kfps is
    # under even the Click pipeline's capacity).
    assert sinks[0].received > 0.98 * s1.sent
    assert sinks[1].received > 0.98 * s2.sent
    assert lvrm.stats.forwarded_by_vr["fast"] > 0
    assert lvrm.stats.forwarded_by_vr["modular"] > 0


def test_per_vr_allocators_differ(sim, testbed):
    """One VR fixed, one dynamic, on the same monitor."""
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(record_latency=False,
                                  allocation_period=0.02))
    lvrm.add_vr(VrSpec(name="pinned", subnets=(Prefix.parse("10.1.1.0/24"),)),
                FixedAllocation(2))
    lvrm.add_vr(VrSpec(name="elastic",
                       subnets=(Prefix.parse("10.1.2.0/24"),),
                       dummy_load=1 / 15_000.0),
                DynamicFixedThresholds(15_000.0))
    lvrm.start()
    UdpSender(sim, testbed.hosts["s2"], testbed.host_ip("r2"),
              rate_fps=45_000, t_start=0.005)
    sim.run(until=0.15)
    assert lvrm.vr_monitor.cores_of("pinned") == 2
    assert lvrm.vr_monitor.cores_of("elastic") >= 3


def test_exp2d_staircases_are_staggered_and_independent():
    r = exp2d(TESTP)
    for vr in ("vr1", "vr2"):
        rows = r.by(vr=vr)
        cores = [row[3] for row in rows]
        rates = [row[2] for row in rows]
        assert max(cores) >= 3
        # Cores track the VR's own rate: the peak-core sample coincides
        # with (one of) the peak-rate samples, within one step of lag.
        peak_rate_t = max(rows, key=lambda row: (row[2], row[0]))[0]
        peak_core_t = max(rows, key=lambda row: (row[3], -row[0]))[0]
        assert abs(peak_core_t - peak_rate_t) <= 2.1 * TESTP.ramp_step
    # The two VRs peak at different times (the stagger).
    peak1 = max(r.by(vr="vr1"), key=lambda row: row[3])[0]
    peak2 = max(r.by(vr="vr2"), key=lambda row: row[3])[0]
    assert peak1 != peak2
