"""Tests for dynamic route synchronization among VRIs."""

import pytest

from repro.core import (FixedAllocation, Lvrm, LvrmConfig, VrSpec, VrType,
                        make_socket_adapter)
from repro.errors import RoutingError
from repro.hardware import DEFAULT_COSTS, Machine
from repro.net.addresses import ip_to_int
from repro.net.frame import Frame
from repro.routing.prefix import Prefix
from repro.routing.sync import (RouteSyncAgent, RouteUpdate, decode_updates,
                                encode_updates, router_table_of)
from repro.routing.table import RouteTable
from repro.core.router_types import ClickVrModel, CppVrModel
from repro.routing.mapfile import parse_map_lines
from repro.sim import Simulator
from repro.traffic.trace import synthetic_trace


def _update(prefix="10.3.0.0/16", iface=1, metric=1, withdraw=False):
    return RouteUpdate(Prefix.parse(prefix), iface, metric, withdraw)


# -- codec --------------------------------------------------------------------

def test_codec_round_trip():
    updates = [_update(), _update("10.4.0.0/16", 0, 5),
               _update("10.5.1.0/24", withdraw=True)]
    assert decode_updates(encode_updates(updates)) == updates


def test_codec_rejects_truncated():
    payload = encode_updates([_update()])
    with pytest.raises(RoutingError):
        decode_updates(payload[:-2])
    with pytest.raises(RoutingError):
        decode_updates(b"")


def test_update_validation():
    with pytest.raises(RoutingError):
        RouteUpdate(Prefix.parse("10.0.0.0/8"), iface=70000)
    with pytest.raises(RoutingError):
        RouteUpdate(Prefix.parse("10.0.0.0/8"), metric=300)


# -- table access -----------------------------------------------------------------

def test_router_table_of_cpp_and_click():
    routes, _ = parse_map_lines(["route 10.2.0.0/16 iface 1"])
    assert router_table_of(CppVrModel(routes)) is routes
    click = ClickVrModel()
    table = router_table_of(click)
    assert table.get(ip_to_int("10.2.1.1")) == 1


def test_router_table_of_rejects_unknown():
    with pytest.raises(RoutingError):
        router_table_of(object())  # type: ignore[arg-type]


# -- agent application logic (no sim needed) -------------------------------------------


class _FakeVri:
    def __init__(self, router):
        self.router = router
        self.control_handler = None
        self.vri_id = 1


def _agent():
    routes, _ = parse_map_lines(["route 10.2.0.0/16 iface 1"])
    vri = _FakeVri(CppVrModel(routes))
    return RouteSyncAgent(vri), routes


def test_agent_applies_announcement():
    agent, routes = _agent()
    agent.apply([_update("10.9.0.0/16", iface=0)])
    assert routes.lookup(ip_to_int("10.9.1.1")) == 0
    assert agent.applied == 1


def test_agent_metric_preference():
    agent, routes = _agent()
    agent.apply([_update("10.9.0.0/16", iface=0, metric=2)])
    # A worse metric must not replace the installed route.
    agent.apply([_update("10.9.0.0/16", iface=1, metric=5)])
    assert routes.lookup(ip_to_int("10.9.1.1")) == 0
    assert agent.ignored == 1
    # An equal-or-better metric does replace it.
    agent.apply([_update("10.9.0.0/16", iface=1, metric=1)])
    assert routes.lookup(ip_to_int("10.9.1.1")) == 1


def test_agent_withdraw():
    agent, routes = _agent()
    agent.apply([_update("10.9.0.0/16")])
    agent.apply([_update("10.9.0.0/16", withdraw=True)])
    assert routes.get(ip_to_int("10.9.1.1")) is None
    # Withdrawing the unknown is ignored, not fatal.
    agent.apply([_update("10.77.0.0/16", withdraw=True)])
    assert agent.ignored == 1


def test_agent_seeds_metrics_from_static_routes():
    agent, routes = _agent()
    # Static map-file routes behave as metric-0: nothing can displace them.
    agent.apply([_update("10.2.0.0/16", iface=0, metric=1)])
    assert routes.lookup(ip_to_int("10.2.1.1")) == 1
    assert agent.ignored == 1


# -- end-to-end through LVRM's control path ----------------------------------------------

def test_route_sync_propagates_between_vris(sim):
    """VRI 1 learns a route and announces; VRI 2 starts forwarding
    frames it previously dropped — the full §3.7 story."""
    machine = Machine(sim)
    # Frames towards a subnet nobody has a route for initially.
    trace = list(synthetic_trace(60, 84, src_ip="10.1.1.2",
                                 dst_ip="172.16.0.9"))
    # Paced replay: give the announcement a chance to land mid-trace.
    adapter = make_socket_adapter("memory", sim, DEFAULT_COSTS,
                                  trace=iter(trace),
                                  trace_rate_fps=10_000.0)
    lvrm = Lvrm(sim, machine, adapter, config=LvrmConfig())
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(2))
    lvrm.start()

    def orchestrate():
        while len(lvrm.all_vris()) < 2:
            yield sim.timeout(1e-4)
        v1, v2 = lvrm.all_vris()
        agents = [RouteSyncAgent(v1), RouteSyncAgent(v2)]
        yield from agents[0].announce(
            [RouteUpdate(Prefix.parse("172.16.0.0/12"), iface=1)],
            peer_vri_ids=[v2.vri_id])
        return agents

    proc = sim.process(orchestrate())
    sim.run(until=5.0)
    agents = proc.value
    # Both VRIs now carry the dynamic route...
    for agent in agents:
        assert agent.table.get(ip_to_int("172.16.0.9")) == 1
    # ...and the bulk of the trace was forwarded (frames replayed before
    # the announcement landed died with no route; nothing else is lost).
    assert lvrm.stats.forwarded >= 30
    no_route = sum(v.dropped_no_route for v in lvrm.all_vris())
    assert lvrm.stats.forwarded + no_route == 60
