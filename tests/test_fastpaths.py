"""Fast-path correctness: LPM caching, flow-table refresh, frame keys,
codec templates, and the pooled DES sleep path.

Every fast path here shadows a slow reference implementation; these
tests pin the pair together, with special attention to invalidation
(the only way a cache can lie).
"""

import random
from types import SimpleNamespace

import pytest

from repro.core.balancing import FlowBasedBalancer, RoundRobin
from repro.core.flows import FlowTable
from repro.core.router_types import CppVrModel
from repro.errors import RoutingError
from repro.net.addresses import ip_to_int
from repro.net.frame import Frame
from repro.net.packet import UdpFrameTemplate, build_udp_frame
from repro.routing.mapfile import parse_map_lines
from repro.routing.prefix import Prefix
from repro.routing.sync import RouteSyncAgent, RouteUpdate
from repro.routing.table import BruteForceTable, RouteTable
from repro.sim import Simulator
from repro.sim.engine import Timeout


# -- LPM result cache --------------------------------------------------------

def _random_tables(rng, n_routes=60):
    trie, oracle = RouteTable(), BruteForceTable()
    for _ in range(n_routes):
        prefix = Prefix(rng.getrandbits(32), rng.randrange(0, 33))
        iface = rng.randrange(8)
        trie.add(prefix, iface)
        oracle.add(prefix, iface)
    return trie, oracle


def test_cached_lookup_matches_oracle():
    rng = random.Random(2011)
    trie, oracle = _random_tables(rng)
    for _ in range(500):
        ip = rng.getrandbits(32)
        assert trie.get_cached(ip, -1) == oracle.get(ip, -1)
        # Second probe comes from the cache; must agree with itself.
        assert trie.get_cached(ip, -1) == trie.get(ip, -1)


def test_cached_lookup_raises_like_uncached():
    table = RouteTable()
    table.add(Prefix.parse("10.0.0.0/8"), 1)
    ip = ip_to_int("192.168.1.1")
    with pytest.raises(RoutingError):
        table.lookup_cached(ip)
    # The miss itself is cached; still raises, and still heals on add.
    with pytest.raises(RoutingError):
        table.lookup_cached(ip)
    table.add(Prefix.parse("192.168.0.0/16"), 7)
    assert table.lookup_cached(ip) == 7


def test_add_and_remove_invalidate_cache():
    rng = random.Random(7)
    trie, oracle = _random_tables(rng, n_routes=30)
    probes = [rng.getrandbits(32) for _ in range(200)]
    for ip in probes:  # warm the cache
        trie.get_cached(ip, -1)
    for _ in range(40):  # interleave mutations with cached reads
        if rng.random() < 0.5 or len(oracle) == 0:
            prefix = Prefix(rng.getrandbits(32), rng.randrange(0, 25))
            iface = rng.randrange(8)
            trie.add(prefix, iface)
            oracle.add(prefix, iface)
        else:
            prefix = rng.choice([p for p, _v in oracle])
            trie.remove(prefix)
            oracle.remove(prefix)
        for ip in rng.sample(probes, 20):
            assert trie.get_cached(ip, -1) == oracle.get(ip, -1)


def test_route_sync_update_invalidates_cached_lookup():
    """The satellite case: after a sync.py route update, cached lookups
    return the NEW next hop (checked against the brute-force oracle)."""
    routes, _arp = parse_map_lines(["route 10.1.0.0/16 iface 1",
                                    "route 10.2.0.0/16 iface 2"])
    oracle = BruteForceTable()
    for prefix, iface in routes:
        oracle.add(prefix, iface)
    router = CppVrModel(routes)
    vri = SimpleNamespace(router=router, control_handler=None, vri_id=1)
    agent = RouteSyncAgent(vri)

    ip = ip_to_int("10.1.5.5")
    assert routes.get_cached(ip) == oracle.get(ip) == 1  # cache is warm

    # A better route for a more specific prefix arrives via route sync.
    update = RouteUpdate(Prefix.parse("10.1.5.0/24"), iface=3, metric=0)
    agent.apply([update])
    oracle.add(update.prefix, update.iface)
    assert routes.get_cached(ip) == oracle.get(ip) == 3

    # And a withdrawal falls back to the covering /16.
    agent.apply([RouteUpdate(Prefix.parse("10.1.5.0/24"), withdraw=True)])
    oracle.remove(update.prefix)
    assert routes.get_cached(ip) == oracle.get(ip) == 1
    # The router model's own fast path agrees.
    frame = Frame(84, ip_to_int("10.9.9.9"), ip)
    assert router.process(frame) and frame.out_iface == 1


def test_cache_reset_when_full(monkeypatch):
    import repro.routing.table as table_mod
    monkeypatch.setattr(table_mod, "_CACHE_MAX", 8)
    table = RouteTable()
    table.add(Prefix.parse("0.0.0.0/0"), 9)
    for ip in range(50):
        assert table.get_cached(ip) == 9
    assert len(table._cache) <= 9  # bounded: reset-at-cap, then refill


# -- flow table / balancer fast paths ---------------------------------------

def test_flow_lookup_refreshes_in_place():
    table = FlowTable(idle_timeout=10.0)
    table.insert("flow", 3, now=0.0)
    # Touch at t=9 — refresh must push expiry out to t=19.
    assert table.lookup("flow", now=9.0) == 3
    assert table.lookup("flow", now=18.0) == 3
    assert table.lookup("flow", now=40.0) is None  # finally idle
    assert table.expired == 1 and table.hits == 2 and table.misses == 1


def test_flow_balancer_map_invalidation():
    balancer = FlowBasedBalancer(RoundRobin())
    vris = [SimpleNamespace(vri_id=i) for i in (1, 2, 3)]
    frame = Frame(84, ip_to_int("10.0.0.1"), ip_to_int("10.2.0.1"),
                  src_port=5, dst_port=6)
    first = balancer.pick(frame, vris, now=0.0)
    assert balancer.pick(frame, vris, now=1.0) is first  # pinned, via map
    # Destroy the pinned VRI: the monitor always calls forget_vri.
    survivors = [v for v in vris if v is not first]
    balancer.forget_vri(first.vri_id)
    repinned = balancer.pick(frame, survivors, now=2.0)
    assert repinned in survivors
    assert balancer.pick(frame, survivors, now=3.0) is repinned


def test_flow_balancer_map_rebuilds_on_spawn():
    balancer = FlowBasedBalancer(RoundRobin())
    vris = [SimpleNamespace(vri_id=1)]
    frame = Frame(84, 1, 2, src_port=3, dst_port=4)
    assert balancer.pick(frame, vris, now=0.0).vri_id == 1
    vris.append(SimpleNamespace(vri_id=2))  # spawn
    assert balancer.pick(frame, vris, now=1.0).vri_id == 1  # still pinned


def test_frame_five_tuple_cached_and_correct():
    frame = Frame(84, 11, 22, proto=17, src_port=33, dst_port=44)
    key = frame.five_tuple
    assert key == (11, 22, 17, 33, 44)
    assert frame.five_tuple is key  # cached, not rebuilt


def test_frame_five_tuple_invalidated_on_header_mutation():
    """Regression: mutating any of the five key fields in place must
    drop the cached tuple (a stale key silently mis-pins flows under
    the borrowed-view data plane, where in-place mutation is routine)."""
    frame = Frame(84, 11, 22, proto=17, src_port=33, dst_port=44)
    assert frame.five_tuple == (11, 22, 17, 33, 44)
    frame.src_ip = 99
    assert frame.five_tuple == (99, 22, 17, 33, 44)
    frame.dst_ip = 88
    assert frame.five_tuple == (99, 88, 17, 33, 44)
    frame.proto = 6
    assert frame.five_tuple == (99, 88, 6, 33, 44)
    frame.src_port = 7
    assert frame.five_tuple == (99, 88, 6, 7, 44)
    frame.dst_port = 8
    assert frame.five_tuple == (99, 88, 6, 7, 8)


# -- FrameView single-pass header parse --------------------------------------

def _wire_frame(**kw):
    args = dict(src_mac=0x020000000001, dst_mac=0x020000000002,
                src_ip=ip_to_int("10.1.1.2"), dst_ip=ip_to_int("10.2.1.2"),
                src_port=10000, dst_port=20000, payload=b"p" * 64)
    args.update(kw)
    return build_udp_frame(**args)


def test_frameview_fast_parse_matches_eager_codecs():
    """The one-pass field extractor must agree with the eager
    parse_ethernet/parse_ipv4 pair on every routed field, over a
    borrowed memoryview (the arena hand-off shape)."""
    from repro.net.packet import parse_ethernet, parse_ipv4

    rng = random.Random(99)
    for _ in range(25):
        wire = _wire_frame(src_ip=rng.getrandbits(32),
                           dst_ip=rng.getrandbits(32),
                           src_port=rng.getrandbits(16),
                           dst_port=rng.getrandbits(16),
                           ttl=rng.randrange(1, 255))
        view = Frame.view(memoryview(bytearray(wire)))
        _eth, ip_payload = parse_ethernet(wire)
        ip_hdr, _rest = parse_ipv4(ip_payload)
        assert view.src_ip == ip_hdr.src_ip
        assert view.dst_ip == ip_hdr.dst_ip
        assert view.proto == ip_hdr.proto
        assert view.ttl == ip_hdr.ttl
        assert view.five_tuple[3:] == (view.src_port, view.dst_port)


def test_frameview_fast_parse_rejects_malformed():
    """Same ValueError conditions as the eager codecs: short frames,
    wrong version, bad header length, corrupted checksum."""
    wire = bytearray(_wire_frame())
    for bad in (b"", wire[:10], wire[:20]):
        with pytest.raises(ValueError):
            Frame.view(bytes(bad)).src_ip
    not_v4 = bytearray(wire)
    not_v4[14] = (6 << 4) | 5          # version 6
    with pytest.raises(ValueError):
        Frame.view(bytes(not_v4)).src_ip
    bad_ihl = bytearray(wire)
    bad_ihl[14] = (4 << 4) | 2         # ihl 8 bytes < 20
    with pytest.raises(ValueError):
        Frame.view(bytes(bad_ihl)).src_ip
    corrupt = bytearray(wire)
    corrupt[24] ^= 0xFF                # flip a checksum-covered byte
    with pytest.raises(ValueError):
        Frame.view(bytes(corrupt)).src_ip


# -- codec template ----------------------------------------------------------

def test_udp_template_matches_builder():
    rng = random.Random(4242)
    for _ in range(50):
        plen = rng.choice([0, 1, 17, 64, 512])
        payload = bytes(rng.randrange(256) for _ in range(plen))
        kw = dict(src_mac=rng.getrandbits(48), dst_mac=rng.getrandbits(48),
                  src_ip=rng.getrandbits(32), dst_ip=rng.getrandbits(32),
                  src_port=rng.getrandbits(16), dst_port=rng.getrandbits(16),
                  ttl=rng.randrange(1, 255))
        template = UdpFrameTemplate(payload=payload, **kw)
        for _ in range(4):
            ident = rng.getrandbits(16)
            new_payload = (bytes(rng.randrange(256) for _ in range(plen))
                           if rng.random() < 0.5 else None)
            want = build_udp_frame(
                payload=payload if new_payload is None else new_payload,
                ident=ident, **kw)
            assert template.render(ident, new_payload) == want


def test_udp_template_rejects_length_change():
    template = UdpFrameTemplate(1, 2, 3, 4, 5, 6, payload=b"eight..!")
    with pytest.raises(ValueError):
        template.render(1, b"nine.....")


# -- pooled sleep ------------------------------------------------------------

def test_sleep_matches_timeout_schedule():
    """sleep() and timeout() interleave into one deterministic order."""
    log = []

    def napper(sim, tag, delay):
        for i in range(3):
            yield sim.sleep(delay)
            log.append((round(sim.now, 9), tag, i))

    def classic(sim, tag, delay):
        for i in range(3):
            yield sim.timeout(delay)
            log.append((round(sim.now, 9), tag, i))

    sim = Simulator()
    sim.process(napper(sim, "a", 0.5))
    sim.process(classic(sim, "b", 0.5))
    sim.process(napper(sim, "c", 0.2))
    sim.run()
    # Same-time events fire in scheduling order, which is creation order.
    assert log == sorted(log, key=lambda e: e[0])
    assert [e[1] for e in log if e[0] == 0.5] == ["a", "b"]


def test_sleep_recycles_events():
    sim = Simulator()

    def napper(sim):
        for _ in range(100):
            yield sim.sleep(0.01)

    sim.process(napper(sim))
    sim.run()
    # The pool keeps the allocation count flat: far fewer than one event
    # per sleep survives.
    assert 1 <= len(sim._timeout_pool) <= 4


def test_sleep_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.sleep(-1.0)


def test_sleep_value_delivery():
    sim = Simulator()
    seen = []

    def napper(sim):
        seen.append((yield sim.sleep(0.1, value="wake")))

    sim.process(napper(sim))
    sim.run()
    assert seen == ["wake"]
    assert sim.now == pytest.approx(0.1)


def test_timeout_still_usable_as_stored_event():
    """timeout() events are NOT pooled and stay valid after firing."""
    sim = Simulator()
    ev = sim.timeout(1.0, value=5)
    assert isinstance(ev, Timeout)
    sim.run()
    assert ev.processed and ev.value == 5
