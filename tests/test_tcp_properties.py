"""Property-based tests for the TCP model's receiver and sender logic,
plus the SimIpcQueue FIFO model property."""

from collections import deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ipc import SimIpcQueue
from repro.net import Testbed
from repro.sim import Simulator
from repro.traffic.tcp import TcpConnection, TcpParams, _Receiver


class _FakeConn:
    """Just enough of a TcpConnection for the receiver's bookkeeping."""

    class _Host:
        def __init__(self, ip):
            self.ip = ip
            self.sent = []

        def send(self, frame):
            self.sent.append(frame)

    def __init__(self, params=TcpParams()):
        self.params = params
        self.conn_id = 1
        self.src_host = self._Host(1)
        self.dst_host = self._Host(2)
        self.src_port = 10
        self.dst_port = 20
        self.sim = Simulator()


@given(st.permutations(list(range(12))))
@settings(max_examples=60, deadline=None)
def test_receiver_delivers_in_order_for_any_arrival_order(order):
    """Property: whatever order segments 0..n-1 arrive in, the receiver
    ends with rcv_nxt == n and exactly n delivered segments."""
    conn = _FakeConn()
    receiver = _Receiver(conn)
    for i, seq in enumerate(order):
        receiver.on_data(seq, now=i * 1e-4)
    assert receiver.rcv_nxt == 12
    assert receiver.delivered_segments == 12
    assert not receiver.ooo
    # One cumulative ACK per arrival.
    assert receiver.acks_sent == 12


@given(st.lists(st.integers(0, 11), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_receiver_idempotent_under_duplicates(seqs):
    """Duplicated/retransmitted segments never double-deliver."""
    conn = _FakeConn()
    receiver = _Receiver(conn)
    for i, seq in enumerate(seqs):
        receiver.on_data(seq, now=i * 1e-4)
    expected = 0
    seen = set(seqs)
    while expected in seen:
        expected += 1
    assert receiver.rcv_nxt == expected
    assert receiver.delivered_segments == expected


def test_receiver_window_never_negative_and_bounded():
    params = TcpParams(rwnd_segments=8, app_read_rate=1.0)  # glacial app
    conn = _FakeConn(params)
    receiver = _Receiver(conn)
    for seq in range(30):
        receiver.on_data(seq, now=0.0)
        w = receiver.advertised_window(0.0)
        assert 0 <= w <= params.rwnd_segments


@given(st.lists(st.tuples(st.booleans(), st.integers(0, 99)),
                max_size=80))
@settings(max_examples=80, deadline=None)
def test_sim_queue_matches_deque_model(ops):
    sim = Simulator()
    q = SimIpcQueue(sim, capacity=8)
    model = deque()
    for is_push, item in ops:
        if is_push:
            ok = q.try_push(item)
            assert ok == (len(model) < 8)
            if ok:
                model.append(item)
        else:
            got = q.try_pop()
            expected = model.popleft() if model else None
            assert got == expected
        assert q.data_count == len(model)


def test_tcp_sender_never_exceeds_window(sim, testbed):
    """Invariant sampled during a live run: in-flight segments stay at
    or below min(cwnd, peer window) + the dup-threshold slack that fast
    retransmit temporarily introduces."""
    from repro.baselines import KernelForwarder
    from repro.hardware import DEFAULT_COSTS, Machine

    machine = Machine(sim)
    KernelForwarder(sim, machine, testbed, DEFAULT_COSTS,
                    record_latency=False)
    conn = TcpConnection(sim, testbed.hosts["s1"], testbed.hosts["r1"],
                         TcpParams(rwnd_segments=32))
    violations = []

    def auditor():
        while sim.now < 0.2:
            s = conn.sender
            flight = s.next_seq - s.una
            limit = min(s.cwnd, s.peer_window) + s.conn.params.dupack_threshold + 2
            if flight > limit:
                violations.append((sim.now, flight, limit))
            yield sim.timeout(1e-3)

    sim.process(auditor())
    sim.run(until=0.2)
    assert not violations
    assert conn.goodput_bytes > 0
