"""Tests for the kernel-forwarding and hypervisor baselines."""

import pytest

from repro.baselines import (HypervisorForwarder, KernelForwarder, qemu_kvm,
                             vmware_server)
from repro.hardware import DEFAULT_COSTS, Machine
from repro.net import Testbed
from repro.sim import Simulator
from repro.traffic import EchoResponder, FrameSink, Pinger, UdpSender


def _run_forwarder(forwarder_factory, rate=100_000, duration=0.03):
    sim = Simulator()
    testbed = Testbed(sim)
    machine = Machine(sim)
    fwd = forwarder_factory(sim, machine, testbed)
    sink = FrameSink(sim, testbed.hosts["r1"], record_latency=True)
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=rate, t_start=0.001, t_stop=0.001 + duration)
    sim.run(until=0.001 + duration + 0.02)
    return fwd, sink, rate * duration


def test_kernel_forwarder_forwards_bidirectionally():
    sim = Simulator()
    testbed = Testbed(sim)
    machine = Machine(sim)
    KernelForwarder(sim, machine, testbed, DEFAULT_COSTS)
    EchoResponder(sim, testbed.hosts["r1"])
    pinger = Pinger(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                    count=10, t_start=0.001)
    sim.run(until=0.5)
    assert pinger.lost == 0
    assert len(pinger.rtts) == 10


def test_kernel_forwarder_keeps_up_at_moderate_load():
    fwd, sink, sent = _run_forwarder(
        lambda s, m, t: KernelForwarder(s, m, t, DEFAULT_COSTS))
    assert sink.received >= 0.99 * sent
    assert fwd.forwarded >= sink.received


def test_kernel_forwarder_charges_softirq_time():
    sim = Simulator()
    testbed = Testbed(sim)
    machine = Machine(sim)
    KernelForwarder(sim, machine, testbed, DEFAULT_COSTS)
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=50_000, t_start=0.0, t_stop=0.02)
    sim.run(until=0.05)
    core = machine.cores[0]
    assert core.busy["si"] > 0
    assert core.busy["us"] == 0


def test_vmware_slower_than_native_and_faster_than_kvm():
    _, sink_native, sent = _run_forwarder(
        lambda s, m, t: KernelForwarder(s, m, t, DEFAULT_COSTS),
        rate=300_000)
    _, sink_vmw, _ = _run_forwarder(
        lambda s, m, t: HypervisorForwarder(
            s, m, t, DEFAULT_COSTS, vmware_server(DEFAULT_COSTS)),
        rate=300_000)
    _, sink_kvm, _ = _run_forwarder(
        lambda s, m, t: HypervisorForwarder(
            s, m, t, DEFAULT_COSTS, qemu_kvm(DEFAULT_COSTS)),
        rate=300_000)
    assert sink_native.received > sink_vmw.received > sink_kvm.received


def test_hypervisor_latency_is_pipelined_not_serialized():
    """The emulation latency inflates per-frame latency without
    collapsing throughput to 1/latency."""
    _, sink, sent = _run_forwarder(
        lambda s, m, t: HypervisorForwarder(
            s, m, t, DEFAULT_COSTS, vmware_server(DEFAULT_COSTS)),
        rate=50_000)
    assert sink.received > 0.95 * sent  # way above 1/140us = 7 kfps
    assert sink.mean_latency() > DEFAULT_COSTS.vmware_latency


def test_hypervisor_profiles():
    vm = vmware_server(DEFAULT_COSTS)
    kvm = qemu_kvm(DEFAULT_COSTS)
    assert kvm.per_frame > vm.per_frame
    assert kvm.latency > vm.latency
