"""Tests for the mini-Click configuration language and elements."""

import pytest

from repro.core.click import (DEFAULT_FORWARDER_CONFIG, ELEMENT_CLASSES,
                              parse_click_config)
from repro.errors import ConfigError
from repro.net.addresses import ip_to_int
from repro.net.frame import Frame


def _frame(dst="10.2.1.2", ttl=64):
    return Frame(84, ip_to_int("10.1.1.2"), ip_to_int(dst), ttl=ttl)


def test_default_config_parses_to_eight_elements():
    cfg = parse_click_config(DEFAULT_FORWARDER_CONFIG)
    assert cfg.n_elements == 8


def test_default_config_forwards_and_routes():
    cfg = parse_click_config(DEFAULT_FORWARDER_CONFIG)
    f = _frame("10.2.1.2")
    out = cfg.run(f)
    assert out is not None
    assert out.out_iface == 1
    assert out.ttl == 63  # DecIPTTL


def test_default_config_routes_reverse_direction():
    cfg = parse_click_config(DEFAULT_FORWARDER_CONFIG)
    f = Frame(84, ip_to_int("10.2.1.2"), ip_to_int("10.1.1.2"))
    assert cfg.run(f).out_iface == 0


def test_lookup_miss_drops():
    cfg = parse_click_config(
        "FromDevice(eth0) -> StaticIPLookup(10.2.0.0/16 1) -> ToDevice(routed);")
    assert cfg.run(_frame("99.9.9.9")) is None


def test_dec_ip_ttl_drops_expired():
    cfg = parse_click_config("DecIPTTL -> ToDevice(1);")
    assert cfg.run(_frame(ttl=1)) is None
    out = cfg.run(_frame(ttl=2))
    assert out is not None and out.ttl == 1


def test_counter_counts():
    cfg = parse_click_config("c :: Counter; FromDevice(0) -> c -> Discard;")
    for _ in range(3):
        cfg.run(_frame())
    assert cfg.elements["c"].count == 3


def test_discard_drops_everything():
    cfg = parse_click_config("FromDevice(0) -> Discard;")
    assert cfg.run(_frame()) is None


def test_todevice_fixed_iface_overrides():
    cfg = parse_click_config(
        "StaticIPLookup(10.2.0.0/16 1) -> ToDevice(eth0);")
    assert cfg.run(_frame()).out_iface == 0


def test_todevice_routed_requires_upstream_routing():
    cfg = parse_click_config("FromDevice(0) -> ToDevice(routed);")
    assert cfg.run(_frame()) is None  # nothing set out_iface


def test_named_elements_shared_across_statements():
    cfg = parse_click_config("""
        rt :: StaticIPLookup(10.2.0.0/16 1);
        FromDevice(0) -> rt -> ToDevice(routed);
    """)
    assert cfg.elements["rt"] in cfg.pipeline


def test_comments_stripped():
    cfg = parse_click_config("""
        // line comment
        # hash comment
        FromDevice(0) -> Discard;  // trailing
    """)
    assert cfg.n_elements == 2


def test_inline_declaration_in_chain():
    cfg = parse_click_config("FromDevice(0) -> q :: Queue(64) -> Discard;")
    assert cfg.elements["q"].size == 64


@pytest.mark.parametrize("bad", [
    "Frobnicator(1) -> Discard;",                 # unknown element
    "FromDevice(0 -> Discard;",                    # unbalanced paren
    "a :: Queue(1); a :: Queue(2);",               # duplicate name
    "Queue(banana);",                              # bad args
    "ToDevice(weird!);",                           # bad iface
    "StaticIPLookup(10.0.0.0/8);",                 # missing iface
    "FromDevice(0) -> Discard; FromDevice(1) -> Discard;",  # 2 chains
])
def test_malformed_configs_rejected(bad):
    with pytest.raises(ConfigError):
        parse_click_config(bad)


def test_element_registry_covers_classic_forwarding_set():
    for name in ("FromDevice", "ToDevice", "Strip", "CheckIPHeader",
                 "Classifier", "DecIPTTL", "StaticIPLookup", "Queue",
                 "Counter", "Discard"):
        assert name in ELEMENT_CLASSES
