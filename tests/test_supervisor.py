"""Supervised recovery: the DES supervision loop and the runtime twin."""

import time

import pytest

from repro.core import FixedAllocation
from repro.core.lvrm import LvrmConfig
from repro.errors import ConfigError, RuntimeBackendError
from repro.experiments.common import build_lvrm_gateway
from repro.net.addresses import ip_to_int
from repro.net.packet import build_udp_frame
from repro.runtime import RuntimeLvrm, Supervisor, SupervisorPolicy
from repro.runtime.supervisor import DEGRADED, RUNNING
from repro.traffic import FrameSink, UdpSender


def _gateway(sim, testbed, n_vris=3, **cfg_kw):
    cfg = LvrmConfig(record_latency=False, balancer="jsq", flow_based=True,
                     supervise=True, **cfg_kw)
    _machine, lvrm = build_lvrm_gateway(
        sim, testbed, config=cfg,
        allocator_factory=lambda: FixedAllocation(n_vris))
    return lvrm


def _offer(sim, testbed, n_flows=6, rate_fps=12_000.0):
    sink = FrameSink(sim, testbed.hosts["r1"], record_latency=False)
    senders = [UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
                         rate_fps / n_flows, src_port=10_000 + i,
                         phase=i * 1.3e-6)
               for i in range(n_flows)]
    return sink, senders


# ---------------------------------------------------------------------------
# DES supervision loop
# ---------------------------------------------------------------------------

def test_des_crash_failover_and_restart(sim, testbed):
    lvrm = _gateway(sim, testbed)
    sink, _senders = _offer(sim, testbed)
    victim = None

    def _crash():
        nonlocal victim
        victim = lvrm.all_vris()[1]
        victim.fail("segfault")

    sim.call_at(0.5, _crash)
    sim.run(until=1.5)
    assert lvrm.stats.failovers.value == 1
    assert lvrm.stats.restarts.value == 1
    assert lvrm.stats.degraded.value == 0
    assert len(lvrm.all_vris()) == 3
    assert victim not in lvrm.all_vris()
    # The victim's pinned flows were unpinned at failover.
    assert lvrm.stats.flows_reassigned.value >= 0
    assert sink.received > 0


def test_des_hang_detected_behaviorally(sim, testbed):
    lvrm = _gateway(sim, testbed)
    _sink, _senders = _offer(sim, testbed)
    victim = None

    def _hang():
        nonlocal victim
        victim = lvrm.all_vris()[0]
        victim.hang()

    sim.call_at(0.4, _hang)
    sim.run(until=1.5)
    # Detected from stalled progress + a backed-up queue (the injected
    # ``hung`` flag is never read), then killed and replaced.
    assert lvrm.stats.failovers.value == 1
    assert lvrm.stats.restarts.value == 1
    assert not victim.alive
    assert len(lvrm.all_vris()) == 3


def test_des_budget_exhaustion_degrades(sim, testbed):
    lvrm = _gateway(sim, testbed, restart_budget=0)
    _sink, _senders = _offer(sim, testbed)
    sim.call_at(0.3, lambda: lvrm.all_vris()[0].fail())
    sim.run(until=0.8)
    # Budget 0: the failure is absorbed without a replacement...
    assert lvrm.stats.failovers.value == 1
    assert lvrm.stats.restarts.value == 0
    assert lvrm.stats.degraded.value == 1
    # ...and the gateway keeps forwarding on the survivors.
    assert len(lvrm.all_vris()) == 2
    assert sum(v.processed for v in lvrm.all_vris()) > 0


def test_des_supervision_config_validated():
    with pytest.raises(ConfigError):
        LvrmConfig(supervision_period=0.0)
    with pytest.raises(ConfigError):
        LvrmConfig(heartbeat_timeout=-1.0)
    with pytest.raises(ConfigError):
        LvrmConfig(restart_backoff=0.0)
    with pytest.raises(ConfigError):
        LvrmConfig(restart_budget=-1)


# ---------------------------------------------------------------------------
# Runtime supervisor
# ---------------------------------------------------------------------------

def _frame():
    return build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                           ip_to_int("10.2.1.2"), 1, 2, b"supervise")


def test_policy_validation_and_backoff():
    with pytest.raises(RuntimeBackendError):
        SupervisorPolicy(heartbeat_timeout=0.0)
    with pytest.raises(RuntimeBackendError):
        SupervisorPolicy(restart_backoff=-0.1)
    with pytest.raises(RuntimeBackendError):
        SupervisorPolicy(restart_budget=-1)
    policy = SupervisorPolicy(restart_backoff=0.1, restart_backoff_max=0.35)
    assert policy.backoff_for(0) == pytest.approx(0.1)
    assert policy.backoff_for(1) == pytest.approx(0.2)
    assert policy.backoff_for(2) == pytest.approx(0.35)   # capped
    assert policy.backoff_for(10) == pytest.approx(0.35)


@pytest.mark.timeout(90)
def test_runtime_sigkill_restart_within_backoff():
    policy = SupervisorPolicy(heartbeat_timeout=1.0, restart_backoff=0.05,
                              restart_backoff_max=0.5, restart_budget=3)
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0,
                     heartbeat_interval=0.05) as lvrm:
        supervisor = Supervisor(lvrm, policy)
        victim = lvrm.vris[0]
        victim.process.kill()
        victim.process.join(5.0)
        t0 = time.monotonic()
        deadline = t0 + 20.0
        while supervisor.restarts < 1 and time.monotonic() < deadline:
            supervisor.poll()
            time.sleep(5e-3)
        elapsed = time.monotonic() - t0
        assert supervisor.failovers == 1
        assert supervisor.restarts == 1
        assert supervisor.degraded == 0
        # Bounded backoff: the replacement landed promptly, not after
        # some unbounded retry loop (generous CI slack over the 50 ms
        # configured backoff).
        assert elapsed < 10.0
        assert supervisor.state[victim.vri_id] == RUNNING
        assert len(lvrm.vris) == 2
        replacement = next(v for v in lvrm.vris
                           if v.vri_id == victim.vri_id)
        assert replacement.process.pid != victim.process.pid
        # ...and forwarding resumes through the replacement's rings.
        frame = _frame()
        for _ in range(10):
            while not lvrm.dispatch(frame):
                time.sleep(1e-4)
        out = lvrm.drain_until(10, timeout=20.0)
        assert len(out) == 10


@pytest.mark.timeout(90)
def test_runtime_budget_exhaustion_degrades():
    policy = SupervisorPolicy(heartbeat_timeout=1.0, restart_backoff=0.05,
                              restart_budget=0)
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0) as lvrm:
        supervisor = Supervisor(lvrm, policy)
        victim = lvrm.vris[0]
        victim.process.kill()
        victim.process.join(5.0)
        supervisor.poll()
        assert supervisor.failovers == 1
        assert supervisor.restarts == 0
        assert supervisor.degraded == 1
        assert supervisor.state[victim.vri_id] == DEGRADED
        # The slot is gone; the survivor still forwards.
        assert len(lvrm.vris) == 1
        frame = _frame()
        for _ in range(5):
            while not lvrm.dispatch(frame):
                time.sleep(1e-4)
        out = lvrm.drain_until(5, timeout=20.0)
        assert len(out) == 5


@pytest.mark.timeout(90)
def test_runtime_failover_writes_postmortem_dump(tmp_path):
    policy = SupervisorPolicy(heartbeat_timeout=1.0, restart_backoff=0.05,
                              restart_budget=1,
                              postmortem_dir=str(tmp_path))
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0,
                     heartbeat_interval=0.05) as lvrm:
        supervisor = Supervisor(lvrm, policy)
        victim = lvrm.vris[0]
        victim.process.kill()
        victim.process.join(5.0)
        deadline = time.monotonic() + 20.0
        while supervisor.failovers < 1 and time.monotonic() < deadline:
            supervisor.poll()
            time.sleep(5e-3)
        assert supervisor.failovers == 1
        dumps = list(tmp_path.glob(
            f"postmortem-rt{lvrm.obs_id}-vri{victim.vri_id}-crash-1.txt"))
        assert len(dumps) == 1
        text = dumps[0].read_text()
        assert "flight recorder dump" in text
        assert f"vri{victim.vri_id} crash failover" in text
