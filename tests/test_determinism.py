"""Reproducibility guarantees: identical seeds give identical results."""

import dataclasses

import pytest

from repro.experiments import QUICK
from repro.experiments.common import ConfigError, build_lvrm_gateway, udp_trial
from repro.experiments.exp1_overhead import exp1c, exp1e
from repro.net import Testbed
from repro.sim import Simulator

TINY = dataclasses.replace(QUICK, name="tiny", trace_frames=4000,
                           ctrl_events=15, window=0.01, warmup=0.004,
                           frame_sizes=(84,))


def test_exp1c_is_bit_reproducible():
    a = exp1c(TINY)
    b = exp1c(TINY)
    assert a.rows == b.rows


def test_exp1e_is_bit_reproducible():
    a = exp1e(TINY)
    b = exp1e(TINY)
    assert a.rows == b.rows


def test_udp_trial_is_bit_reproducible():
    a = udp_trial("lvrm-cpp-pfring", 150_000, 84, TINY)
    b = udp_trial("lvrm-cpp-pfring", 150_000, 84, TINY)
    assert a == b


def test_udp_trial_rejects_unknown_mechanism():
    with pytest.raises(ConfigError):
        udp_trial("carrier-pigeon", 1000, 84, TINY)


def test_build_gateway_rejects_three_vrs():
    sim = Simulator()
    testbed = Testbed(sim)
    with pytest.raises(ConfigError):
        build_lvrm_gateway(sim, testbed, n_vrs=3)


def test_build_gateway_rejects_short_dummy_tuple():
    sim = Simulator()
    testbed = Testbed(sim)
    with pytest.raises(ConfigError):
        build_lvrm_gateway(sim, testbed, n_vrs=2, dummy_load=(1e-6,))


def test_des_arena_plane_is_bit_reproducible():
    """The arena cost model (``data_plane="arena"``) keeps the DES
    deterministic: two runs give identical frame counts AND identical
    per-frame latency samples (times and values, bit for bit) — the
    descriptor-priced hops and the arena alloc charge must not depend on
    anything outside the seed."""
    from repro.core import (FixedAllocation, Lvrm, LvrmConfig, VrSpec,
                            VrType, make_socket_adapter)
    from repro.hardware import DEFAULT_COSTS, Machine
    from repro.routing.prefix import Prefix
    from repro.traffic.trace import synthetic_trace

    def run():
        sim = Simulator()
        machine = Machine(sim)
        adapter = make_socket_adapter(
            "memory", sim, DEFAULT_COSTS,
            trace=synthetic_trace(1500, 84))
        lvrm = Lvrm(sim, machine, adapter,
                    config=LvrmConfig(data_plane="arena"))
        lvrm.add_vr(VrSpec(name="vr1",
                           subnets=(Prefix.parse("10.1.0.0/16"),),
                           vr_type=VrType.CPP), FixedAllocation(1))
        lvrm.start()
        sim.run(until=10.0)
        s = lvrm.stats
        return (s.captured, s.dispatched, s.forwarded,
                tuple(s.latency.times), tuple(s.latency.values))

    a = run()
    b = run()
    assert a == b
    assert a[0] == a[1] == a[2] == 1500   # not vacuous: traffic flowed
    assert len(a[3]) > 0                  # latency samples were recorded


def test_des_arena_plane_prices_hops_below_copy():
    """Calibration honesty: with the same trace and seed the arena
    variant's mean forwarding latency must be strictly lower than the
    copy plane's (descriptors are cheaper than frame copies), while
    forwarding the same frames."""
    from repro.core import (FixedAllocation, Lvrm, LvrmConfig, VrSpec,
                            VrType, make_socket_adapter)
    from repro.hardware import DEFAULT_COSTS, Machine
    from repro.routing.prefix import Prefix
    from repro.traffic.trace import synthetic_trace

    def run(plane):
        sim = Simulator()
        machine = Machine(sim)
        adapter = make_socket_adapter(
            "memory", sim, DEFAULT_COSTS,
            trace=synthetic_trace(1500, 1500))
        lvrm = Lvrm(sim, machine, adapter,
                    config=LvrmConfig(data_plane=plane))
        lvrm.add_vr(VrSpec(name="vr1",
                           subnets=(Prefix.parse("10.1.0.0/16"),),
                           vr_type=VrType.CPP), FixedAllocation(1))
        lvrm.start()
        sim.run(until=10.0)
        return lvrm.stats

    copy, arena = run("copy"), run("arena")
    assert copy.forwarded == arena.forwarded == 1500
    assert arena.latency.mean() < copy.latency.mean()


def test_fault_scenario_is_bit_reproducible():
    """Same seed + same fault schedule => identical failover runs.

    The determinism contract of docs/RELIABILITY.md: the full scenario
    report — per-VRI frame counts (slot-normalized), per-flow delivery,
    supervisor counters, applied-fault log, even the DES event count —
    must match bit-for-bit across two runs in the same process.
    """
    from repro.faults import FaultSchedule, FaultSpec
    from repro.faults.scenario import run_des_scenario

    sched = FaultSchedule((
        FaultSpec(t=0.6, kind="kill", vri=1),
        FaultSpec(t=0.9, kind="corrupt_slot", vri=2, count=3),
        FaultSpec(t=1.1, kind="hang", vri=0),
    ), "mixed failover")
    a = run_des_scenario(sched, duration=2.0)
    b = run_des_scenario(sched, duration=2.0)
    assert a == b
    # The faults actually landed (this is not vacuous determinism).
    assert a["faults"]["injected"] == 3
    assert a["supervisor"]["failovers"] == 2


def test_federated_failover_is_bit_reproducible():
    """Killing the active at t is the same blackout every time.

    The determinism contract extends to the cluster: two runs of the
    same federation scenario must agree bit-for-bit on the failover
    time, the drop ledger, the replication/bus counters, and the DES
    event count.
    """
    from repro.cluster import FederationConfig, run_des_failover_scenario
    from repro.faults import FaultSchedule, FaultSpec

    cfg = FederationConfig(
        duration=1.6, rate_fps=4000.0, n_flows=8, routes=6,
        faults=FaultSchedule((FaultSpec(t=0.703, kind="kill_instance",
                                        instance=0),)))
    a = run_des_failover_scenario(cfg)
    b = run_des_failover_scenario(cfg)
    assert a == b
    # Not vacuous: the kill landed, the standby took over, frames died.
    assert a["ok"]
    assert a["failover"]["promoted"] == "m1"
    assert a["failover"]["lost_in_blackout"] > 0
    assert a["failover"]["failover_seconds"] > 0


def test_overload_drill_is_bit_reproducible():
    """The adaptive admission controller stays inside the DES
    determinism contract: two overload drills with the same seed,
    schedule, and policy agree bit-for-bit on the full report —
    per-class offered/admitted/shed, the AIMD update/tighten/relax
    counts, the smoothed occupancy, and the event count.  The stride
    sampler uses no RNG and integer credit, so this holds exactly.
    """
    from repro.faults import FaultSchedule, FaultSpec
    from repro.faults.scenario import run_des_scenario

    sched = FaultSchedule((FaultSpec(t=0.5, kind="kill", vri=1),))
    kwargs = dict(duration=1.5, overload_policy="adaptive-sample",
                  overload_x=4.0,
                  overload_opts={"band_lo": 0.1, "band_hi": 0.4,
                                 "update_interval": 0.005})
    a = run_des_scenario(sched, **kwargs)
    b = run_des_scenario(sched, **kwargs)
    assert a == b
    # Not vacuous: the controller actually engaged under 4x load.
    state = a["overload"]["state"]
    assert state["tightens"] > 0
    assert sum(c["shed"] for c in state["classes"].values()) > 0
    for cls in state["classes"].values():
        assert cls["offered"] == cls["admitted"] + cls["shed"]
