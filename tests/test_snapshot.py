"""Tests for the LVRM snapshot introspection API."""

import pytest

from repro.core import FixedAllocation, Lvrm, VrSpec, make_socket_adapter
from repro.hardware import DEFAULT_COSTS, Machine
from repro.net import Testbed
from repro.routing.prefix import Prefix
from repro.sim import Simulator
from repro.traffic import UdpSender


def test_snapshot_structure_and_counts(sim, testbed):
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter)
    lvrm.add_vr(VrSpec(name="alpha", subnets=(Prefix.parse("10.1.1.0/24"),)),
                FixedAllocation(2))
    lvrm.add_vr(VrSpec(name="beta", subnets=(Prefix.parse("10.1.2.0/24"),)),
                FixedAllocation(1))
    lvrm.start()
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=50_000, t_start=0.005)
    sim.run(until=0.05)
    snap = lvrm.snapshot()
    assert set(snap) == {"alpha", "beta"}
    alpha = snap["alpha"]
    assert alpha.n_vris == 2 and len(alpha.vris) == 2
    assert alpha.arrival_rate == pytest.approx(50_000, rel=0.1)
    assert alpha.dispatched > 0
    assert sum(v.processed for v in alpha.vris) > 0
    assert all(v.core_id != lvrm.config.lvrm_core for v in alpha.vris)
    assert all(v.service_rate > 0 for v in alpha.vris
               if v.processed > 0)
    beta = snap["beta"]
    assert beta.dispatched == 0
    assert beta.arrival_rate == 0.0


def test_snapshot_is_a_value_not_a_view(sim, testbed):
    machine = Machine(sim)
    adapter = make_socket_adapter("pf-ring", sim, DEFAULT_COSTS,
                                  nics=testbed.gw_nics)
    lvrm = Lvrm(sim, machine, adapter)
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(1))
    lvrm.start()
    UdpSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"),
              rate_fps=50_000, t_start=0.002)
    sim.run(until=0.02)
    before = lvrm.snapshot()["vr1"]
    sim.run(until=0.05)
    after = lvrm.snapshot()["vr1"]
    assert after.dispatched > before.dispatched
    # Frozen dataclasses: snapshots cannot be mutated by accident.
    with pytest.raises(Exception):
        before.dispatched = 0  # type: ignore[misc]
