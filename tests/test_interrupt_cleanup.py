"""Interrupting waiters must not leak items or resource slots."""

import pytest

from repro.sim import Interrupt, Simulator, Store
from repro.sim.resources import Resource


def test_interrupted_getter_does_not_swallow_items(sim):
    store = Store(sim)

    def waiter(sim, store):
        try:
            yield store.get()
        except Interrupt:
            return "interrupted"

    p = sim.process(waiter(sim, store))
    sim.call_in(1.0, lambda: p.interrupt())
    # An item arriving *after* the interrupt must stay in the store.
    sim.call_in(2.0, lambda: store.try_put("precious"))
    sim.run()
    assert p.value is None or p.value == "interrupted"
    assert len(store) == 1
    assert store.try_get() == "precious"


def test_interrupted_getter_yields_item_to_next_getter(sim):
    store = Store(sim)
    got = []

    def victim(sim):
        yield store.get()

    def survivor(sim):
        item = yield store.get()
        got.append(item)

    v = sim.process(victim(sim))
    sim.process(survivor(sim))
    sim.call_in(1.0, lambda: v.interrupt())
    sim.call_in(2.0, lambda: store.try_put("x"))
    sim.run()
    assert got == ["x"]


def test_interrupted_blocked_putter_withdraws(sim):
    store = Store(sim, capacity=1)
    store.try_put("occupying")

    def putter(sim):
        yield store.put("late")

    p = sim.process(putter(sim))
    sim.call_in(1.0, lambda: p.interrupt())
    sim.run()
    # The withdrawn put must not land once room appears.
    assert store.try_get() == "occupying"
    assert store.try_get() is None


def test_interrupted_resource_waiter_releases_queue_slot(sim):
    res = Resource(sim, capacity=1)
    order = []

    def holder(sim):
        req = res.request()
        yield req
        yield sim.timeout(5.0)
        req.release()

    def waiter(sim, name):
        req = res.request()
        try:
            yield req
        except Interrupt:
            return
        order.append((name, sim.now))
        req.release()

    sim.process(holder(sim))
    victim = sim.process(waiter(sim, "victim"))
    sim.process(waiter(sim, "patient"))
    sim.call_in(1.0, lambda: victim.interrupt())
    sim.run()
    # The patient waiter acquires as soon as the holder releases; the
    # interrupted victim neither acquires nor blocks the line.
    assert order == [("patient", 5.0)]
    assert res.count == 0
