"""Tests cross-checking the analytic calibration against the simulation.

These are the strongest guards in the suite: the closed-form stage
costs must (a) satisfy the paper anchors and (b) agree with what the
DES actually measures — any drift between `calibration.py` and the LVRM
pipeline's charging code trips here.
"""

import pytest

from repro.core import FixedAllocation, Lvrm, LvrmConfig, VrSpec, make_socket_adapter
from repro.experiments.calibration import (ANCHORS, calibration_report,
                                           lvrm_stage_cost, render_report,
                                           vri_stage_cost)
from repro.experiments.cli import main
from repro.hardware import DEFAULT_COSTS, Machine
from repro.routing.prefix import Prefix
from repro.sim import Simulator
from repro.traffic.trace import synthetic_trace


# -- anchors hold analytically ----------------------------------------------------

def test_anchor_lvrm_only_84b():
    target, tol, _ = ANCHORS["lvrm-only C++ @84B"]
    fps = 1.0 / lvrm_stage_cost(DEFAULT_COSTS, 84, "memory")
    assert fps == pytest.approx(target, rel=tol)


def test_anchor_lvrm_only_1538b():
    target, tol, _ = ANCHORS["lvrm-only C++ @1538B"]
    fps = 1.0 / lvrm_stage_cost(DEFAULT_COSTS, 1538, "memory")
    assert fps == pytest.approx(target, rel=tol)


def test_anchor_pfring_exceeds_input_ceiling():
    ceiling, _tol, _ = ANCHORS["native input ceiling"]
    fps = 1.0 / lvrm_stage_cost(DEFAULT_COSTS, 84, "pf-ring")
    assert fps > ceiling  # so PF_RING LVRM is sender-limited, = native


def test_anchor_raw_socket_ratio():
    target, tol, _ = ANCHORS["raw-socket vs pf-ring @84B"]
    pfring = 1.0 / lvrm_stage_cost(DEFAULT_COSTS, 84, "pf-ring")
    ceiling = ANCHORS["native input ceiling"][0]
    raw = 1.0 / lvrm_stage_cost(DEFAULT_COSTS, 84, "raw-socket")
    ratio = min(pfring, ceiling) / raw
    assert ratio == pytest.approx(target, rel=tol)


def test_anchor_reaction_times():
    alloc_target, tol, _ = ANCHORS["alloc reaction"]
    c = DEFAULT_COSTS
    alloc = c.alloc_scan_fixed + 6 * c.alloc_scan_per_vri + c.vfork_cost
    assert alloc == pytest.approx(alloc_target, rel=tol)
    dealloc_target, tol, _ = ANCHORS["dealloc reaction"]
    dealloc = c.alloc_scan_fixed + 6 * c.alloc_scan_per_vri + c.kill_cost
    assert dealloc == pytest.approx(dealloc_target, rel=tol)


def test_dummy_load_sets_60kfps_per_core():
    fps = 1.0 / vri_stage_cost(DEFAULT_COSTS, 84, "cpp",
                               dummy_load=1 / 60e3)
    assert fps == pytest.approx(60_000.0, rel=0.03)


# -- the DES agrees with the closed forms -------------------------------------------

@pytest.mark.parametrize("frame_size", [84, 1538])
def test_simulated_throughput_matches_analytic(frame_size):
    """Stream a trace; the measured rate must equal the analytic
    bottleneck (LVRM stage, since the C++ VRI is faster) within the
    service-jitter noise floor."""
    sim = Simulator()
    machine = Machine(sim)
    n = 6000
    adapter = make_socket_adapter("memory", sim, DEFAULT_COSTS,
                                  trace=synthetic_trace(n, frame_size))
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(record_latency=True))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(1))
    lvrm.start()
    sim.run(until=60.0)
    times = lvrm.stats.latency.times
    measured = (lvrm.stats.forwarded - 1) / (times[-1] - times[0])
    analytic = 1.0 / lvrm_stage_cost(DEFAULT_COSTS, frame_size, "memory")
    assert measured == pytest.approx(analytic, rel=0.07)


def test_simulated_vri_bottleneck_matches_analytic():
    """With a heavy dummy load the VRI becomes the bottleneck; measured
    throughput must track the VRI closed form instead."""
    sim = Simulator()
    machine = Machine(sim)
    dummy = 20e-6
    adapter = make_socket_adapter("memory", sim, DEFAULT_COSTS,
                                  trace=synthetic_trace(3000, 84))
    lvrm = Lvrm(sim, machine, adapter,
                config=LvrmConfig(record_latency=True,
                                  queue_capacity=4096))
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),),
                       dummy_load=dummy), FixedAllocation(1))
    lvrm.start()
    sim.run(until=60.0)
    times = lvrm.stats.latency.times
    measured = (lvrm.stats.forwarded - 1) / (times[-1] - times[0])
    analytic = 1.0 / vri_stage_cost(DEFAULT_COSTS, 84, "cpp",
                                    dummy_load=dummy)
    assert measured == pytest.approx(analytic, rel=0.07)


# -- report plumbing ---------------------------------------------------------------------

def test_report_covers_the_key_stages():
    rows = {r.stage: r for r in calibration_report()}
    assert any("memory adapter, 84" in s for s in rows)
    assert any("Click" in s for s in rows)
    text = render_report()
    assert "922" in text or "anchors" in text
    assert "kfps" in text


def test_report_rejects_unknown_inputs():
    with pytest.raises(ValueError):
        lvrm_stage_cost(DEFAULT_COSTS, 84, "warp-drive")
    with pytest.raises(ValueError):
        vri_stage_cost(DEFAULT_COSTS, 84, "fortran")


def test_cli_calibrate(capsys):
    assert main(["calibrate"]) == 0
    out = capsys.readouterr().out
    assert "derived stage capacities" in out
    assert "paper anchors" in out
