"""Tests for the observability subsystem (repro.obs).

Covers instrument semantics, export round-trips, the flight recorder's
bounds and dump-on-error behaviour, and end-to-end integration: a DES
allocation run must emit core (de)allocation events in a consistent
order, and the runtime monitor must report ring occupancy high-water
marks in its teardown stats.
"""

import io
import json
import time

import pytest

from repro import obs
from repro.core import DynamicFixedThresholds, LvrmConfig
from repro.errors import ConfigError
from repro.experiments.common import build_lvrm_gateway
from repro.net import Testbed
from repro.net.addresses import ip_to_int
from repro.net.packet import build_udp_frame
from repro.obs.trace import PH_COMPLETE, PH_COUNTER, TraceEvent
from repro.runtime import RuntimeLvrm
from repro.sim import Simulator
from repro.traffic import RampSender, step_ramp


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test sees empty singletons; leave them empty afterwards."""
    obs.reset()
    yield
    obs.reset()


# -- registry ----------------------------------------------------------------

def test_counter_semantics():
    reg = obs.Registry()
    c = reg.counter("frames_total", "frames seen", vr="vr1")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ConfigError):
        c.inc(-1)
    # Get-or-create: same (name, labels) is the same object...
    assert reg.counter("frames_total", vr="vr1") is c
    # ...different labels are a different instrument.
    assert reg.counter("frames_total", vr="vr2") is not c


def test_gauge_semantics():
    reg = obs.Registry()
    g = reg.gauge("depth")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value == 2.0
    g.set_max(10)
    g.set_max(4)
    assert g.value == 10.0
    backing = {"v": 7}
    g.set_fn(lambda: backing["v"])
    backing["v"] = 9
    assert g.value == 9.0


def test_histogram_semantics():
    reg = obs.Registry()
    h = reg.histogram("lat", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(5.555)
    assert h.cumulative() == [(0.01, 1), (0.1, 2), (1.0, 3),
                              (float("inf"), 4)]
    with pytest.raises(ConfigError):
        reg.histogram("bad", buckets=(1.0, 1.0))
    with pytest.raises(ConfigError):
        reg.histogram("bad2", buckets=(2.0, 1.0))


def test_registry_kind_conflict_and_clear():
    reg = obs.Registry()
    c = reg.counter("x_total")
    with pytest.raises(ConfigError):
        reg.gauge("x_total")
    reg.clear()
    assert len(reg) == 0
    # Live references keep counting after a clear; they just stop
    # being exported.
    c.inc()
    assert c.value == 1


# -- exporters ---------------------------------------------------------------

def test_prometheus_text_format():
    reg = obs.Registry()
    reg.counter("drops_total", "dropped frames", vr="vr1").inc(3)
    reg.gauge("depth", "queue depth").set(2)
    reg.histogram("lat", "latency", buckets=(0.1, 1.0)).observe(0.05)
    text = obs.prometheus_text(reg)
    assert "# HELP drops_total dropped frames" in text
    assert "# TYPE drops_total counter" in text
    assert 'drops_total{vr="vr1"} 3' in text
    assert "# TYPE lat histogram" in text
    assert 'lat_bucket{le="0.1"} 1' in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_sum 0.05" in text
    assert "lat_count 1" in text


def test_metrics_jsonl_parses():
    reg = obs.Registry()
    reg.counter("n_total", a="1").inc(2)
    lines = obs.metrics_jsonl(reg).splitlines()
    rows = [json.loads(line) for line in lines]
    assert {"name": "n_total", "kind": "counter",
            "labels": {"a": "1"}, "value": 2} in rows


def test_events_jsonl_round_trip():
    events = [
        TraceEvent("a", 1.5, track="t1", args={"k": 1}),
        TraceEvent("b", 2.0, PH_COMPLETE, cat="c", dur=0.5, track="t2"),
        TraceEvent("c", 3.0, PH_COUNTER, args={"value": 4}),
    ]
    back = obs.parse_events_jsonl(obs.events_jsonl(events))
    assert [(e.name, e.ts, e.ph, e.cat, e.dur, e.track, e.args)
            for e in back] == \
           [(e.name, e.ts, e.ph, e.cat, e.dur, e.track, e.args)
            for e in events]


def test_chrome_trace_structure():
    events = [
        TraceEvent("tick", 0.001, track="sim"),
        TraceEvent("span", 0.002, PH_COMPLETE, dur=0.003, track="lvrm"),
    ]
    doc = obs.chrome_trace(events, process_name="p")
    thread_names = {e["args"]["name"] for e in doc["traceEvents"]
                    if e.get("name") == "thread_name"}
    assert thread_names == {"sim", "lvrm"}
    tick = next(e for e in doc["traceEvents"] if e["name"] == "tick")
    assert tick["ts"] == pytest.approx(1000.0)  # seconds -> microseconds
    assert tick["s"] == "t"
    span = next(e for e in doc["traceEvents"] if e["name"] == "span")
    assert span["dur"] == pytest.approx(3000.0)
    json.dumps(doc)  # must be serializable as-is


def test_writers_create_files(tmp_path):
    trace_path = tmp_path / "trace.json"
    prom_path = tmp_path / "metrics.prom"
    obs.write_chrome_trace(str(trace_path), [TraceEvent("e", 0.0)])
    obs.write_text(str(prom_path), "x_total 1\n")
    assert json.loads(trace_path.read_text())["traceEvents"]
    assert prom_path.read_text() == "x_total 1\n"
    # No temp files left behind by the atomic writer.
    assert sorted(p.name for p in tmp_path.iterdir()) == \
        ["metrics.prom", "trace.json"]


# -- tracer ------------------------------------------------------------------

def test_tracer_disabled_by_default_and_singleton_identity():
    assert not obs.tracing_enabled()
    tracer = obs.enable_tracing()
    assert tracer is obs.TRACER
    obs.TRACER.instant("e", ts=1.0)
    assert len(obs.TRACER.named("e")) == 1
    obs.reset()
    assert not obs.tracing_enabled()
    assert len(obs.TRACER) == 0


def test_tracer_feeds_recorder_without_retention():
    obs.enable_tracing(retain=False)
    obs.TRACER.instant("only.recorded", ts=0.5)
    assert len(obs.TRACER) == 0
    assert [e.name for e in obs.RECORDER.events()] == ["only.recorded"]


# -- flight recorder ---------------------------------------------------------

def test_flight_recorder_is_bounded():
    rec = obs.FlightRecorder(maxlen=4)
    for i in range(10):
        rec.note(f"e{i}", ts=float(i))
    assert len(rec) == 4
    assert rec.recorded == 10
    assert [e.name for e in rec.events()] == ["e6", "e7", "e8", "e9"]


def test_flight_recorder_dump_on_error():
    rec = obs.FlightRecorder(maxlen=8)
    rec.note("before", ts=1.0, detail="x")
    sink = io.StringIO()
    with pytest.raises(ValueError, match="boom"):
        with rec.on_error(stream=sink):
            raise ValueError("boom")
    dump = sink.getvalue()
    assert "flight recorder dump" in dump
    assert "ValueError: boom" in dump
    assert "before" in dump and "detail=x" in dump


def test_flight_recorder_dump_on_error_to_file(tmp_path):
    rec = obs.FlightRecorder(maxlen=8)
    rec.note("ctx", ts=0.0)
    path = tmp_path / "crash.txt"
    with pytest.raises(RuntimeError):
        with rec.on_error(path=str(path)):
            raise RuntimeError("worker died")
    text = path.read_text()
    assert "worker died" in text and "ctx" in text


# -- DES integration ---------------------------------------------------------

def _scaled_exp2c_run():
    """A 1/60-scale exp2c: staircase up to 3x one VRI's capacity and
    back, dynamic fixed thresholds, tracing on."""
    sim = Simulator()
    testbed = Testbed(sim)
    config = LvrmConfig(record_latency=False, allocation_period=0.1)
    _machine, lvrm = build_lvrm_gateway(
        sim, testbed, n_vrs=1,
        allocator_factory=lambda: DynamicFixedThresholds(1_000.0),
        config=config, dummy_load=1.0 / 1_000.0)
    schedule = step_ramp(3_000.0, 500.0, 0.3, t_start=0.01)
    RampSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"), schedule,
               frame_size=84)
    sim.run(until=schedule[-1][0] + 0.5)
    return lvrm


def test_des_run_emits_core_events_in_order():
    obs.enable_tracing()
    lvrm = _scaled_exp2c_run()

    allocs = obs.TRACER.named("core.allocate")
    deallocs = obs.TRACER.named("core.deallocate")
    assert len(allocs) >= 3        # initial VRI + growth to >= 3
    assert len(deallocs) >= 1      # the down-ramp shrinks again
    # Ordering invariant: the number of live VRIs implied by the event
    # stream never goes negative and never exceeds what was allocated.
    live = 0
    for ev in sorted(allocs + deallocs, key=lambda e: e.ts):
        live += 1 if ev.name == "core.allocate" else -1
        assert live >= 0
    assert live == len(lvrm.vr_monitor.entries["vr1"].monitor.vris)
    # The decision trail that produced them is present too.
    decisions = {e.args["decision"] for e in obs.TRACER.named("alloc.decision")}
    assert {"grow", "shrink"} <= decisions
    assert obs.TRACER.named("ewma.update")
    assert obs.TRACER.named("balance.decision")
    assert obs.TRACER.named("frame.enqueue")
    assert obs.TRACER.named("frame.dequeue")
    # The whole stream must survive the Chrome-trace writer.
    doc = obs.chrome_trace(obs.TRACER.events)
    json.dumps(doc)


def test_des_run_exports_drop_counters_and_queue_hwm():
    obs.enable_tracing()
    _scaled_exp2c_run()
    text = obs.prometheus_text(obs.default_registry())
    assert "lvrm_dropped_no_vr_total" in text
    assert "lvrm_dropped_queue_full_total" in text
    assert "vr_dropped_queue_full_total" in text
    assert "vri_dropped_no_route_total" in text
    assert "vri_dropped_out_full_total" in text
    assert "queue_occupancy_hwm" in text
    assert "alloc_pass_duration_seconds_bucket" in text


# -- ring high-water marks ---------------------------------------------------

def test_spsc_ring_hwm_tracks_peak_occupancy():
    from repro.ipc.ring import SpscRing, ring_bytes_needed
    ring = SpscRing(bytearray(ring_bytes_needed(8, 64)), 8, 64)
    for _ in range(5):
        ring.push(b"x")
    for _ in range(5):
        ring.pop()
    ring.push(b"x")
    assert ring.hwm == 5              # exact on the producer side
    assert ring.probe_occupancy() == 1
    assert ring.hwm == 5


def test_mcring_hwm_is_conservative_upper_bound():
    from repro.ipc.mcring import McRingBuffer, mc_bytes_needed
    ring = McRingBuffer(bytearray(mc_bytes_needed(8, 64)), 8, 64, batch=2)
    for _ in range(6):
        ring.push(b"x")
    assert ring.hwm >= 6
    for _ in range(6):
        ring.pop()
    assert ring.probe_occupancy() == 0
    assert ring.hwm >= 6


def test_fastforward_hwm_from_probe_and_full():
    from repro.ipc.fastforward import FastForwardRing, ff_bytes_needed
    ring = FastForwardRing(bytearray(ff_bytes_needed(4, 64)), 4, 64)
    ring.push(b"x")
    assert ring.hwm == 0              # no shared index: fast path blind
    assert ring.probe_occupancy() == 1
    assert ring.hwm == 1
    for _ in range(3):
        ring.push(b"x")
    assert not ring.try_push(b"x")    # full: producer learns the worst
    assert ring.hwm == 4


# -- runtime integration -----------------------------------------------------

def _frame():
    return build_udp_frame(0x020000000001, 0x020000000002,
                           ip_to_int("10.1.1.2"), ip_to_int("10.2.1.2"),
                           10000, 20000, b"obs")


@pytest.mark.timeout(60)
def test_runtime_teardown_reports_ring_hwm():
    frame = _frame()
    with RuntimeLvrm(n_vris=1, worker_lifetime=40.0) as lvrm:
        for _ in range(30):
            while not lvrm.dispatch(frame):
                time.sleep(1e-4)
        out = lvrm.drain_until(30, timeout=20.0)
        assert len(out) == 30
    stats = lvrm.teardown_stats
    assert len(stats) == 1
    entry = stats[0]
    assert entry["vri_id"] == 1
    assert entry["reason"] == "stop"
    assert entry["dispatched"] == 30
    assert entry["drained"] == 30
    # LVRM is the producer of data_in: its HWM is exact and must have
    # seen at least one queued frame.
    assert entry["ring_hwm"]["data_in"] >= 1
    assert set(entry["ring_hwm"]) == \
        {"data_in", "data_out", "ctrl_in", "ctrl_out"}
    # The lifecycle flight recorder saw the spawn and the retirement.
    names = [e.name for e in lvrm.recorder.events()]
    assert "worker.spawn" in names
    assert "worker.retire" in names
    # And the HWM is scrapeable as a gauge.
    text = obs.prometheus_text(obs.default_registry())
    assert 'ring_occupancy_hwm' in text
    assert f'rt="{lvrm.obs_id}"' in text


# -- fixed-bucket quantiles ---------------------------------------------------

def test_bucket_quantile_interpolates_within_crossing_bucket():
    from repro.obs.quantiles import bucket_quantile

    bounds = (1.0, 2.0, 4.0)
    counts = (0, 100, 0, 0)        # everything in (1, 2]
    assert bucket_quantile(bounds, counts, 0.5) == pytest.approx(1.5)
    assert bucket_quantile(bounds, counts, 0.99) == pytest.approx(1.99)
    # First bucket interpolates from an assumed lower bound of 0.
    assert bucket_quantile(bounds, (10, 0, 0, 0), 0.5) == pytest.approx(0.5)


def test_bucket_quantile_edges_and_validation():
    import math

    from repro.obs.quantiles import bucket_quantile, merge_bucket_counts

    bounds = (1.0, 2.0)
    assert math.isnan(bucket_quantile(bounds, (0, 0, 0), 0.5))
    # Rank in the +Inf overflow: best answer is the last finite bound.
    assert bucket_quantile(bounds, (0, 0, 7), 0.99) == 2.0
    with pytest.raises(ValueError):
        bucket_quantile(bounds, (0, 0, 0), 1.5)
    with pytest.raises(ValueError):
        bucket_quantile(bounds, (1, 2), 0.5)       # missing overflow slot
    assert merge_bucket_counts([(1, 2, 3), (4, 5, 6)]) == (5, 7, 9)
    with pytest.raises(ValueError):
        merge_bucket_counts([(1, 2), (1, 2, 3)])


def test_histogram_quantile_read_path():
    reg = obs.Registry()
    hist = reg.histogram("lat", "latency", buckets=(1e-3, 1e-2, 1e-1))
    for _ in range(99):
        hist.observe(5e-3)
    hist.observe(5e-2)
    pcts = hist.percentiles()
    assert set(pcts) == {"p50", "p95", "p99"}
    assert 1e-3 < pcts["p50"] <= 1e-2
    assert hist.quantile(0.5) == pcts["p50"]


# -- frame-latency spans ------------------------------------------------------

def test_span_recorder_sampling_cadence():
    from repro.obs.spans import SpanRecorder

    rec = SpanRecorder(obs.Registry(), sample_every=4)
    hits = [i for i in range(1, 13) if rec.should_sample()]
    assert hits == [4, 8, 12]
    off = SpanRecorder(obs.Registry(), sample_every=0)
    assert not off.enabled
    assert not any(off.should_sample() for _ in range(100))
    with pytest.raises(ValueError):
        SpanRecorder(obs.Registry(), sample_every=-1)


def test_span_recorder_batched_sample_index():
    from repro.obs.spans import SpanRecorder

    rec = SpanRecorder(obs.Registry(), sample_every=4)
    assert rec.sample_index(3) is None      # cursor at 3 of 4
    assert rec.sample_index(3) == 0         # 4th frame = batch index 0
    # At most one probe per batch, so the rate never exceeds 1-in-N.
    probes = sum(1 for _ in range(100) if rec.sample_index(8) is not None)
    assert probes <= 100
    big = SpanRecorder(obs.Registry(), sample_every=4)
    assert big.sample_index(0) is None
    assert big.sample_index(11) == 3        # 4th of the 11-frame batch


def test_span_recorder_stamps_percentiles_and_jsonl():
    from repro.obs.spans import PHASES, SpanRecorder

    reg = obs.Registry()
    rec = SpanRecorder(reg, sample_every=1, backend="des",
                       labels={"lvrm": "9"})
    span = rec.record_stamps(0.0, 1e-6, 3e-6, 7e-6, 8e-6,
                             vri_id=3, vr="vr1")
    assert span.dispatch == pytest.approx(1e-6)
    assert span.ring_wait == pytest.approx(2e-6)
    assert span.service == pytest.approx(4e-6)
    assert span.drain == pytest.approx(1e-6)
    assert span.total == pytest.approx(8e-6)
    pcts = rec.percentiles()
    assert set(pcts) == set(PHASES) | {"total"}
    # One histogram family, phase-labeled, carrying the recorder labels.
    hists = reg.find("frame_latency_seconds", phase="total", lvrm="9",
                     backend="des")
    assert len(hists) == 1 and hists[0].count == 1
    lines = rec.jsonl().splitlines()
    assert len(lines) == 1
    row = json.loads(lines[0])
    assert row["vri_id"] == 3 and row["vr"] == "vr1"
    assert row["total"] == pytest.approx(8e-6)


def test_span_probe_codecs_round_trip():
    from repro.obs.spans import (PROBE_MAGIC_BYTES, decode_in_probe,
                                 decode_out_probe, encode_in_probe,
                                 encode_out_probe)

    frame = b"\x02\x03" * 30
    rec = encode_in_probe(1.5, 2.5, frame)
    assert rec[:4] == PROBE_MAGIC_BYTES
    stamps, body = decode_in_probe(rec)
    assert stamps == (1.5, 2.5) and body == frame
    # Unprobed records pass through untouched.
    assert decode_in_probe(frame) == (None, frame)
    out = encode_out_probe(1.5, 2.5, 3.5, 4.5, frame)
    assert out[:4] == PROBE_MAGIC_BYTES
    stamps, body = decode_out_probe(out)
    assert stamps == (1.5, 2.5, 3.5, 4.5) and body == frame
    assert decode_out_probe(frame) == (None, frame)
    assert decode_out_probe(b"") == (None, b"")


# -- the cross-process telemetry plane ---------------------------------------

def test_registry_snapshot_merge_round_trip():
    src = obs.Registry()
    src.counter("vri_frames_total", "frames", vri="1").inc(7)
    src.gauge("depth", "queue depth").set(3.5)
    src.histogram("lat", "latency", buckets=(0.1, 1.0)).observe(0.05)
    snap = json.loads(json.dumps(src.snapshot()))   # survives the wire

    dst = obs.Registry()
    merged = dst.merge(snap, extra_labels={"vri_id": "1"})
    assert merged == 3
    (ctr,) = dst.find("vri_frames_total", vri_id="1")
    assert ctr.value == 7
    (hist,) = dst.find("lat", vri_id="1")
    assert hist.count == 1 and hist.sum == pytest.approx(0.05)
    # Set-semantics: applying the same snapshot again changes nothing.
    dst.merge(snap, extra_labels={"vri_id": "1"})
    assert ctr.value == 7 and hist.count == 1
    with pytest.raises(ConfigError):
        dst.merge({"v": 99, "metrics": []})


def test_stats_chunks_reassemble_out_of_order():
    from repro.ipc.messages import StatsAssembler, encode_stats_chunks

    src = obs.Registry()
    for i in range(20):
        src.counter(f"fam_{i}_total", "x" * 30, vri=str(i)).inc(i)
    snap = src.snapshot()
    chunks = encode_stats_chunks(snap, gen=1, max_payload=64)
    assert len(chunks) > 2
    asm = StatsAssembler()
    got = None
    for chunk in reversed(chunks):           # order must not matter
        got = asm.feed(5, chunk) or got
    assert got == snap
    assert asm.completed == 1 and asm.abandoned == 0 and asm.corrupt == 0


def test_stats_assembler_abandons_lost_generation_and_catches_up():
    from repro.ipc.messages import StatsAssembler, encode_stats_chunks

    reg = obs.Registry()
    reg.counter("a_total", "a" * 60).inc(1)
    gen1 = encode_stats_chunks(reg.snapshot(), gen=1, max_payload=32)
    reg.counter("a_total").inc(1)            # state moved on
    gen2 = encode_stats_chunks(reg.snapshot(), gen=2, max_payload=32)
    assert len(gen1) > 1
    asm = StatsAssembler()
    for chunk in gen1[:-1]:                  # last chunk lost on the ring
        assert asm.feed(7, chunk) is None
    got = None
    for chunk in gen2:
        got = asm.feed(7, chunk) or got
    assert got is not None and asm.abandoned == 1
    assert asm.completed == 1
    # Snapshots are cumulative: the next generation caught up on its own.
    assert [m["value"] for m in got["metrics"]
            if m["name"] == "a_total"] == [2]


def test_stats_assembler_counts_corrupt_payloads():
    import struct as _struct

    from repro.ipc.messages import StatsAssembler

    asm = StatsAssembler()
    assert asm.feed(1, b"") is None                          # truncated
    assert asm.feed(1, _struct.pack("<IHH", 1, 0, 0)) is None  # total=0
    assert asm.feed(1, _struct.pack("<IHH", 1, 5, 2)) is None  # seq>=total
    assert asm.feed(1, _struct.pack("<IHH", 1, 0, 1) + b"{nope") is None
    assert asm.corrupt == 4 and asm.completed == 0


@pytest.mark.timeout(90)
def test_runtime_stats_channel_merges_worker_series():
    """Worker registries ride KIND_STATS into the monitor's cluster view,
    while heartbeats stay fresh (liveness wins over telemetry)."""
    frame = build_udp_frame(0x02, 0x03, ip_to_int("10.1.1.2"),
                            ip_to_int("10.2.1.2"), 1, 2, b"stats")
    with RuntimeLvrm(n_vris=2, worker_lifetime=60.0,
                     heartbeat_interval=0.02, stats_interval=0.05,
                     span_sample_every=4) as lvrm:
        reg = obs.default_registry()
        deadline = time.monotonic() + 20.0
        merged = set()
        while time.monotonic() < deadline and len(merged) < 2:
            for _ in range(16):
                lvrm.dispatch(frame)
            lvrm.drain()
            lvrm.pump_control()
            merged = {dict(i.labels)["vri_id"]
                      for i in reg.find("vri_frames_total")
                      if "vri_id" in dict(i.labels)}
            time.sleep(1e-3)
        assert merged == {"1", "2"}, f"merged only {merged}"
        # Worker series are scoped under this monitor's rt label too.
        assert all(dict(i.labels).get("rt") == lvrm.obs_id
                   for i in reg.find("vri_frames_total")
                   if "vri_id" in dict(i.labels))
        # Heartbeats kept flowing while snapshots shipped.
        ages = lvrm.heartbeat_ages()
        assert set(ages) == {1, 2}
        assert all(age < 5.0 for age in ages.values())


# -- the admin plane ----------------------------------------------------------

def _admin_state(reg=None, slots=None):
    from repro.obs.admin import AdminState

    return AdminState(
        reg if reg is not None else obs.Registry(),
        health_fn=(lambda: dict(slots)) if slots is not None else None,
        topology_fn=lambda: {"backend": "des", "vrs": {"vr1": [1, 2]}},
        spans_fn=lambda: '{"total": 1e-05}\n')


def test_admin_state_routes():
    reg = obs.Registry()
    reg.counter("frames_total", "frames").inc(3)
    state = _admin_state(reg, slots={"vri1": "RUNNING"})
    status, ctype, body = state.handle("/metrics")
    assert status == 200 and "frames_total 3" in body
    assert ctype.startswith("text/plain")
    status, _ctype, body = state.handle("/topology")
    assert status == 200 and json.loads(body)["vrs"] == {"vr1": [1, 2]}
    status, ctype, body = state.handle("/spans")
    assert status == 200 and json.loads(body.splitlines()[0])
    status, _ctype, body = state.handle("/")
    assert status == 200 and "/metrics" in json.loads(body)["routes"]
    status, _ctype, body = state.handle("/nope")
    assert status == 404 and json.loads(body)["error"] == "not found"
    # Query strings and trailing slashes are tolerated.
    assert state.handle("/metrics?x=1")[0] == 200
    assert state.handle("/metrics/")[0] == 200
    assert state.requests == 7


def test_admin_healthz_degradation_ladder():
    ok = _admin_state(slots={"vri1": "RUNNING", "vri2": "RUNNING"})
    status, _c, body = ok.handle("/healthz")
    assert status == 200 and json.loads(body)["status"] == "ok"
    # Partial degradation still serves: a mid-failover gateway is alive.
    part = _admin_state(slots={"vri1": "DEGRADED", "vri2": "RESTARTING"})
    status, _c, body = part.handle("/healthz")
    assert status == 200 and json.loads(body)["status"] == "degraded"
    dead = _admin_state(slots={"vri1": "DEGRADED", "vri2": "DEGRADED"})
    status, _c, body = dead.handle("/healthz")
    assert status == 503 and json.loads(body)["status"] == "failed"
    # No supervisor wired at all: empty-but-valid, not an error.
    bare = _admin_state()
    status, _c, body = bare.handle("/healthz")
    assert status == 200 and json.loads(body)["slots"] == {}


def test_admin_server_serves_over_loopback_http():
    import urllib.error
    import urllib.request

    from repro.obs.admin import AdminServer

    reg = obs.Registry()
    reg.counter("frames_total", "frames").inc(5)
    with AdminServer(_admin_state(reg, slots={"vri1": "RUNNING"})) as srv:
        assert srv.url.startswith("http://127.0.0.1:")
        with urllib.request.urlopen(srv.url + "/metrics", timeout=10) as rsp:
            assert rsp.status == 200
            assert b"frames_total 5" in rsp.read()
        with urllib.request.urlopen(srv.url + "/healthz", timeout=10) as rsp:
            assert json.loads(rsp.read())["status"] == "ok"
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(srv.url + "/bogus", timeout=10)
        assert err.value.code == 404


# -- the SLO watchdog ---------------------------------------------------------

def test_parse_rules_accepts_json_mappings_and_rule_objects():
    from repro.obs.slo import SloRule, parse_rules

    rules = parse_rules('[{"name": "lat", "kind": "p99_latency_ms", '
                        '"threshold": 5.0}]')
    assert len(rules) == 1 and rules[0].kind == "p99_latency_ms"
    # A single mapping needs no list wrapper; SloRule passes through.
    (only,) = parse_rules({"name": "loss", "kind": "drop_rate",
                           "threshold": 1e-3})
    assert only.threshold == 1e-3
    again = parse_rules([only])
    assert again[0] is only
    assert only.to_dict() == {"name": "loss", "kind": "drop_rate",
                              "threshold": 1e-3}


@pytest.mark.parametrize("bad", [
    [{"name": "x", "kind": "p42_latency", "threshold": 1.0}],
    [{"name": "x", "kind": "drop_rate", "threshold": 1.0, "wat": 1}],
    [{"name": "x", "kind": "drop_rate"}],
    [{"name": "", "kind": "drop_rate", "threshold": 1.0}],
    [{"name": "x", "kind": "drop_rate", "threshold": -1.0}],
    [{"name": "x", "kind": "drop_rate", "threshold": float("nan")}],
    [{"name": "x", "kind": "drop_rate", "threshold": 1.0},
     {"name": "x", "kind": "stale_heartbeat", "threshold": 1.0}],
    ["not-an-object"],
])
def test_parse_rules_rejects_malformed_specs(bad):
    from repro.obs.slo import parse_rules

    with pytest.raises(ConfigError):
        parse_rules(bad)


def test_watchdog_drop_rate_is_scoped_to_its_own_run():
    from repro.obs.slo import SloRule, SloWatchdog

    reg = obs.Registry()
    # Run 1 lost 10% of its frames; run 2 (same process, same registry)
    # lost none.  Each watchdog must only see its own scope.
    reg.counter("lvrm_dispatched_total", "d", lvrm="1").inc(1000)
    reg.counter("vri_dropped_fault_total", "f", lvrm="1").inc(100)
    reg.counter("lvrm_dispatched_total", "d", lvrm="2").inc(1000)
    rule = lambda: SloRule("no-drops", "drop_rate", 0.01)
    hot = SloWatchdog([rule()], reg, scope_labels={"lvrm": "1"})
    cold = SloWatchdog([rule()], reg, scope_labels={"lvrm": "2"})
    breaches = hot.evaluate(now=1.0)
    assert breaches and breaches[0]["value"] == pytest.approx(0.1)
    assert hot.breaching() == ["no-drops"]
    assert cold.evaluate(now=1.0) == []
    assert cold.breaching() == []
    (ok_gauge,) = reg.find("slo_ok", rule="no-drops")
    assert ok_gauge.value in (0.0, 1.0)


def test_watchdog_breach_edge_fires_once_then_counts():
    from repro.obs.recorder import RECORDER
    from repro.obs.slo import SloRule, SloWatchdog

    reg = obs.Registry()
    reg.counter("lvrm_dispatched_total", "d").inc(100)
    drops = reg.counter("vri_dropped_fault_total", "f")
    drops.inc(50)
    dog = SloWatchdog([SloRule("no-drops", "drop_rate", 0.01)], reg)
    for sweep in range(3):
        dog.evaluate(now=float(sweep))
    notes = [e for e in RECORDER.events()
             if getattr(e, "name", "") == "slo.breach"]
    assert len(notes) == 1                      # edge, not level
    assert notes[0].args["rule"] == "no-drops"
    assert dog.breach_counts["no-drops"] == 3   # every breaching sweep
    (ctr,) = reg.find("slo_breaches_total", rule="no-drops")
    assert ctr.value == 3


def test_watchdog_stale_heartbeat_breaches_then_clears():
    from repro.obs.recorder import RECORDER
    from repro.obs.slo import SloRule, SloWatchdog

    dog = SloWatchdog([SloRule("pulse", "stale_heartbeat", 1.0)],
                      obs.Registry())
    assert dog.evaluate(now=0.0, heartbeat_ages={1: 0.2, 2: 2.5})
    assert dog.breaching() == ["pulse"]
    assert dog.evaluate(now=1.0, heartbeat_ages={1: 0.2, 2: 0.1}) == []
    assert dog.breaching() == []
    clears = [e for e in RECORDER.events()
              if getattr(e, "name", "") == "slo.clear"]
    assert len(clears) == 1 and clears[0].args["rule"] == "pulse"
    # No ages at all: unmeasurable, so neither a breach nor a clear.
    assert dog.evaluate(now=2.0, heartbeat_ages={}) == []
    assert dog.evaluations == 3


def test_watchdog_p99_latency_rule_over_span_histograms():
    from repro.obs.quantiles import LATENCY_BUCKETS
    from repro.obs.slo import SloRule, SloWatchdog

    reg = obs.Registry()
    hist = reg.histogram("frame_latency_seconds", "span latency",
                         buckets=LATENCY_BUCKETS, phase="total",
                         lvrm="1", backend="des")
    dog = SloWatchdog([SloRule("lat", "p99_latency_ms", 1.0)], reg,
                      scope_labels={"lvrm": "1"})
    # No samples yet: unmeasurable.
    assert dog.evaluate(now=0.0) == []
    for _ in range(100):
        hist.observe(5e-3)                      # 5 ms >> the 1 ms budget
    (breach,) = dog.evaluate(now=1.0)
    assert breach["kind"] == "p99_latency_ms"
    assert breach["value"] > 1.0 and breach["samples"] == 100


# -- property tests (export round-trips) -------------------------------------

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st


def _unescape_prom(s):
    out, i = [], 0
    while i < len(s):
        if s[i] == "\\" and i + 1 < len(s):
            nxt = s[i + 1]
            if nxt in ('\\', '"', 'n'):
                out.append({"\\": "\\", '"': '"', "n": "\n"}[nxt])
                i += 2
                continue
        out.append(s[i])
        i += 1
    return "".join(out)


@given(value=st.text(
    alphabet=st.sampled_from(list('ab7 _-\\"\n') + ["é"]),
    max_size=24))
@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_prometheus_label_values_escape_to_one_line(value):
    from repro.obs.export import prometheus_text

    reg = obs.Registry()
    reg.counter("frames_total", "frames", job=value).inc(1)
    text = prometheus_text(reg)
    (sample,) = [l for l in text.splitlines()
                 if l.startswith("frames_total{")]
    # However hostile the label value, the sample stays one physical
    # line, and the escaped form decodes back to the original.
    quoted = sample[sample.index('job="') + len('job="'):sample.rindex('"')]
    assert _unescape_prom(quoted) == value


_ARG_VALUES = st.one_of(
    st.integers(min_value=-2**31, max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(max_size=16))


@given(events=st.lists(st.builds(
    TraceEvent,
    name=st.text(min_size=1, max_size=12),
    ts=st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ph=st.sampled_from(["i", PH_COMPLETE, PH_COUNTER]),
    cat=st.sampled_from(["", "frame", "slo"]),
    dur=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    track=st.sampled_from(["main", "lvrm", "vri1"]),
    args=st.dictionaries(st.text(min_size=1, max_size=8), _ARG_VALUES,
                         max_size=4)), max_size=8))
@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_events_jsonl_round_trips(events):
    from repro.obs.export import events_jsonl, parse_events_jsonl

    back = parse_events_jsonl(events_jsonl(events))
    assert [e.to_dict() for e in back] == [e.to_dict() for e in events]
