"""Tests for the observability subsystem (repro.obs).

Covers instrument semantics, export round-trips, the flight recorder's
bounds and dump-on-error behaviour, and end-to-end integration: a DES
allocation run must emit core (de)allocation events in a consistent
order, and the runtime monitor must report ring occupancy high-water
marks in its teardown stats.
"""

import io
import json
import time

import pytest

from repro import obs
from repro.core import DynamicFixedThresholds, LvrmConfig
from repro.errors import ConfigError
from repro.experiments.common import build_lvrm_gateway
from repro.net import Testbed
from repro.net.addresses import ip_to_int
from repro.net.packet import build_udp_frame
from repro.obs.trace import PH_COMPLETE, PH_COUNTER, TraceEvent
from repro.runtime import RuntimeLvrm
from repro.sim import Simulator
from repro.traffic import RampSender, step_ramp


@pytest.fixture(autouse=True)
def clean_obs():
    """Each test sees empty singletons; leave them empty afterwards."""
    obs.reset()
    yield
    obs.reset()


# -- registry ----------------------------------------------------------------

def test_counter_semantics():
    reg = obs.Registry()
    c = reg.counter("frames_total", "frames seen", vr="vr1")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ConfigError):
        c.inc(-1)
    # Get-or-create: same (name, labels) is the same object...
    assert reg.counter("frames_total", vr="vr1") is c
    # ...different labels are a different instrument.
    assert reg.counter("frames_total", vr="vr2") is not c


def test_gauge_semantics():
    reg = obs.Registry()
    g = reg.gauge("depth")
    g.set(3)
    g.inc()
    g.dec(2)
    assert g.value == 2.0
    g.set_max(10)
    g.set_max(4)
    assert g.value == 10.0
    backing = {"v": 7}
    g.set_fn(lambda: backing["v"])
    backing["v"] = 9
    assert g.value == 9.0


def test_histogram_semantics():
    reg = obs.Registry()
    h = reg.histogram("lat", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(5.555)
    assert h.cumulative() == [(0.01, 1), (0.1, 2), (1.0, 3),
                              (float("inf"), 4)]
    with pytest.raises(ConfigError):
        reg.histogram("bad", buckets=(1.0, 1.0))
    with pytest.raises(ConfigError):
        reg.histogram("bad2", buckets=(2.0, 1.0))


def test_registry_kind_conflict_and_clear():
    reg = obs.Registry()
    c = reg.counter("x_total")
    with pytest.raises(ConfigError):
        reg.gauge("x_total")
    reg.clear()
    assert len(reg) == 0
    # Live references keep counting after a clear; they just stop
    # being exported.
    c.inc()
    assert c.value == 1


# -- exporters ---------------------------------------------------------------

def test_prometheus_text_format():
    reg = obs.Registry()
    reg.counter("drops_total", "dropped frames", vr="vr1").inc(3)
    reg.gauge("depth", "queue depth").set(2)
    reg.histogram("lat", "latency", buckets=(0.1, 1.0)).observe(0.05)
    text = obs.prometheus_text(reg)
    assert "# HELP drops_total dropped frames" in text
    assert "# TYPE drops_total counter" in text
    assert 'drops_total{vr="vr1"} 3' in text
    assert "# TYPE lat histogram" in text
    assert 'lat_bucket{le="0.1"} 1' in text
    assert 'lat_bucket{le="+Inf"} 1' in text
    assert "lat_sum 0.05" in text
    assert "lat_count 1" in text


def test_metrics_jsonl_parses():
    reg = obs.Registry()
    reg.counter("n_total", a="1").inc(2)
    lines = obs.metrics_jsonl(reg).splitlines()
    rows = [json.loads(line) for line in lines]
    assert {"name": "n_total", "kind": "counter",
            "labels": {"a": "1"}, "value": 2} in rows


def test_events_jsonl_round_trip():
    events = [
        TraceEvent("a", 1.5, track="t1", args={"k": 1}),
        TraceEvent("b", 2.0, PH_COMPLETE, cat="c", dur=0.5, track="t2"),
        TraceEvent("c", 3.0, PH_COUNTER, args={"value": 4}),
    ]
    back = obs.parse_events_jsonl(obs.events_jsonl(events))
    assert [(e.name, e.ts, e.ph, e.cat, e.dur, e.track, e.args)
            for e in back] == \
           [(e.name, e.ts, e.ph, e.cat, e.dur, e.track, e.args)
            for e in events]


def test_chrome_trace_structure():
    events = [
        TraceEvent("tick", 0.001, track="sim"),
        TraceEvent("span", 0.002, PH_COMPLETE, dur=0.003, track="lvrm"),
    ]
    doc = obs.chrome_trace(events, process_name="p")
    thread_names = {e["args"]["name"] for e in doc["traceEvents"]
                    if e.get("name") == "thread_name"}
    assert thread_names == {"sim", "lvrm"}
    tick = next(e for e in doc["traceEvents"] if e["name"] == "tick")
    assert tick["ts"] == pytest.approx(1000.0)  # seconds -> microseconds
    assert tick["s"] == "t"
    span = next(e for e in doc["traceEvents"] if e["name"] == "span")
    assert span["dur"] == pytest.approx(3000.0)
    json.dumps(doc)  # must be serializable as-is


def test_writers_create_files(tmp_path):
    trace_path = tmp_path / "trace.json"
    prom_path = tmp_path / "metrics.prom"
    obs.write_chrome_trace(str(trace_path), [TraceEvent("e", 0.0)])
    obs.write_text(str(prom_path), "x_total 1\n")
    assert json.loads(trace_path.read_text())["traceEvents"]
    assert prom_path.read_text() == "x_total 1\n"
    # No temp files left behind by the atomic writer.
    assert sorted(p.name for p in tmp_path.iterdir()) == \
        ["metrics.prom", "trace.json"]


# -- tracer ------------------------------------------------------------------

def test_tracer_disabled_by_default_and_singleton_identity():
    assert not obs.tracing_enabled()
    tracer = obs.enable_tracing()
    assert tracer is obs.TRACER
    obs.TRACER.instant("e", ts=1.0)
    assert len(obs.TRACER.named("e")) == 1
    obs.reset()
    assert not obs.tracing_enabled()
    assert len(obs.TRACER) == 0


def test_tracer_feeds_recorder_without_retention():
    obs.enable_tracing(retain=False)
    obs.TRACER.instant("only.recorded", ts=0.5)
    assert len(obs.TRACER) == 0
    assert [e.name for e in obs.RECORDER.events()] == ["only.recorded"]


# -- flight recorder ---------------------------------------------------------

def test_flight_recorder_is_bounded():
    rec = obs.FlightRecorder(maxlen=4)
    for i in range(10):
        rec.note(f"e{i}", ts=float(i))
    assert len(rec) == 4
    assert rec.recorded == 10
    assert [e.name for e in rec.events()] == ["e6", "e7", "e8", "e9"]


def test_flight_recorder_dump_on_error():
    rec = obs.FlightRecorder(maxlen=8)
    rec.note("before", ts=1.0, detail="x")
    sink = io.StringIO()
    with pytest.raises(ValueError, match="boom"):
        with rec.on_error(stream=sink):
            raise ValueError("boom")
    dump = sink.getvalue()
    assert "flight recorder dump" in dump
    assert "ValueError: boom" in dump
    assert "before" in dump and "detail=x" in dump


def test_flight_recorder_dump_on_error_to_file(tmp_path):
    rec = obs.FlightRecorder(maxlen=8)
    rec.note("ctx", ts=0.0)
    path = tmp_path / "crash.txt"
    with pytest.raises(RuntimeError):
        with rec.on_error(path=str(path)):
            raise RuntimeError("worker died")
    text = path.read_text()
    assert "worker died" in text and "ctx" in text


# -- DES integration ---------------------------------------------------------

def _scaled_exp2c_run():
    """A 1/60-scale exp2c: staircase up to 3x one VRI's capacity and
    back, dynamic fixed thresholds, tracing on."""
    sim = Simulator()
    testbed = Testbed(sim)
    config = LvrmConfig(record_latency=False, allocation_period=0.1)
    _machine, lvrm = build_lvrm_gateway(
        sim, testbed, n_vrs=1,
        allocator_factory=lambda: DynamicFixedThresholds(1_000.0),
        config=config, dummy_load=1.0 / 1_000.0)
    schedule = step_ramp(3_000.0, 500.0, 0.3, t_start=0.01)
    RampSender(sim, testbed.hosts["s1"], testbed.host_ip("r1"), schedule,
               frame_size=84)
    sim.run(until=schedule[-1][0] + 0.5)
    return lvrm


def test_des_run_emits_core_events_in_order():
    obs.enable_tracing()
    lvrm = _scaled_exp2c_run()

    allocs = obs.TRACER.named("core.allocate")
    deallocs = obs.TRACER.named("core.deallocate")
    assert len(allocs) >= 3        # initial VRI + growth to >= 3
    assert len(deallocs) >= 1      # the down-ramp shrinks again
    # Ordering invariant: the number of live VRIs implied by the event
    # stream never goes negative and never exceeds what was allocated.
    live = 0
    for ev in sorted(allocs + deallocs, key=lambda e: e.ts):
        live += 1 if ev.name == "core.allocate" else -1
        assert live >= 0
    assert live == len(lvrm.vr_monitor.entries["vr1"].monitor.vris)
    # The decision trail that produced them is present too.
    decisions = {e.args["decision"] for e in obs.TRACER.named("alloc.decision")}
    assert {"grow", "shrink"} <= decisions
    assert obs.TRACER.named("ewma.update")
    assert obs.TRACER.named("balance.decision")
    assert obs.TRACER.named("frame.enqueue")
    assert obs.TRACER.named("frame.dequeue")
    # The whole stream must survive the Chrome-trace writer.
    doc = obs.chrome_trace(obs.TRACER.events)
    json.dumps(doc)


def test_des_run_exports_drop_counters_and_queue_hwm():
    obs.enable_tracing()
    _scaled_exp2c_run()
    text = obs.prometheus_text(obs.default_registry())
    assert "lvrm_dropped_no_vr_total" in text
    assert "lvrm_dropped_queue_full_total" in text
    assert "vr_dropped_queue_full_total" in text
    assert "vri_dropped_no_route_total" in text
    assert "vri_dropped_out_full_total" in text
    assert "queue_occupancy_hwm" in text
    assert "alloc_pass_duration_seconds_bucket" in text


# -- ring high-water marks ---------------------------------------------------

def test_spsc_ring_hwm_tracks_peak_occupancy():
    from repro.ipc.ring import SpscRing, ring_bytes_needed
    ring = SpscRing(bytearray(ring_bytes_needed(8, 64)), 8, 64)
    for _ in range(5):
        ring.push(b"x")
    for _ in range(5):
        ring.pop()
    ring.push(b"x")
    assert ring.hwm == 5              # exact on the producer side
    assert ring.probe_occupancy() == 1
    assert ring.hwm == 5


def test_mcring_hwm_is_conservative_upper_bound():
    from repro.ipc.mcring import McRingBuffer, mc_bytes_needed
    ring = McRingBuffer(bytearray(mc_bytes_needed(8, 64)), 8, 64, batch=2)
    for _ in range(6):
        ring.push(b"x")
    assert ring.hwm >= 6
    for _ in range(6):
        ring.pop()
    assert ring.probe_occupancy() == 0
    assert ring.hwm >= 6


def test_fastforward_hwm_from_probe_and_full():
    from repro.ipc.fastforward import FastForwardRing, ff_bytes_needed
    ring = FastForwardRing(bytearray(ff_bytes_needed(4, 64)), 4, 64)
    ring.push(b"x")
    assert ring.hwm == 0              # no shared index: fast path blind
    assert ring.probe_occupancy() == 1
    assert ring.hwm == 1
    for _ in range(3):
        ring.push(b"x")
    assert not ring.try_push(b"x")    # full: producer learns the worst
    assert ring.hwm == 4


# -- runtime integration -----------------------------------------------------

def _frame():
    return build_udp_frame(0x020000000001, 0x020000000002,
                           ip_to_int("10.1.1.2"), ip_to_int("10.2.1.2"),
                           10000, 20000, b"obs")


@pytest.mark.timeout(60)
def test_runtime_teardown_reports_ring_hwm():
    frame = _frame()
    with RuntimeLvrm(n_vris=1, worker_lifetime=40.0) as lvrm:
        for _ in range(30):
            while not lvrm.dispatch(frame):
                time.sleep(1e-4)
        out = lvrm.drain_until(30, timeout=20.0)
        assert len(out) == 30
    stats = lvrm.teardown_stats
    assert len(stats) == 1
    entry = stats[0]
    assert entry["vri_id"] == 1
    assert entry["reason"] == "stop"
    assert entry["dispatched"] == 30
    assert entry["drained"] == 30
    # LVRM is the producer of data_in: its HWM is exact and must have
    # seen at least one queued frame.
    assert entry["ring_hwm"]["data_in"] >= 1
    assert set(entry["ring_hwm"]) == \
        {"data_in", "data_out", "ctrl_in", "ctrl_out"}
    # The lifecycle flight recorder saw the spawn and the retirement.
    names = [e.name for e in lvrm.recorder.events()]
    assert "worker.spawn" in names
    assert "worker.retire" in names
    # And the HWM is scrapeable as a gauge.
    text = obs.prometheus_text(obs.default_registry())
    assert 'ring_occupancy_hwm' in text
    assert f'rt="{lvrm.obs_id}"' in text
