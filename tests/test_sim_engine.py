"""Tests for the DES kernel: events, processes, interrupts, run loop."""

import pytest

from repro.sim import Simulator, Interrupt, StopSimulation
from repro.sim.engine import Event
from repro.sim.process import ProcessCrash


def test_timeout_ordering(sim):
    fired = []
    for delay in (0.3, 0.1, 0.2):
        sim.timeout(delay).add_callback(lambda e, d=delay: fired.append(d))
    sim.run()
    assert fired == [0.1, 0.2, 0.3]


def test_simultaneous_events_fifo(sim):
    fired = []
    for i in range(5):
        sim.timeout(0.5).add_callback(lambda e, i=i: fired.append(i))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_timeout_rejected(sim):
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_advances_clock_even_when_drained(sim):
    sim.timeout(0.1)
    sim.run(until=5.0)
    assert sim.now == 5.0


def test_run_until_in_past_rejected(sim):
    sim.run(until=1.0)
    with pytest.raises(ValueError):
        sim.run(until=0.5)


def test_event_value_before_trigger_raises(sim):
    ev = sim.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_event_double_trigger_raises(sim):
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_fail_requires_exception(sim):
    ev = sim.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_callback_after_processed_runs_immediately(sim):
    ev = sim.event()
    ev.succeed("v")
    sim.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    assert seen == ["v"]


def test_process_return_value(sim):
    def proc(sim):
        yield sim.timeout(1.0)
        return 42

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 42
    assert sim.now == 1.0


def test_process_waits_on_process(sim):
    def child(sim):
        yield sim.timeout(2.0)
        return "done"

    def parent(sim):
        result = yield sim.process(child(sim))
        return f"child said {result}"

    p = sim.process(parent(sim))
    sim.run()
    assert p.value == "child said done"


def test_process_failure_propagates_from_run(sim):
    def bad(sim):
        yield sim.timeout(0.1)
        raise ValueError("boom")

    sim.process(bad(sim))
    with pytest.raises(ValueError, match="boom"):
        sim.run()


def test_failed_event_raises_in_waiter(sim):
    ev = sim.event()

    def waiter(sim, ev):
        try:
            yield ev
        except RuntimeError as exc:
            return f"caught {exc}"

    p = sim.process(waiter(sim, ev))
    ev.fail(RuntimeError("fail-val"), delay=0.5)
    sim.run()
    assert p.value == "caught fail-val"


def test_yield_non_event_crashes_process(sim):
    def bad(sim):
        yield 42

    sim.process(bad(sim))
    with pytest.raises(ProcessCrash):
        sim.run()


def test_interrupt_delivers_cause(sim):
    def sleeper(sim):
        try:
            yield sim.timeout(100.0)
        except Interrupt as exc:
            return ("interrupted", exc.cause, sim.now)
        return "slept"

    p = sim.process(sleeper(sim))
    sim.call_in(1.5, lambda: p.interrupt("reason"))
    sim.run()
    assert p.value == ("interrupted", "reason", 1.5)


def test_unhandled_interrupt_terminates_quietly(sim):
    def sleeper(sim):
        yield sim.timeout(100.0)

    p = sim.process(sleeper(sim))
    died_at = []
    p.add_callback(lambda e: died_at.append(sim.now))
    sim.call_in(1.0, lambda: p.interrupt("kill"))
    sim.run()
    assert p.triggered
    assert p.value == "kill"
    # The process terminated at the interrupt, not at its timeout (the
    # detached timeout still drains from the heap, which is harmless).
    assert died_at == [1.0]


def test_interrupt_dead_process_is_noop(sim):
    def quick(sim):
        yield sim.timeout(0.1)
        return "done"

    p = sim.process(quick(sim))
    sim.run()
    p.interrupt("late")  # must not raise
    sim.run()
    assert p.value == "done"


def test_stop_simulation(sim):
    def stopper(sim):
        yield sim.timeout(1.0)
        sim.stop("stopped-early")
        yield sim.timeout(100.0)

    sim.process(stopper(sim))
    result = sim.run()
    assert result == "stopped-early"
    assert sim.now == 1.0


def test_call_at_and_call_in(sim):
    seen = []
    sim.call_at(2.0, lambda: seen.append(("at", sim.now)))
    sim.call_in(1.0, lambda: seen.append(("in", sim.now)))
    sim.run()
    assert seen == [("in", 1.0), ("at", 2.0)]


def test_call_at_past_rejected(sim):
    sim.run(until=1.0)
    with pytest.raises(ValueError):
        sim.call_at(0.5, lambda: None)


def test_peek(sim):
    assert sim.peek() == float("inf")
    sim.timeout(3.0)
    assert sim.peek() == 3.0
