"""Meta-tests keeping the repository's promises aligned: every
experiment has a benchmark, a DESIGN.md row, an EXPERIMENTS.md section,
and chart axes that exist."""

import pathlib

import pytest

from repro.experiments.registry import CHARTS, EXPERIMENTS

ROOT = pathlib.Path(__file__).parent.parent


def test_every_chart_axis_is_a_known_future_column():
    # Chart specs reference columns by name; the experiment functions
    # declare their columns in their ExperimentResult constructors.  Pin
    # the axis names against the declared column tuples in source.
    declared = {
        "exp1a": ("mechanism", "frame_size", "kfps", "mbps"),
        "exp1b": ("mechanism", "frame_size", "rtt_us"),
        "exp1c": ("vr_type", "frame_size", "mfps", "gbps"),
        "exp1d": ("vr_type", "frame_size", "latency_us"),
        "exp1e": ("load", "event_bytes", "latency_us"),
        "exp2b": ("vr_type", "cores", "kfps", "ideal_kfps"),
        "exp2c": ("t_rel", "offered_kfps", "cores"),
        "exp2d": ("t_rel", "vr", "offered_kfps", "cores"),
        "exp4": ("mechanism", "n_flows", "agg_mbps", "max_min", "jain"),
        "exp4-ts": ("mechanism", "t_bin", "mbps"),
    }
    for exp_id, (x, y, group) in CHARTS.items():
        cols = declared[exp_id]
        assert x in cols, f"{exp_id}: x axis {x!r} not a column"
        assert y in cols, f"{exp_id}: y axis {y!r} not a column"
        if group is not None:
            assert group in cols, f"{exp_id}: group {group!r} not a column"


def test_every_experiment_has_a_figure_benchmark():
    bench_sources = "\n".join(
        p.read_text() for p in (ROOT / "benchmarks").glob("bench_fig*.py"))
    for exp_id in EXPERIMENTS:
        assert f'"{exp_id}"' in bench_sources, \
            f"{exp_id} has no benchmarks/bench_fig*.py invocation"


def test_every_experiment_indexed_in_design_md():
    design = (ROOT / "DESIGN.md").read_text()
    for exp_id in EXPERIMENTS:
        base = exp_id.replace("-reaction", "").replace("-cpu", "") \
                     .replace("-ts", "")
        assert base in design, f"{exp_id} missing from DESIGN.md"


def test_experiments_md_covers_every_figure_family():
    text = (ROOT / "EXPERIMENTS.md").read_text()
    for heading in ("Experiment 1a", "Experiment 1b", "Experiment 1c",
                    "Experiment 1d", "Experiment 1e", "Experiment 2a",
                    "Experiment 2b", "Experiment 2c", "Experiment 2d",
                    "Experiment 2e", "Experiment 3a", "Experiment 3b",
                    "Experiment 3c", "Experiment 4"):
        assert heading in text, f"{heading} missing from EXPERIMENTS.md"


def test_registry_figures_cover_chapter_4():
    figures = " ".join(fig for _f, fig, _d in EXPERIMENTS.values())
    for fig_no in ("4.2", "4.3", "4.4", "4.5", "4.6", "4.7", "4.8",
                   "4.9", "4.10", "4.11", "4.12", "4.13", "4.14",
                   "4.15", "4.16", "4.19", "4.22"):
        assert fig_no in figures, f"Figure {fig_no} unclaimed"


def test_readme_points_at_real_files():
    readme = (ROOT / "README.md").read_text()
    for path in ("EXPERIMENTS.md", "DESIGN.md", "docs/ARCHITECTURE.md",
                 "CONTRIBUTING.md", "examples/quickstart.py"):
        assert (ROOT / path.split(")")[0]).exists() or path in readme
    for mentioned in ("examples/quickstart.py", "examples/campus_network.py",
                      "examples/real_processes.py"):
        assert mentioned in readme
        assert (ROOT / mentioned).exists()
