"""Tests for load/arrival/service estimators (thesis Figure 3.4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimation import (EwmaArrivalRate, EwmaQueueLength,
                                   ServiceRateEstimator, ewma_update)


# -- the paper's update rule -------------------------------------------------

def test_ewma_update_first_sample_is_identity():
    assert ewma_update(None, 5.0, weight=8.0) == 5.0


def test_ewma_update_formula():
    # (current + w * avg) / (1 + w)
    assert ewma_update(10.0, 0.0, weight=9.0) == pytest.approx(9.0)


def test_ewma_update_rejects_negative_weight():
    with pytest.raises(ValueError):
        ewma_update(1.0, 1.0, weight=-1.0)


@given(st.floats(0.1, 100.0), st.floats(0.0, 50.0),
       st.lists(st.floats(0.0, 1e6), min_size=1, max_size=50))
@settings(max_examples=100, deadline=None)
def test_ewma_stays_within_sample_hull(start, weight, samples):
    """Property: the EWMA never leaves [min, max] of everything seen."""
    avg = start
    seen = [start]
    for s in samples:
        avg = ewma_update(avg, s, weight)
        seen.append(s)
        assert min(seen) - 1e-9 <= avg <= max(seen) + 1e-9


@given(st.floats(0.5, 500.0), st.floats(0.0, 20.0))
@settings(max_examples=60, deadline=None)
def test_ewma_fixed_point(value, weight):
    """A constant input is a fixed point of the update."""
    avg = value
    for _ in range(5):
        avg = ewma_update(avg, value, weight)
    assert avg == pytest.approx(value)


# -- queue-length estimator -----------------------------------------------------

def test_queue_length_estimator_converges():
    est = EwmaQueueLength(weight=4.0)
    assert est.get() == 0.0
    for _ in range(200):
        est.observe(0.0, 10)
    assert est.get() == pytest.approx(10.0, rel=1e-3)


def test_queue_length_estimator_tracks_change():
    est = EwmaQueueLength(weight=2.0)
    for _ in range(50):
        est.observe(0.0, 2)
    for _ in range(50):
        est.observe(0.0, 20)
    assert est.get() > 15.0


def test_queue_length_rejects_negative():
    with pytest.raises(ValueError):
        EwmaQueueLength().observe(0.0, -1)


def test_queue_length_reset():
    est = EwmaQueueLength()
    est.observe(0.0, 5)
    est.reset()
    assert est.get() == 0.0


# -- arrival-rate estimator -------------------------------------------------------

def test_arrival_rate_from_cbr_stream():
    est = EwmaArrivalRate(weight=16.0)
    t = 0.0
    for _ in range(300):
        est.observe(t)
        t += 1e-3  # 1 kHz
    assert est.get() == pytest.approx(1000.0, rel=0.01)


def test_arrival_rate_cold_is_zero():
    est = EwmaArrivalRate()
    assert est.get() == 0.0
    est.observe(1.0)
    assert est.get() == 0.0  # one sample: no gap yet


def test_arrival_rate_decays_when_idle():
    est = EwmaArrivalRate(weight=8.0)
    t = 0.0
    for _ in range(100):
        est.observe(t)
        t += 1e-3
    assert est.rate(now=t, idle_timeout=0.5) == pytest.approx(1000, rel=0.05)
    # Ten seconds of silence: the decayed rate must collapse.
    assert est.rate(now=t + 10.0, idle_timeout=0.5) < 1.0


def test_arrival_rate_coincident_arrivals_ignored():
    est = EwmaArrivalRate()
    est.observe(1.0)
    est.observe(1.0)  # same timestamp: no information
    est.observe(1.001)
    assert est.get() == pytest.approx(1000.0, rel=0.01)


def test_arrival_rate_time_backwards_rejected():
    est = EwmaArrivalRate()
    est.observe(1.0)
    with pytest.raises(ValueError):
        est.observe(0.5)


# -- service-rate estimator ---------------------------------------------------------

def test_service_rate_estimator():
    est = ServiceRateEstimator(weight=8.0)
    assert est.rate() == 0.0
    for _ in range(100):
        est.observe_service(2e-3)
    assert est.rate() == pytest.approx(500.0, rel=0.01)


def test_service_rate_rejects_nonpositive():
    with pytest.raises(ValueError):
        ServiceRateEstimator().observe_service(0.0)
