"""Tests for the TCP Reno model and FTP sessions."""

import pytest

from repro.baselines import KernelForwarder
from repro.hardware import DEFAULT_COSTS, Machine
from repro.net import Testbed
from repro.sim import Simulator
from repro.traffic.ftp import FtpSession, FtpWorkload
from repro.traffic.tcp import TcpConnection, TcpDemux, TcpParams


@pytest.fixture
def gateway(sim, testbed):
    machine = Machine(sim)
    return KernelForwarder(sim, machine, testbed, DEFAULT_COSTS,
                           record_latency=False)


def test_params_validation():
    with pytest.raises(ValueError):
        TcpParams(mss=0)
    with pytest.raises(ValueError):
        TcpParams(min_rto=0.0)
    with pytest.raises(ValueError):
        TcpParams(rwnd_segments=0)


def test_finite_transfer_completes_in_order(sim, testbed, gateway):
    conn = TcpConnection(sim, testbed.hosts["s1"], testbed.hosts["r1"],
                         TcpParams(), total_bytes=300_000)
    sim.run(until=3.0)
    assert conn.done.triggered
    assert conn.goodput_bytes >= 300_000
    assert conn.receiver.rcv_nxt == conn.total_segments
    assert conn.closed


def test_unbounded_flow_reaches_near_link_rate(sim, testbed, gateway):
    conn = TcpConnection(sim, testbed.hosts["s1"], testbed.hosts["r1"],
                         TcpParams())
    sim.run(until=0.3)
    assert conn.goodput_bps(0.3) > 700e6  # most of the 1G link


def test_receive_window_caps_goodput(sim, testbed, gateway):
    # 2 MB/s application read -> ~16 Mbps steady state.
    conn = TcpConnection(sim, testbed.hosts["s1"], testbed.hosts["r1"],
                         TcpParams(app_read_rate=2e6))
    sim.run(until=1.0)
    goodput = conn.goodput_bps(1.0)
    assert 10e6 < goodput < 30e6


def test_two_flows_share_fairly(sim, testbed, gateway):
    conns = [TcpConnection(sim, testbed.hosts["s1"], testbed.hosts["r1"],
                           TcpParams(), t_start=0.001 * i)
             for i in range(2)]
    sim.run(until=0.5)
    rates = [c.goodput_bps(0.5) for c in conns]
    assert min(rates) / max(rates) > 0.6
    assert sum(rates) > 700e6


def test_slow_start_then_congestion_avoidance(sim, testbed, gateway):
    conn = TcpConnection(sim, testbed.hosts["s1"], testbed.hosts["r1"],
                         TcpParams(init_cwnd=2, init_ssthresh=8))
    sim.run(until=0.05)
    # cwnd must have grown past ssthresh and into CA.
    assert conn.sender.cwnd > 8


def test_loss_triggers_fast_retransmit(sim, testbed):
    # Squeeze the gateway NIC queues so drops occur.
    from repro.net.testbed import TestbedConfig
    sim2 = Simulator()
    tb = Testbed(sim2, config=TestbedConfig(queue_frames=32))
    machine = Machine(sim2)
    KernelForwarder(sim2, machine, tb, DEFAULT_COSTS, record_latency=False)
    conns = [TcpConnection(sim2, tb.hosts["s1"], tb.hosts["r1"],
                           TcpParams()) for _ in range(4)]
    sim2.run(until=0.5)
    total_retx = sum(c.sender.retransmits for c in conns)
    assert total_retx > 0
    # Yet all flows keep making progress.
    assert all(c.goodput_bytes > 0 for c in conns)


def test_rtt_estimator_converges(sim, testbed, gateway):
    conn = TcpConnection(sim, testbed.hosts["s1"], testbed.hosts["r1"],
                         TcpParams(app_read_rate=5e6))
    sim.run(until=0.5)
    assert conn.sender.srtt is not None
    assert 50e-6 < conn.sender.srtt < 20e-3


def test_demux_routes_by_connection(sim, testbed):
    demux = TcpDemux.of(testbed.hosts["r1"])
    assert TcpDemux.of(testbed.hosts["r1"]) is demux
    seen = []
    demux.register(42, seen.append)
    from repro.net.frame import Frame
    f = Frame(84, 1, 2, payload=("tcp", 42, "D", 0, 0))
    testbed.hosts["r1"].receive(f)
    other = Frame(84, 1, 2, payload=("tcp", 99, "D", 0, 0))
    testbed.hosts["r1"].receive(other)
    non_tcp = Frame(84, 1, 2, payload="blob")
    testbed.hosts["r1"].receive(non_tcp)
    sim.run(until=0.01)
    assert seen == [f]
    with pytest.raises(ValueError):
        demux.register(42, seen.append)


def test_zero_window_probe_prevents_deadlock(sim, testbed, gateway):
    """Even with a glacial reader the connection keeps trickling."""
    conn = TcpConnection(sim, testbed.hosts["s1"], testbed.hosts["r1"],
                         TcpParams(app_read_rate=50_000.0,
                                   rwnd_segments=4))
    sim.run(until=2.0)
    assert conn.goodput_bytes > 0
    # Steady state ~50 kB/s.
    assert conn.goodput_bytes < 500_000


# -- FTP ----------------------------------------------------------------------------

def test_ftp_session_transfers_and_chatters(sim, testbed, gateway):
    session = FtpSession(sim, testbed.hosts["s1"], testbed.hosts["r1"],
                         TcpParams(app_read_rate=10e6),
                         control_interval=0.02)
    sim.run(until=0.5)
    assert session.goodput_bytes > 1e6
    assert session.control_segments >= 10
    session.stop()
    snapshot = session.goodput_bytes
    sim.run(until=0.8)
    assert session.goodput_bytes == snapshot


def test_ftp_workload_window_accounting(sim, testbed, gateway):
    wl = FtpWorkload(sim, [(testbed.hosts["s1"], testbed.hosts["r1"]),
                           (testbed.hosts["s2"], testbed.hosts["r2"])],
                     n_sessions=4, params=TcpParams(app_read_rate=5e6),
                     t_start=0.0, start_jitter=0.005)
    sim.run(until=0.2)
    wl.mark_window_start()
    sim.run(until=0.5)
    goodputs = wl.goodputs_bps(0.3)
    assert len(goodputs) == 4
    assert all(g > 0 for g in goodputs)
    # Window accounting excludes the warmup bytes.
    total_all_time = sum(s.goodput_bytes for s in wl.sessions) * 8 / 0.5
    assert wl.aggregate_bps(0.3) < total_all_time * 1.3
    wl.stop_all()


def test_ftp_workload_read_rate_spread(sim, testbed, gateway):
    wl = FtpWorkload(sim, [(testbed.hosts["s1"], testbed.hosts["r1"])],
                     n_sessions=6, params=TcpParams(app_read_rate=5e6),
                     read_rate_spread=0.5, seed=3)
    rates = {s.data.params.app_read_rate for s in wl.sessions}
    assert len(rates) == 6  # all distinct
    assert all(2.4e6 < r < 7.6e6 for r in rates)


def test_ftp_workload_validation(sim, testbed):
    with pytest.raises(ValueError):
        FtpWorkload(sim, [], n_sessions=1)
    with pytest.raises(ValueError):
        FtpWorkload(sim, [(testbed.hosts["s1"], testbed.hosts["r1"])],
                    n_sessions=0)
    with pytest.raises(ValueError):
        FtpWorkload(sim, [(testbed.hosts["s1"], testbed.hosts["r1"])],
                    n_sessions=1, read_rate_spread=1.5)
