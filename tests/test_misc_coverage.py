"""Coverage for small public surfaces: hosts, channels, lookups, and
package-level exports."""

import pytest

import repro
from repro.core import FixedAllocation, Lvrm, VrSpec, make_socket_adapter
from repro.hardware import DEFAULT_COSTS, Machine
from repro.ipc import SimIpcQueue, VriChannels
from repro.net.frame import Frame
from repro.net.host import Host
from repro.routing.prefix import Prefix
from repro.traffic.trace import synthetic_trace


def test_host_send_requires_link(sim):
    host = Host(sim, "h", ip=1, costs=DEFAULT_COSTS)
    with pytest.raises(RuntimeError):
        host.send(Frame(84, 1, 2))


def test_host_receive_without_handler_counts(sim):
    host = Host(sim, "h", ip=1, costs=DEFAULT_COSTS)
    host.receive(Frame(84, 1, 2))
    sim.run(until=0.001)
    assert host.rx_count == 1


def test_host_handler_sees_stack_latency(sim):
    host = Host(sim, "h", ip=1, costs=DEFAULT_COSTS)
    at = []
    host.handler = lambda f: at.append(sim.now)
    host.receive(Frame(84, 1, 2))
    sim.run(until=0.01)
    assert at == [pytest.approx(DEFAULT_COSTS.host_stack_latency)]


def test_vri_channels_pending_input(sim):
    mk = lambda: SimIpcQueue(sim, 8)
    ch = VriChannels(1, data_in=mk(), data_out=mk(),
                     ctrl_in=mk(), ctrl_out=mk())
    assert not ch.pending_input()
    ch.data_in.try_push("frame")
    assert ch.pending_input()
    ch.data_in.try_pop()
    ch.ctrl_in.try_push("event")
    assert ch.pending_input()
    assert len(ch.queues()) == 4


def test_lvrm_find_vri_and_classify(sim):
    machine = Machine(sim)
    adapter = make_socket_adapter("memory", sim, DEFAULT_COSTS,
                                  trace=synthetic_trace(0))
    lvrm = Lvrm(sim, machine, adapter)
    lvrm.add_vr(VrSpec(name="vr1", subnets=(Prefix.parse("10.1.0.0/16"),)),
                FixedAllocation(2))
    lvrm.start()
    sim.run(until=0.01)
    vris = lvrm.all_vris()
    assert lvrm.find_vri(vris[0].vri_id) is vris[0]
    assert lvrm.find_vri(999_999) is None
    from repro.net.addresses import ip_to_int
    assert lvrm.classify(ip_to_int("10.1.5.5")) is lvrm._vri_monitors[0]
    assert lvrm.classify(ip_to_int("192.168.0.1")) is None


def test_package_exports_are_importable():
    for name in repro.__all__:
        assert getattr(repro, name) is not None
    assert repro.__version__


def test_quickstart_default_args():
    stats = repro.quickstart(n_frames=800)
    assert stats.forwarded == 800


def test_sim_queue_validation(sim):
    with pytest.raises(ValueError):
        SimIpcQueue(sim, capacity=0)


def test_errors_hierarchy():
    from repro import errors

    assert issubclass(errors.ConfigError, errors.ReproError)
    assert issubclass(errors.ConfigError, ValueError)
    assert issubclass(errors.QueueFullError, errors.ReproError)
    for name in errors.__all__:
        assert issubclass(getattr(errors, name), Exception)
